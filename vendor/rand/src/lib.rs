//! Offline stand-in for the subset of the [`rand` 0.8](https://docs.rs/rand/0.8)
//! API used by the pbcd workspace.
//!
//! The build environment has no network access, so instead of the crates.io
//! `rand` this workspace vendors a small, API-compatible reimplementation of
//! exactly the surface pbcd consumes: [`RngCore`], [`SeedableRng`], the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`, `fill`), and a
//! deterministic [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded via SplitMix64 — deterministic for a
//! given seed, which is exactly what the test-suite and the `reproduce`
//! binary rely on. It is **not** a cryptographically secure generator; pbcd
//! only uses it for experiment workloads and test vectors, while all
//! protocol-level secrets flow through `pbcd_crypto`.

#![forbid(unsafe_code)]

use core::fmt;
use core::ops::{Range, RangeInclusive};

/// Error type returned by [`RngCore::try_fill_bytes`].
///
/// The vendored generators are infallible, so this type is never actually
/// constructed; it exists for API compatibility.
#[derive(Debug)]
pub struct Error {
    _priv: (),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw integer and byte output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure as an error.
    ///
    /// The vendored generators never fail.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed material accepted by [`SeedableRng::from_seed`].
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let mut x = splitmix64(&mut state);
            for b in chunk.iter_mut() {
                *b = x as u8;
                x >>= 8;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sampling of a value of type `T` from the "standard" distribution.
///
/// Stand-in for `rand::distributions::Standard` being implemented for `T`;
/// it backs the blanket [`Rng::gen`] method.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                let mut bytes = [0u8; core::mem::size_of::<$t>()];
                rng.fill_bytes(&mut bytes);
                <$t>::from_le_bytes(bytes)
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        core::array::from_fn(|_| T::sample(rng))
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        // Two's-complement wrap-around at u128 width makes the same span
        // arithmetic correct for signed and unsigned $t alike.
        #[allow(clippy::unnecessary_cast)]
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = sample_below(rng, span);
                (self.start as u128).wrapping_add(offset) as $t
            }
        }
        #[allow(clippy::unnecessary_cast)]
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128);
                if span == u128::MAX {
                    return <$t as Standard>::sample(rng);
                }
                let offset = sample_below(rng, span + 1);
                (start as u128).wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Uniform draw from `[0, bound)` via 128-bit multiply-shift reduction.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        // Lemire's multiply-shift; the modulo bias is at most 2^-64, far
        // below anything observable by the test-suite.
        let x = rng.next_u64() as u128;
        (x * bound) >> 64
    } else {
        let lo = rng.next_u64() as u128;
        let hi = rng.next_u64() as u128;
        let x = (hi << 64) | lo;
        x % bound
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256**.
    ///
    /// Reproducible for a fixed seed across platforms and releases of this
    /// vendored crate, which the experiment harness relies on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let mut x = self.next_u64();
                for b in chunk.iter_mut() {
                    *b = x as u8;
                    x >>= 8;
                }
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, limb) in s.iter_mut().enumerate() {
                let mut x = 0u64;
                for (j, &b) in seed[i * 8..i * 8 + 8].iter().enumerate() {
                    x |= (b as u64) << (8 * j);
                }
                *limb = x;
            }
            // xoshiro must not start in the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_for_seed() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn gen_range_in_bounds() {
            let mut r = StdRng::seed_from_u64(7);
            for _ in 0..1000 {
                let x = r.gen_range(10u64..20);
                assert!((10..20).contains(&x));
                let y = r.gen_range(0usize..=5);
                assert!(y <= 5);
                let z = r.gen_range(-4i32..4);
                assert!((-4..4).contains(&z));
            }
        }

        #[test]
        fn all_zero_seed_still_generates() {
            let mut r = StdRng::from_seed([0u8; 32]);
            assert_ne!(r.next_u64() | r.next_u64(), 0);
        }
    }
}
