//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A length specification: an exact size or a range of sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.min..=self.max_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy producing `Vec<S::Value>` with a length drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates a `Vec` of values from `element` with a size in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy producing `BTreeSet<S::Value>` with a target size drawn from a
/// [`SizeRange`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // The element domain may be smaller than the target, so bound the
        // number of attempts rather than insisting on the exact size.
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(20) + 20 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// Generates a `BTreeSet` of values from `element` with roughly `size`
/// elements (fewer when the element domain saturates).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
