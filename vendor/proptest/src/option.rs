//! `Option` strategies.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy producing `Option<S::Value>`, `Some` three times out of four
/// (matching real proptest's default weighting).
pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        if rng.gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.0.generate(rng))
        }
    }
}

/// Generates `Option` values wrapping draws from `inner`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}
