//! Offline stand-in for the subset of the [`proptest` 1.x](https://docs.rs/proptest)
//! API used by the pbcd property-test suites.
//!
//! The build environment has no network access, so this workspace vendors a
//! small re-implementation of the proptest surface the tests consume:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_recursive` and `boxed`,
//! * strategies for integer/`usize` ranges, tuples, `&str` character-class
//!   regexes, [`Just`](strategy::Just), [`any`](arbitrary::any),
//!   `prop::array::uniformN`,
//!   `prop::collection::{vec, btree_set}`, `prop::option::of` and
//!   `prop::sample::Index`,
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, plus
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`] and [`prop_oneof!`].
//!
//! Semantic differences from real proptest, deliberately accepted:
//! generation is purely random (no bias towards edge cases), failures are
//! **not shrunk** (the failing case is reported as-is), and the per-test RNG
//! seed is derived deterministically from the test name so runs are
//! reproducible.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property-test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced re-exports (`prop::collection::vec`, …), mirroring
    /// `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Derives a per-test RNG seed from the test name.
///
/// Deterministic (FNV-1a) so a failing property test reproduces on re-run;
/// callers can perturb it via the `PBCD_PROPTEST_SEED` environment variable.
pub fn seed_for(test_name: &str) -> u64 {
    seed_for_impl(test_name)
}

/// Builds the deterministic per-test RNG used by [`proptest!`].
///
/// Exposed for the macro expansion; consumer crates need not depend on
/// `rand` themselves.
pub fn rng_for(test_name: &str) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed_for(test_name))
}

fn seed_for_impl(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    if let Ok(extra) = std::env::var("PBCD_PROPTEST_SEED") {
        for b in extra.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over `Config::cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::rng_for(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(let $arg = ($strat).generate(&mut rng);)+
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.cases.saturating_mul(100).max(10_000),
                                "{}: too many prop_assume! rejections ({} accepted cases so far)",
                                stringify!($name), accepted,
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("{}: property failed on case {}: {}", stringify!($name), accepted, msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current test case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        match (&$lhs, &$rhs) {
            (l, r) => $crate::prop_assert!(
                *l == *r,
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), l, r
            ),
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        match (&$lhs, &$rhs) {
            (l, r) => $crate::prop_assert!(*l == *r, $($fmt)+),
        }
    }};
}

/// Fails the current test case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        match (&$lhs, &$rhs) {
            (l, r) => $crate::prop_assert!(
                *l != *r,
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($lhs), stringify!($rhs), l
            ),
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        match (&$lhs, &$rhs) {
            (l, r) => $crate::prop_assert!(*l != *r, $($fmt)+),
        }
    }};
}

/// Discards the current test case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Chooses uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
