//! Sampling helpers (`Index`).

/// An index into a collection whose size is only known inside the test body.
///
/// Generated via `any::<Index>()`; [`Index::index`] then projects it onto a
/// concrete collection length.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Index {
    raw: usize,
}

impl Index {
    pub(crate) fn new(raw: usize) -> Self {
        Index { raw }
    }

    /// Projects this abstract index onto a collection of `len` elements.
    ///
    /// # Panics
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        self.raw % len
    }
}
