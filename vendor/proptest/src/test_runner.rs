//! Test-runner configuration and per-case outcomes.

/// Subset of `proptest::test_runner::Config` used by the suites.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of accepted (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`; it does not count against
    /// the property.
    Reject(String),
    /// The property does not hold for this case.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure outcome.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection outcome.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Outcome of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;
