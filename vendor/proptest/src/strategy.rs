//! The [`Strategy`] trait and generic combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the RNG state.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for the
    /// previous depth level and produces the next one. `depth` bounds the
    /// nesting; `_desired_size` and `_expected_branch_size` are accepted for
    /// API compatibility but unused (no shrinking, no size accounting).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            // Mix in the base case at every level so expected tree size
            // stays bounded even at full depth.
            let deeper = recurse(level).boxed();
            level = Union::new(vec![base.clone(), deeper]).boxed();
        }
        level
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    gen: Rc<dyn Fn(&mut StdRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.gen)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies with a common value type; the engine
/// behind [`crate::prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`, which must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

impl Strategy for &str {
    type Value = String;

    /// String literals act as generation-only character-class regexes
    /// (`"[a-z]{1,5}"`), matching proptest's `&str` strategy.
    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}
