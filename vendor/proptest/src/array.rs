//! Fixed-size array strategies (`uniform2`, `uniform4`, …).

use rand::rngs::StdRng;

use crate::strategy::Strategy;

/// Strategy producing `[S::Value; N]` from `N` independent draws of `S`.
pub struct UniformArray<S, const N: usize>(S);

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        core::array::from_fn(|_| self.0.generate(rng))
    }
}

macro_rules! uniform_fns {
    ($($fname:ident => $n:literal),* $(,)?) => {$(
        /// Generates a fixed-size array from independent draws of `strategy`.
        pub fn $fname<S: Strategy>(strategy: S) -> UniformArray<S, $n> {
            UniformArray(strategy)
        }
    )*};
}

uniform_fns! {
    uniform2 => 2,
    uniform4 => 4,
    uniform8 => 8,
    uniform12 => 12,
    uniform16 => 16,
    uniform32 => 32,
}
