//! The [`Arbitrary`] trait and the [`any`] entry point.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a canonical "generate any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary_value(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary_value(rng: &mut StdRng) -> Self {
        core::array::from_fn(|_| T::arbitrary_value(rng))
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary_value(rng: &mut StdRng) -> Self {
        crate::sample::Index::new(rng.gen())
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Returns the canonical strategy generating any value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
