//! Generation-only character-class "regex" strategies for `&str` patterns.
//!
//! Supports the pattern subset the pbcd suites use: concatenations of
//! character classes with optional quantifiers, e.g. `"[a-d]"`,
//! `"[a-zA-Z][a-zA-Z0-9]{0,6}"`, and classes with `&&`-intersections such as
//! `"[ -~&&[^<>&\"']]{0,16}"` (printable ASCII minus markup characters).

use rand::rngs::StdRng;
use rand::Rng;

/// One pattern atom: a set of candidate characters plus a repetition range.
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Generates a random string matching `pattern`.
///
/// # Panics
/// Panics on syntax this mini-parser does not understand, or when a class
/// resolves to the empty set — a property-test authoring bug either way.
pub fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let atoms = parse_pattern(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let count = rng.gen_range(atom.min..=atom.max);
        for _ in 0..count {
            let idx = rng.gen_range(0..atom.chars.len());
            out.push(atom.chars[idx]);
        }
    }
    out
}

fn printable_ascii() -> Vec<char> {
    (0x20u8..=0x7e).map(char::from).collect()
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let b: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let chars = match b[i] {
            '[' => {
                let (set, next) = parse_class(&b, i, pattern);
                i = next;
                set
            }
            '\\' => {
                assert!(i + 1 < b.len(), "dangling escape in pattern {pattern:?}");
                i += 2;
                vec![b[i - 1]]
            }
            '.' => {
                i += 1;
                printable_ascii()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        assert!(
            !chars.is_empty(),
            "empty character class in pattern {pattern:?}"
        );
        let (min, max) = parse_quantifier(&b, &mut i, pattern);
        atoms.push(Atom { chars, min, max });
    }
    atoms
}

/// Parses a `[...]` class starting at `start`; returns the resolved set and
/// the index just past the closing bracket.
fn parse_class(b: &[char], start: usize, pattern: &str) -> (Vec<char>, usize) {
    debug_assert_eq!(b[start], '[');
    // Find the matching close bracket, tracking nesting from `&&[...]`.
    let mut depth = 0usize;
    let mut end = None;
    let mut j = start;
    while j < b.len() {
        match b[j] {
            '\\' => j += 1,
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(j);
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let end = end.unwrap_or_else(|| panic!("unbalanced [ in pattern {pattern:?}"));
    let inner = &b[start + 1..end];

    // Split on `&&` at nesting depth zero and intersect the operands.
    let mut operands: Vec<&[char]> = Vec::new();
    let mut depth = 0usize;
    let mut seg_start = 0usize;
    let mut k = 0usize;
    while k < inner.len() {
        match inner[k] {
            '\\' => k += 1,
            '[' => depth += 1,
            ']' => depth -= 1,
            '&' if depth == 0 && k + 1 < inner.len() && inner[k + 1] == '&' => {
                operands.push(&inner[seg_start..k]);
                k += 1;
                seg_start = k + 1;
            }
            _ => {}
        }
        k += 1;
    }
    operands.push(&inner[seg_start..]);

    let mut set: Option<Vec<char>> = None;
    for op in operands {
        let op_set = eval_operand(op, pattern);
        set = Some(match set {
            None => op_set,
            Some(prev) => prev.into_iter().filter(|c| op_set.contains(c)).collect(),
        });
    }
    (set.unwrap_or_default(), end + 1)
}

/// Evaluates one intersection operand: either bare class items or a nested
/// `[...]` / `[^...]` class.
fn eval_operand(op: &[char], pattern: &str) -> Vec<char> {
    if op.first() == Some(&'[') {
        assert_eq!(
            op.last(),
            Some(&']'),
            "bad nested class in pattern {pattern:?}"
        );
        return eval_items(&op[1..op.len() - 1], pattern);
    }
    eval_items(op, pattern)
}

/// Evaluates class items (chars, `a-z` ranges, leading `^` negation over
/// printable ASCII).
fn eval_items(items: &[char], pattern: &str) -> Vec<char> {
    let (negate, items) = match items.first() {
        Some(&'^') => (true, &items[1..]),
        _ => (false, items),
    };
    let mut set = Vec::new();
    let mut i = 0;
    while i < items.len() {
        let c = match items[i] {
            '\\' => {
                i += 1;
                assert!(i < items.len(), "dangling escape in pattern {pattern:?}");
                items[i]
            }
            c => c,
        };
        // `a-z` range (a `-` as first/last item is a literal).
        if i + 2 < items.len() && items[i + 1] == '-' && items[i + 2] != ']' {
            let (lo, hi) = (c, items[i + 2]);
            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
            set.extend(lo..=hi);
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    if negate {
        printable_ascii()
            .into_iter()
            .filter(|c| !set.contains(c))
            .collect()
    } else {
        set.sort_unstable();
        set.dedup();
        set
    }
}

/// Parses an optional quantifier at `*i`, returning `(min, max)` repetition
/// counts. Unbounded quantifiers are capped at 8 repetitions.
fn parse_quantifier(b: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
    const CAP: usize = 8;
    if *i >= b.len() {
        return (1, 1);
    }
    match b[*i] {
        '?' => {
            *i += 1;
            (0, 1)
        }
        '*' => {
            *i += 1;
            (0, CAP)
        }
        '+' => {
            *i += 1;
            (1, CAP)
        }
        '{' => {
            let close = b[*i..]
                .iter()
                .position(|&c| c == '}')
                .map(|off| *i + off)
                .unwrap_or_else(|| panic!("unbalanced {{ in pattern {pattern:?}"));
            let body: String = b[*i + 1..close].iter().collect();
            *i = close + 1;
            let parse_n = |s: &str| -> usize {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad quantifier {{{body}}} in pattern {pattern:?}"))
            };
            match body.split_once(',') {
                None => {
                    let n = parse_n(&body);
                    (n, n)
                }
                Some((lo, hi)) => {
                    let min = parse_n(lo);
                    let max = if hi.trim().is_empty() {
                        min.max(CAP)
                    } else {
                        parse_n(hi)
                    };
                    (min, max)
                }
            }
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn simple_class_and_quantifier() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-d]", &mut rng);
            assert_eq!(s.len(), 1);
            assert!(('a'..='d').contains(&s.chars().next().unwrap()));
            let t = generate_from_pattern("[a-z]{1,5}", &mut rng);
            assert!((1..=5).contains(&t.len()));
            assert!(t.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn concatenation() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-zA-Z][a-zA-Z0-9]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7);
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn intersection_with_negation() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let s = generate_from_pattern("[ -~&&[^<>&\"']]{0,16}", &mut rng);
            assert!(s.len() <= 16);
            for c in s.chars() {
                assert!((' '..='~').contains(&c));
                assert!(!"<>&\"'".contains(c), "forbidden char {c:?}");
            }
        }
    }
}
