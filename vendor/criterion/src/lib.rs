//! Offline stand-in for the subset of the [`criterion` 0.5](https://docs.rs/criterion)
//! API used by the pbcd benches.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal measurement harness with criterion's API shape: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`Throughput`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark is warmed up once,
//! then timed over an adaptive iteration count bounded by a small wall-clock
//! budget, and the mean time per iteration is printed. There are no
//! statistics, baselines or HTML reports. Passing `--test` (as `cargo test`
//! does for bench targets) runs every benchmark exactly once, so bench
//! targets stay cheap in CI.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing collected by [`Bencher::iter`].
#[derive(Clone, Copy, Debug)]
struct Sample {
    iters: u64,
    total: Duration,
}

/// Drives one benchmark body.
pub struct Bencher<'a> {
    sample: &'a mut Option<Sample>,
    test_mode: bool,
    budget: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, storing the mean over an adaptive iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (and the only run in --test mode).
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed();
        if self.test_mode {
            *self.sample = Some(Sample {
                iters: 1,
                total: first,
            });
            return;
        }
        // Aim for enough iterations to fill the budget, bounded both ways.
        let per_iter = first.max(Duration::from_nanos(1));
        let iters = (self.budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        *self.sample = Some(Sample {
            iters,
            total: start.elapsed(),
        });
    }
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation for a benchmark group. Accepted for API
/// compatibility; reported alongside timings.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes processed per iteration, reported in decimal multiples.
    BytesDecimal(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The top-level benchmark harness.
pub struct Criterion {
    test_mode: bool,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs bench targets with `--test`; `cargo bench`
        // passes `--bench`. Anything else (e.g. a name filter) is ignored.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        self.run_one(&id.to_string(), None, f);
        self
    }

    fn run_one<F>(&mut self, label: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut sample = None;
        let mut b = Bencher {
            sample: &mut sample,
            test_mode: self.test_mode,
            budget: self.budget,
        };
        f(&mut b);
        match sample {
            Some(s) => {
                let mean = s.total / u32::try_from(s.iters).unwrap_or(u32::MAX).max(1);
                let extra = match throughput {
                    Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
                        let secs = mean.as_secs_f64().max(1e-12);
                        format!("  ({:.1} MiB/s)", n as f64 / secs / (1024.0 * 1024.0))
                    }
                    Some(Throughput::Elements(n)) => {
                        let secs = mean.as_secs_f64().max(1e-12);
                        format!("  ({:.0} elem/s)", n as f64 / secs)
                    }
                    None => String::new(),
                };
                println!(
                    "{label:<50} time: {mean:>12.2?}  ({} iters){extra}",
                    s.iters
                );
            }
            None => println!("{label:<50} (no sample recorded)"),
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the adaptive iteration count ignores
    /// it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion.run_one(&label, throughput, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion.run_one(&label, throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs this group's benchmark functions in declaration order.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring criterion's macro of
/// the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
