//! Offline stand-in for the subset of the [`bytes` 1.x](https://docs.rs/bytes)
//! API used by the pbcd wire formats.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal implementation of [`Buf`], [`BufMut`], [`Bytes`] and
//! [`BytesMut`]. It favours simplicity over the real crate's zero-copy
//! machinery: [`Bytes`] owns a `Vec<u8>` plus a cursor and `slice`/`freeze`
//! copy when needed — fine for the test and broadcast-container payloads in
//! this workspace.

#![forbid(unsafe_code)]

use std::ops::{Bound, RangeBounds};

/// Read access to a cursor over a contiguous byte sequence.
///
/// All multi-byte integer getters are big-endian, matching the real crate.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Copies `dst.len()` bytes into `dst`, consuming them.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte sink.
///
/// All multi-byte integer putters are big-endian, matching the real crate.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Total length of the unconsumed bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out a sub-range of the unconsumed bytes.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes {
            data: self.chunk()[start..end].to_vec(),
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u16(0xBEAD);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(42);
        buf.put_slice(b"xyz");
        let mut r = buf.freeze();
        assert_eq!(r.get_u16(), 0xBEAD);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 42);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        b.advance(1);
        assert_eq!(b.slice(..2).as_ref(), &[2, 3]);
        assert_eq!(b.slice(1..).as_ref(), &[3, 4, 5]);
    }
}
