//! # pbcd — privacy-preserving policy-based content dissemination
//!
//! Umbrella crate for the Rust reproduction of Shang, Nabeel, Paci,
//! Bertino: *"A Privacy-Preserving Approach to Policy-Based Content
//! Dissemination"* (ICDE 2010). Re-exports the full workspace API:
//!
//! * [`math`] — big integers, Montgomery fields, `F_q` linear algebra,
//! * [`crypto`] — SHA-1/SHA-256, HMAC, AES-CTR, HKDF, AEAD (from scratch),
//! * [`group`] — P-256 and RFC 5114 modp prime-order groups, Schnorr sigs,
//! * [`commit`] — Pedersen commitments,
//! * [`ocbe`] — oblivious commitment-based envelopes (EQ/GE/LE/GT/LT/NE),
//! * [`policy`] — conditions, ACPs, policy configurations, dominance,
//! * [`docs`] — XML-lite, segmentation, broadcast containers,
//! * [`gkm`] — **ACV-BGKM** (the paper's contribution) plus marker,
//!   secure-lock, LKH and simplistic baselines,
//! * [`core`] — IdP / IdMgr / Publisher / Subscriber end-to-end system,
//!   including the transport-agnostic protocol layer (`core::proto`,
//!   `core::service`, `core::session`),
//! * [`net`] — untrusted TCP dissemination broker + client endpoints,
//!   plus the direct request/response transport for registration.
//!
//! ## Quickstart
//!
//! ```
//! use pbcd::core::SystemHarness;
//! use pbcd::policy::{AccessControlPolicy, AttributeSet, PolicySet};
//! use pbcd::docs::Element;
//!
//! // One policy: doctors read the record.
//! let mut policies = PolicySet::new();
//! policies.add(AccessControlPolicy::parse(
//!     "role = 'doctor'", &["Record"], "doc.xml").unwrap());
//!
//! let mut sys = SystemHarness::new_p256(policies, 42);
//! let doctor = sys.subscribe("alice", AttributeSet::new().with_str("role", "doctor"));
//! let outsider = sys.subscribe("mallory", AttributeSet::new().with_str("role", "clerk"));
//!
//! let doc = Element::new("root").child(Element::new("Record").text("diagnosis"));
//! let broadcast = sys.publisher.broadcast(&doc, "doc.xml", &mut sys.rng);
//!
//! let policies = sys.publisher.policies();
//! let seen = doctor.decrypt_broadcast(&broadcast, policies).unwrap();
//! assert!(seen.find("Record").is_some());
//! let blocked = outsider.decrypt_broadcast(&broadcast, policies).unwrap();
//! assert!(blocked.find("Record").is_none());
//! ```

#![forbid(unsafe_code)]

pub use pbcd_commit as commit;
pub use pbcd_core as core;
pub use pbcd_crypto as crypto;
pub use pbcd_docs as docs;
pub use pbcd_gkm as gkm;
pub use pbcd_group as group;
pub use pbcd_math as math;
pub use pbcd_net as net;
pub use pbcd_ocbe as ocbe;
pub use pbcd_policy as policy;
pub use pbcd_telemetry as telemetry;
