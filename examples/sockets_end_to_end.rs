//! The complete paper flow with every leg on real loopback TCP sockets:
//! token issuance, the oblivious registration round-trip, broadcast
//! dissemination through the untrusted broker (**signed** — the broker is
//! keyed and refuses unauthenticated publishers), and revocation taking
//! effect — with **no in-process handle sharing** between the actors.
//!
//! Wire map:
//!
//! ```text
//! Subscriber ──(IssueRequest)────────▶ IssuerService     (direct socket A)
//! Subscriber ──(ConditionsQuery, RegisterRequest)─▶ PublisherService (direct socket B)
//! Publisher  ──(signed container)────▶ Broker ──▶ Subscribers (broker socket C)
//! ```
//!
//! The broker only ever sees socket C — registration and issuance bytes
//! structurally cannot reach it; socket B's handlers run **concurrently**
//! (sharded CSS table, lock-free conditions snapshot).
//!
//! ```sh
//! cargo run --release --example sockets_end_to_end
//! ```

use pbcd::core::{
    session, IdentityManager, IdentityProvider, IssuerService, NetPublisher, NetSubscriber,
    Publisher, PublisherService, Subscriber,
};
use pbcd::docs::Element;
use pbcd::group::{P256Group, SigningKey};
use pbcd::net::{Broker, BrokerConfig, PublisherDirectory, RegistrationServer};
use pbcd::policy::{
    AccessControlPolicy, AttributeCondition, AttributeSet, ComparisonOp, PolicySet,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let group = P256Group::new();
    let mut rng = StdRng::seed_from_u64(2026);

    // Policies: doctors read the diagnosis, clearance ≥ 5 reads billing.
    let mut policies = PolicySet::new();
    policies.add(AccessControlPolicy::new(
        vec![AttributeCondition::eq_str("role", "doctor")],
        &["Diagnosis"],
        "ward.xml",
    ));
    policies.add(AccessControlPolicy::new(
        vec![AttributeCondition::new("clearance", ComparisonOp::Ge, 5)],
        &["Billing"],
        "ward.xml",
    ));

    // The issuer (IdP + IdMgr) behind direct socket A.
    let idp = IdentityProvider::new(group.clone(), "hospital-hr", &mut rng);
    let mut idmgr = IdentityManager::new(group.clone(), &mut rng);
    let doctor_nym = idmgr.nym_for("dora");
    let idmgr_key = idmgr.verifying_key();
    let mut issuer = IssuerService::new(idp, idmgr, 11);
    let issuer_server =
        RegistrationServer::bind("127.0.0.1:0", move |req: &[u8]| issuer.handle(req))
            .expect("bind issuer endpoint");
    println!("issuer endpoint on       {}", issuer_server.addr());

    // The untrusted broker on socket C — keyed with the publisher's
    // verification key, so only signed publishes mutate retained state —
    // and the publisher: signed broadcasts to the broker, registration
    // served concurrently on direct socket B.
    let publish_key = SigningKey::generate(&group, &mut rng);
    let directory =
        PublisherDirectory::new(group.clone()).with_key("ward-pub", publish_key.verifying_key());
    let broker = Broker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            publisher_auth: Some(Arc::new(directory)),
            ..BrokerConfig::default()
        },
    )
    .expect("bind broker");
    println!(
        "broker on                {} (publisher auth ON)",
        broker.addr()
    );
    let publisher = Publisher::new(group.clone(), idmgr_key, policies);
    let mut net_pub =
        NetPublisher::connect_service(PublisherService::new(publisher, 0), broker.addr())
            .expect("publisher connects")
            .with_signing_key("ward-pub", publish_key);
    let reg_addr = net_pub
        .serve_registration("127.0.0.1:0", 42)
        .expect("bind registration endpoint");
    println!("registration endpoint on {reg_addr}");

    // Subscribers onboard entirely over the sockets: issuance on A,
    // conditions + oblivious registration on B.
    let mut people = Vec::new();
    for (subject, attrs) in [
        (
            "dora",
            AttributeSet::new()
                .with_str("role", "doctor")
                .with("clearance", 7),
        ),
        (
            "nancy",
            AttributeSet::new()
                .with_str("role", "nurse")
                .with("clearance", 6),
        ),
        (
            "carl",
            AttributeSet::new()
                .with_str("role", "clerk")
                .with("clearance", 1),
        ),
    ] {
        let mut sub: Subscriber<P256Group> = Subscriber::new(attrs);
        let tokens = session::fetch_tokens_via(&mut sub, &group, issuer_server.addr(), subject)
            .expect("issuance over TCP");
        let extracted =
            session::register_all_via(&mut sub, &group, reg_addr, &mut rng).expect("registration");
        println!(
            "{subject:>6}: {tokens} tokens issued over TCP, {extracted} CSS(s) extracted — \
             the publisher cannot know that count"
        );
        people.push((subject, sub));
    }
    let stats = net_pub.service_stats();
    println!(
        "publisher service: {} requests, {} registrations served, {} errors — \
         qualified and non-qualified look identical",
        stats.requests, stats.registrations, stats.errors
    );

    // Dissemination through the broker.
    let policies = net_pub.policies();
    let mut subscribers: Vec<(&str, NetSubscriber<P256Group>)> = people
        .into_iter()
        .map(|(name, sub)| {
            (
                name,
                NetSubscriber::connect(sub, broker.addr(), &["ward.xml"]).expect("connect"),
            )
        })
        .collect();
    let report = Element::new("WardReport")
        .child(Element::new("Diagnosis").text("acute appendicitis, operate today"))
        .child(Element::new("Billing").text("invoice total 4815 USD"));
    let receipt = net_pub
        .broadcast(&report, "ward.xml", &mut rng)
        .expect("signed broadcast");
    println!(
        "signed broadcast epoch {} fanned out to {} subscribers via the broker",
        receipt.epoch, receipt.fanout
    );
    for (name, sub) in &mut subscribers {
        let (_, view) = sub.recv_document(&policies).expect("delivery");
        println!(
            "{name:>6}: Diagnosis {}, Billing {}",
            if view.find("Diagnosis").is_some() {
                "readable"
            } else {
                "redacted"
            },
            if view.find("Billing").is_some() {
                "readable"
            } else {
                "redacted"
            },
        );
    }

    // Revocation: delete the doctor's row, rebroadcast — transparent
    // rekey, no message to anyone, the doctor just stops deriving keys.
    assert!(net_pub.revoke_subscriber(&doctor_nym));
    net_pub
        .broadcast(&report, "ward.xml", &mut rng)
        .expect("post-revocation broadcast");
    let (_, view) = subscribers[0].1.recv_document(&policies).expect("recv");
    println!(
        "after revoking {doctor_nym}: doctor sees Diagnosis {}, Billing {}",
        if view.find("Diagnosis").is_some() {
            "readable"
        } else {
            "redacted"
        },
        if view.find("Billing").is_some() {
            "readable"
        } else {
            "redacted"
        },
    );

    net_pub.disconnect().expect("publisher disconnect");
    issuer_server.shutdown();
    broker.shutdown();
    println!("all endpoints shut down cleanly");
}
