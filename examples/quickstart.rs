//! Quickstart: one policy, two subscribers, one broadcast.
//!
//! Run with: `cargo run --release --example quickstart`

use pbcd::core::SystemHarness;
use pbcd::docs::Element;
use pbcd::policy::{AccessControlPolicy, AttributeSet, PolicySet};

fn main() {
    // 1. The publisher's policy: subscribers with role = analyst may read
    //    the <Report> subdocument of market.xml.
    let mut policies = PolicySet::new();
    policies.add(
        AccessControlPolicy::parse("role = 'analyst'", &["Report"], "market.xml")
            .expect("valid policy"),
    );

    // 2. Wire up IdP, IdMgr and Publisher (P-256 backend).
    let mut sys = SystemHarness::new_p256(policies, 7);

    // 3. Two subscribers onboard and register. Registration is oblivious:
    //    the publisher learns neither role value, nor who obtained a CSS.
    let analyst = sys.subscribe(
        "alice@example.com",
        AttributeSet::new().with_str("role", "analyst"),
    );
    let intern = sys.subscribe(
        "ivan@example.com",
        AttributeSet::new().with_str("role", "intern"),
    );
    println!(
        "analyst extracted {} CSS(s); publisher cannot tell",
        analyst.css_count()
    );
    println!(
        "intern  extracted {} CSS(s); publisher cannot tell",
        intern.css_count()
    );

    // 4. Broadcast a document.
    let doc = Element::new("MarketUpdate")
        .child(Element::new("Headline").text("Quarterly results released"))
        .child(Element::new("Report").text("Revenue up 12%, margin guidance raised."));
    let broadcast = sys.publisher.broadcast(&doc, "market.xml", &mut sys.rng);
    println!(
        "\nbroadcast: epoch {}, {} encrypted group(s), {} bytes on the wire",
        broadcast.epoch,
        broadcast.groups.len(),
        broadcast.size_bytes()
    );

    // 5. Each subscriber decrypts what its attributes allow.
    let pol = sys.publisher.policies();
    let analyst_view = analyst
        .decrypt_broadcast(&broadcast, pol)
        .expect("well-formed");
    let intern_view = intern
        .decrypt_broadcast(&broadcast, pol)
        .expect("well-formed");

    println!("\nanalyst view:\n{}", analyst_view.to_xml_pretty());
    println!("intern view:\n{}", intern_view.to_xml_pretty());

    assert!(analyst_view.find("Report").is_some());
    assert!(intern_view.find("Report").is_none());
    println!("quickstart OK: the analyst read the report; the intern saw a redaction.");
}
