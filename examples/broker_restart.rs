//! Durable retention surviving a broker crash: publish several epochs
//! through a broker backed by the append-only retention log, kill the
//! broker mid-append (a torn tail, as a power cut would leave), restart
//! it from the same log, and have a **late joiner** replay the full
//! multi-epoch history — oldest first — and decrypt every epoch.
//!
//! The log stores exactly what the broker fans out: ciphertext containers
//! and public key-derivation info. Recovery therefore restores the
//! retained set without the broker ever holding decryption material —
//! durability adds no new trust in the broker.
//!
//! ```sh
//! cargo run --release --example broker_restart
//! ```

use pbcd::core::{NetPublisher, NetSubscriber, SystemHarness};
use pbcd::docs::Element;
use pbcd::net::{Broker, BrokerConfig, FsyncPolicy};
use pbcd::policy::{AccessControlPolicy, AttributeCondition, AttributeSet, PolicySet};
use std::io::Write;

fn main() {
    let mut policies = PolicySet::new();
    policies.add(AccessControlPolicy::new(
        vec![AttributeCondition::eq_str("role", "doctor")],
        &["Diagnosis"],
        "ward.xml",
    ));

    // Token issuance + oblivious registration happen out-of-band, exactly
    // as in the other examples; the broker (and its log) never sees them.
    // Lena registers now but only connects after the crash — the late
    // joiner the history replay exists for.
    let mut sys = SystemHarness::new_p256(policies, 7);
    let lena = sys.subscribe(
        "lena",
        AttributeSet::new()
            .with_str("role", "doctor")
            .with("clearance", 7),
    );
    let SystemHarness {
        publisher, mut rng, ..
    } = sys;

    // A durable broker: every retained publish is appended to this log
    // before the publisher sees its Ack. Depth 3 keeps a replayable
    // three-epoch history per document.
    let store_path =
        std::env::temp_dir().join(format!("pbcd-broker-restart-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&store_path);
    let config = BrokerConfig {
        store_path: Some(store_path.clone()),
        fsync: FsyncPolicy::PerPublish,
        history_depth: 3,
        ..BrokerConfig::default()
    };
    let broker = Broker::bind_with("127.0.0.1:0", config.clone()).expect("bind durable broker");
    println!(
        "durable broker on {} (log: {})",
        broker.addr(),
        store_path.display()
    );

    let mut net_pub = NetPublisher::connect(publisher, broker.addr()).expect("publisher connects");
    let policies = net_pub.policies();
    for note in [
        "suspected appendicitis",
        "confirmed, surgery booked",
        "post-op stable",
    ] {
        let report = Element::new("WardReport").child(Element::new("Diagnosis").text(note));
        let receipt = net_pub
            .broadcast(&report, "ward.xml", &mut rng)
            .expect("broadcast");
        println!("published ward.xml epoch {} ({note:?})", receipt.epoch);
    }

    // Crash. The broker goes down and — as a power cut mid-append would —
    // leaves a torn half-record on the end of the log.
    drop(net_pub);
    broker.shutdown();
    std::fs::OpenOptions::new()
        .append(true)
        .open(&store_path)
        .expect("reopen log")
        .write_all(b"PBL1\x00\x00\x01")
        .expect("tear the log tail");
    println!("\nbroker crashed; log left with a torn tail\n");

    // Restart from the same log: recovery scans it, shaves the torn tail,
    // and rebuilds the retained multi-epoch history.
    let broker = Broker::bind_with("127.0.0.1:0", config).expect("restart durable broker");
    let recovery = broker.recovery();
    let stats = broker.stats();
    println!(
        "restarted on {}: recovered {} record(s), truncated {} torn byte(s); \
         retaining {} document(s), {} ciphertext bytes",
        broker.addr(),
        recovery.records_recovered,
        recovery.truncated_bytes,
        stats.retained_documents,
        stats.retained_bytes,
    );

    // The late joiner asks for the last three epochs and replays the
    // entire history oldest-first — every epoch still decrypts, because
    // the log preserved the exact container bytes.
    let mut net_lena = NetSubscriber::connect_with_history(lena, broker.addr(), &["ward.xml"], 3)
        .expect("late joiner connects");
    for _ in 0..3 {
        let (container, view) = net_lena
            .recv_document(&policies)
            .expect("replayed delivery");
        let diagnosis = view
            .find("Diagnosis")
            .and_then(|e| {
                e.children.iter().find_map(|n| match n {
                    pbcd::docs::Node::Text(t) => Some(t.clone()),
                    _ => None,
                })
            })
            .unwrap_or_else(|| "<redacted>".into());
        println!(
            "late joiner replayed epoch {}: Diagnosis = {diagnosis:?}",
            container.epoch
        );
    }

    broker.shutdown();
    let _ = std::fs::remove_file(&store_path);
    println!("\nbroker shut down cleanly; log removed");
}
