//! Dynamic membership: joins, credential updates and revocations, showing
//! the paper's transparent rekey — subscribers never receive key-update
//! messages; their old CSSs plus the new public broadcast values suffice
//! (or cease to suffice, after revocation).
//!
//! Run with: `cargo run --release --example subscription_churn`

use pbcd::core::SystemHarness;
use pbcd::docs::Element;
use pbcd::policy::{
    AccessControlPolicy, AttributeCondition, AttributeSet, ComparisonOp, PolicySet,
};

fn main() {
    let mut policies = PolicySet::new();
    policies.add(AccessControlPolicy::new(
        vec![AttributeCondition::eq_str("team", "engineering")],
        &["DesignDoc"],
        "weekly.xml",
    ));
    policies.add(AccessControlPolicy::new(
        vec![AttributeCondition::new("clearance", ComparisonOp::Ge, 3)],
        &["Roadmap"],
        "weekly.xml",
    ));

    let mut sys = SystemHarness::new_p256(policies, 2024);
    let doc = Element::new("Weekly")
        .child(Element::new("DesignDoc").text("cache redesign, phase 2"))
        .child(Element::new("Roadmap").text("Q3: multi-region failover"));

    let readable = |sub: &pbcd::core::Subscriber<pbcd::group::P256Group>,
                    bc: &pbcd::docs::BroadcastContainer,
                    pol: &PolicySet| {
        let view = sub.decrypt_broadcast(bc, pol).expect("well-formed");
        let mut seen = Vec::new();
        for tag in ["DesignDoc", "Roadmap"] {
            if view.find(tag).is_some() {
                seen.push(tag);
            }
        }
        if seen.is_empty() {
            "nothing".to_string()
        } else {
            seen.join(" + ")
        }
    };

    // Week 1: Ada (engineering, clearance 4) is the only subscriber.
    let ada = sys.subscribe(
        "ada",
        AttributeSet::new()
            .with_str("team", "engineering")
            .with("clearance", 4),
    );
    let w1 = sys.publisher.broadcast(&doc, "weekly.xml", &mut sys.rng);
    println!(
        "week 1: ada reads {}",
        readable(&ada, &w1, sys.publisher.policies())
    );

    // Week 2: Bob joins (engineering only, clearance 1).
    let bob = sys.subscribe(
        "bob",
        AttributeSet::new()
            .with_str("team", "engineering")
            .with("clearance", 1),
    );
    let w2 = sys.publisher.broadcast(&doc, "weekly.xml", &mut sys.rng);
    println!(
        "week 2: ada reads {}",
        readable(&ada, &w2, sys.publisher.policies())
    );
    println!(
        "        bob reads {}",
        readable(&bob, &w2, sys.publisher.policies())
    );
    // Backward secrecy: bob cannot decrypt week 1.
    println!(
        "        bob on week-1 broadcast: {} (backward secrecy)",
        readable(&bob, &w1, sys.publisher.policies())
    );
    assert_eq!(readable(&bob, &w1, sys.publisher.policies()), "nothing");

    // Week 3: Ada leaves the company — subscription revoked.
    let ada_nym = ada.nym().unwrap().to_string();
    sys.publisher.revoke_subscriber(&ada_nym);
    let w3 = sys.publisher.broadcast(&doc, "weekly.xml", &mut sys.rng);
    println!(
        "week 3 (ada revoked): ada reads {} (forward secrecy)",
        readable(&ada, &w3, sys.publisher.policies())
    );
    println!(
        "        bob reads {}",
        readable(&bob, &w3, sys.publisher.policies())
    );
    assert_eq!(readable(&ada, &w3, sys.publisher.policies()), "nothing");
    // Ada can still read old broadcasts she was entitled to.
    assert_eq!(
        readable(&ada, &w1, sys.publisher.policies()),
        "DesignDoc + Roadmap"
    );

    // Week 4: Bob is promoted to clearance 3 — credential update: fresh
    // token + re-registration; the publisher overrides his CSS rows.
    let mut promoted_bob = sys.onboard(
        "bob",
        AttributeSet::new()
            .with_str("team", "engineering")
            .with("clearance", 3),
    );
    sys.register_all(&mut promoted_bob);
    let w4 = sys.publisher.broadcast(&doc, "weekly.xml", &mut sys.rng);
    println!(
        "week 4 (bob promoted): bob reads {}",
        readable(&promoted_bob, &w4, sys.publisher.policies())
    );
    assert_eq!(
        readable(&promoted_bob, &w4, sys.publisher.policies()),
        "DesignDoc + Roadmap"
    );

    println!("\nNo subscriber ever received a rekey message: every key was");
    println!("derived locally from stable CSSs and the public broadcast values.");
}
