//! Direct use of the ACV-BGKM layer: rekey, derivation, the §VIII-D
//! shared-matrix batch with subscriber-side KEV caching, and §VIII-C
//! sharding — without the document/identity machinery on top.
//!
//! Run with: `cargo run --release --example gkm_playground`

use pbcd::gkm::{AccessRow, AcvBgkm, KevCache, ShardedAcvBgkm};
use rand::{RngCore, SeedableRng};
use std::time::Instant;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x6B9);
    let scheme = AcvBgkm::default();

    // 200 subscribers, each holding one 128-bit CSS for this policy.
    let members: Vec<AccessRow> = (0..200)
        .map(|i| {
            let mut css = vec![0u8; 16];
            rng.fill_bytes(&mut css);
            AccessRow {
                nym: format!("pn-{i:04}"),
                css_concat: css,
            }
        })
        .collect();

    // One rekey: fresh key K, public (X, z₁…z_N).
    let t0 = Instant::now();
    let (key, info) = scheme.rekey(&members, &mut rng);
    println!(
        "rekey for {} members: {:?} — public info {} bytes (compressed), key {} bytes",
        members.len(),
        t0.elapsed(),
        info.size_bytes_compressed(80),
        key.len(),
    );

    // Every member derives K from public info + its own CSS; outsiders get
    // garbage.
    assert!(members
        .iter()
        .all(|m| scheme.derive_key(&info, &m.css_concat) == key));
    let mut outsider = vec![0u8; 16];
    rng.fill_bytes(&mut outsider);
    assert_ne!(scheme.derive_key(&info, &outsider), key);
    println!("all 200 members derive K; outsider CSS does not");

    // §VIII-D: eight documents share one policy configuration — one matrix
    // solve, eight independent keys, and the subscriber's KEV cache makes
    // documents 2..8 nearly free to unlock.
    let t0 = Instant::now();
    let batch = scheme.rekey_batch(&members, 8, &mut rng);
    println!("\nbatch of 8 documents rekeyed in {:?}", t0.elapsed());
    let css = &members[0].css_concat;
    let t0 = Instant::now();
    for (k, i) in &batch {
        assert_eq!(&scheme.derive_key(i, css), k);
    }
    let plain = t0.elapsed();
    let mut cache = KevCache::new();
    let t0 = Instant::now();
    for (k, i) in &batch {
        assert_eq!(&scheme.derive_key_cached(i, css, &mut cache), k);
    }
    let cached = t0.elapsed();
    println!(
        "subscriber unlocks 8 docs: plain {plain:?}, KEV-cached {cached:?} ({} cache entries)",
        cache.len()
    );

    // §VIII-C: sharding for large memberships — same key, smaller solves.
    let sharded = ShardedAcvBgkm::new(AcvBgkm::default(), 50);
    let t0 = Instant::now();
    let (skey, sinfo) = sharded.rekey(&members, &mut rng);
    println!(
        "\nsharded rekey ({} shards of ≤50): {:?}, {} bytes",
        sinfo.num_shards,
        t0.elapsed(),
        sharded.public_size(&sinfo),
    );
    assert!(members
        .iter()
        .all(|m| sharded.derive_key(&sinfo, &m.nym, &m.css_concat) == skey));
    println!("all members derive the uniform key from their own shard");

    // Transparent revocation: drop ten members, rekey — the others derive
    // the new key from the same CSSs; the revoked ten cannot.
    let (remaining, revoked) = members.split_at(190);
    let (key2, info2) = scheme.rekey(remaining, &mut rng);
    assert!(remaining
        .iter()
        .all(|m| scheme.derive_key(&info2, &m.css_concat) == key2));
    assert!(revoked
        .iter()
        .all(|m| scheme.derive_key(&info2, &m.css_concat) != key2));
    println!("\nrevoked 10 members: remaining 190 follow the rekey, revoked do not —");
    println!("no subscriber state changed, no message was sent to anyone.");
}
