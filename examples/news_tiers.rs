//! A subscription news service exercising the full predicate suite:
//! equality, inequalities and ≠ — age gates, tier gates, and an embargo
//! that excludes one specific region.
//!
//! Run with: `cargo run --release --example news_tiers`

use pbcd::core::SystemHarness;
use pbcd::docs::Element;
use pbcd::policy::{
    encode_string_value, AccessControlPolicy, AttributeCondition, AttributeSet, ComparisonOp,
    PolicySet,
};

fn main() {
    let mut policies = PolicySet::new();
    // Headlines: any paying tier (tier ≥ 1).
    policies.add(AccessControlPolicy::new(
        vec![AttributeCondition::new("tier", ComparisonOp::Ge, 1)],
        &["Headlines"],
        "daily.xml",
    ));
    // Premium analysis: tier ≥ 2.
    policies.add(AccessControlPolicy::new(
        vec![AttributeCondition::new("tier", ComparisonOp::Ge, 2)],
        &["Analysis"],
        "daily.xml",
    ));
    // Gambling odds: adults only (age ≥ 18) on any tier ≥ 1.
    policies.add(AccessControlPolicy::new(
        vec![
            AttributeCondition::new("age", ComparisonOp::Ge, 18),
            AttributeCondition::new("tier", ComparisonOp::Ge, 1),
        ],
        &["Odds"],
        "daily.xml",
    ));
    // Embargoed wire story: not distributable in region 44 (≠ predicate).
    policies.add(AccessControlPolicy::new(
        vec![AttributeCondition::new("region", ComparisonOp::Neq, 44)],
        &["WireStory"],
        "daily.xml",
    ));
    // Student discount content: tier < 1 (free accounts) AND age < 26.
    policies.add(AccessControlPolicy::new(
        vec![
            AttributeCondition::new("tier", ComparisonOp::Lt, 1),
            AttributeCondition::new("age", ComparisonOp::Lt, 26),
        ],
        &["CampusBrief"],
        "daily.xml",
    ));

    let mut sys = SystemHarness::new_p256(policies, 0x2E25);

    let readers: Vec<(&str, AttributeSet)> = vec![
        (
            "premium adult, region 10",
            AttributeSet::new()
                .with("tier", 2)
                .with("age", 34)
                .with("region", 10),
        ),
        (
            "basic adult, region 44 (embargoed)",
            AttributeSet::new()
                .with("tier", 1)
                .with("age", 40)
                .with("region", 44),
        ),
        (
            "basic minor, region 10",
            AttributeSet::new()
                .with("tier", 1)
                .with("age", 16)
                .with("region", 10),
        ),
        (
            "free student (age 20), region 7",
            AttributeSet::new()
                .with("tier", 0)
                .with("age", 20)
                .with("region", 7),
        ),
    ];
    let subs: Vec<_> = readers
        .iter()
        .map(|(name, attrs)| (*name, sys.subscribe(name, attrs.clone())))
        .collect();

    let daily = Element::new("Daily")
        .child(Element::new("Headlines").text("markets rally"))
        .child(Element::new("Analysis").text("why the rally may not last"))
        .child(Element::new("Odds").text("cup final: 2.10 / 3.40"))
        .child(Element::new("WireStory").text("embargoed in region 44"))
        .child(Element::new("CampusBrief").text("student discounts this week"));
    let bc = sys.publisher.broadcast(&daily, "daily.xml", &mut sys.rng);
    let pol = sys.publisher.policies();

    let tags = ["Headlines", "Analysis", "Odds", "WireStory", "CampusBrief"];
    println!("reader access (✓ readable, · redacted):\n");
    print!("{:<40}", "");
    for t in &tags {
        print!("{t:>12}");
    }
    println!();
    for (name, sub) in &subs {
        let view = sub.decrypt_broadcast(&bc, pol).expect("well-formed");
        print!("{name:<40}");
        for t in &tags {
            print!("{:>12}", if view.find(t).is_some() { "✓" } else { "·" });
        }
        println!();
    }

    // Spot-check the interesting cells.
    let view = |i: usize| subs[i].1.decrypt_broadcast(&bc, pol).unwrap();
    assert!(view(0).find("Analysis").is_some(), "premium reads analysis");
    assert!(
        view(0).find("CampusBrief").is_none(),
        "premium is not a free student"
    );
    assert!(
        view(1).find("WireStory").is_none(),
        "embargo via ≠ predicate"
    );
    assert!(view(1).find("Headlines").is_some());
    assert!(view(2).find("Odds").is_none(), "minor blocked from odds");
    assert!(
        view(3).find("CampusBrief").is_some(),
        "student content via < predicates"
    );

    // The string encoder is public and deterministic — show it once.
    println!(
        "\n(example of the public string-value encoding: 'analyst' → {})",
        encode_string_value("analyst")
    );
}
