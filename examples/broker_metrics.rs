//! Scraping a live broker's telemetry over the wire.
//!
//! Runs a real end-to-end dissemination round (policies, registration,
//! signed publish, subscriber decryption) and then asks the broker for its
//! metrics with a `StatsRequest` frame — the same exposition text an
//! external monitoring agent would collect. The scrape carries only
//! aggregates: counters, gauges and latency quantiles, never container
//! bytes or subscriber identities.
//!
//! ```sh
//! cargo run --release --example broker_metrics
//! ```

use pbcd::core::SystemHarness;
use pbcd::docs::Element;
use pbcd::net::{Broker, BrokerClient, BrokerConfig, PeerRole};
use pbcd::policy::{AccessControlPolicy, AttributeSet, PolicySet};

fn main() {
    let mut policies = PolicySet::new();
    policies.add(AccessControlPolicy::parse("role = 'doctor'", &["Record"], "ward.xml").unwrap());

    // Out-of-band: issuance + oblivious registration (no broker involved).
    let mut sys = SystemHarness::new_p256(policies, 11);
    let doctor = sys.subscribe("dora", AttributeSet::new().with_str("role", "doctor"));

    // Broker on loopback; an in-memory retention store keeps the example
    // self-contained (a durable broker adds store_append/fsync timings).
    let broker = Broker::bind_with("127.0.0.1:0", BrokerConfig::default()).unwrap();
    let addr = broker.addr();
    println!("broker listening on {addr}");

    // One subscriber and a few published epochs.
    let mut sub_conn = BrokerClient::connect(addr, PeerRole::Subscriber).unwrap();
    sub_conn.subscribe(&["ward.xml"]).unwrap();
    let mut publisher = BrokerClient::connect(addr, PeerRole::Publisher).unwrap();
    for round in 0..4 {
        let body = format!("lab result, round {round}");
        let doc = Element::new("root").child(Element::new("Record").text(&body));
        let container = sys.publisher.broadcast(&doc, "ward.xml", &mut sys.rng);
        let receipt = publisher.publish(&container).unwrap();
        let delivered = sub_conn.next_delivery().unwrap();
        let seen = doctor
            .decrypt_broadcast(&delivered, sys.publisher.policies())
            .unwrap();
        assert!(seen.find("Record").is_some());
        println!(
            "published epoch {} (fan-out {}), doctor decrypted it",
            receipt.epoch, receipt.fanout
        );
    }

    // The scrape: any connection may ask; the broker answers with the
    // text exposition of one consistent registry snapshot.
    let mut scraper = BrokerClient::connect(addr, PeerRole::Publisher).unwrap();
    let text = scraper.stats().unwrap();
    println!("\n--- wire scrape (StatsRequest -> StatsResponse) ---");
    for line in text.lines() {
        if line.starts_with("broker_") || line.starts_with("store_") {
            println!("{line}");
        }
    }

    // The same data is available in process, typed.
    let snap = broker.metrics();
    let ack = snap.histogram("broker_publish_ack_ns").expect("registered");
    println!(
        "\npublish->ack: count={} p50={}ns p99={}ns",
        ack.count, ack.p50, ack.p99
    );
    assert_eq!(snap.counter("broker_publishes_total"), Some(4));
    assert!(text.contains("broker_publish_ack_ns{quantile=\"0.5\"}"));
    assert!(!text.contains("ward.xml"), "scrape must not name documents");

    drop(publisher);
    drop(sub_conn);
    drop(scraper);
    broker.shutdown();
    println!("\nall scrape assertions held; broker shut down cleanly");
}
