//! What does the publisher actually see? This example reconstructs the
//! paper's Table I and demonstrates the two privacy mechanisms:
//!
//! 1. subscribers register for **every** condition naming an attribute
//!    they hold — including mutually exclusive pairs like `YoS ≥ 5` and
//!    `YoS < 5` — so registration behaviour reveals nothing;
//! 2. OCBE delivery means the publisher cannot tell which envelopes were
//!    actually opened.
//!
//! Run with: `cargo run --release --example privacy_audit`

use pbcd::core::SystemHarness;
use pbcd::gkm::Nym;
use pbcd::policy::{
    AccessControlPolicy, AttributeCondition, AttributeSet, ComparisonOp, PolicySet,
};

fn main() {
    // Conditions straight out of Table I: level ≥ 59, YoS ≥ 5, YoS < 5,
    // role = doc, role = nur.
    let mut policies = PolicySet::new();
    policies.add(AccessControlPolicy::new(
        vec![AttributeCondition::new("level", ComparisonOp::Ge, 59)],
        &["A"],
        "d.xml",
    ));
    policies.add(AccessControlPolicy::new(
        vec![AttributeCondition::new("YoS", ComparisonOp::Ge, 5)],
        &["B"],
        "d.xml",
    ));
    policies.add(AccessControlPolicy::new(
        vec![AttributeCondition::new("YoS", ComparisonOp::Lt, 5)],
        &["C"],
        "d.xml",
    ));
    policies.add(AccessControlPolicy::new(
        vec![AttributeCondition::eq_str("role", "doc")],
        &["D"],
        "d.xml",
    ));
    policies.add(AccessControlPolicy::new(
        vec![AttributeCondition::eq_str("role", "nur")],
        &["E"],
        "d.xml",
    ));

    let mut sys = SystemHarness::new_p256(policies, 0x7AB1);

    // Three subscribers mirroring Table I's rows:
    // pn-A holds only a role token → registers for both role conditions.
    let a = sys.subscribe("employee-a", AttributeSet::new().with_str("role", "doc"));
    // pn-B holds level + YoS → registers for level ≥ 59, YoS ≥ 5 AND YoS < 5
    // (mutually exclusive — deliberately, to block inference).
    let b = sys.subscribe(
        "employee-b",
        AttributeSet::new().with("level", 61).with("YoS", 7),
    );
    // pn-C holds all three attributes → registers for all five conditions.
    let c = sys.subscribe(
        "employee-c",
        AttributeSet::new()
            .with("level", 30)
            .with("YoS", 2)
            .with_str("role", "nur"),
    );

    let conds = sys.publisher.policies().distinct_conditions();
    println!("== The publisher's CSS table T (cf. paper Table I) ==\n");
    println!("{}", sys.publisher.css_table().render(&conds));

    println!("Mutually exclusive conditions both carry records:");
    let yos_ge = AttributeCondition::new("YoS", ComparisonOp::Ge, 5);
    let yos_lt = AttributeCondition::new("YoS", ComparisonOp::Lt, 5);
    assert!(yos_ge.mutually_exclusive(&yos_lt));
    // One table snapshot for the whole audit loop (css_table() copies).
    let table = sys.publisher.css_table();
    for sub in [&b, &c] {
        let nym = Nym::new(sub.nym().unwrap());
        let both = table.get(&nym, &yos_ge).is_some() && table.get(&nym, &yos_lt).is_some();
        println!(
            "  {}: registered for YoS ≥ 5 AND YoS < 5 → {}",
            nym,
            if both { "yes" } else { "no" }
        );
        assert!(both);
    }

    println!("\nWhat each subscriber privately extracted (publisher can't see this):");
    for (name, sub) in [("pn(a)", &a), ("pn(b)", &b), ("pn(c)", &c)] {
        println!(
            "  {} holds {} usable CSS(s) out of {} delivered envelopes",
            name,
            sub.css_count(),
            conds
                .iter()
                .filter(|cond| sub.attributes().contains(&cond.attribute))
                .count()
        );
    }

    // The table row for b and c cover the same YoS columns even though
    // their values differ — the publisher's view is shape-identical.
    println!("\nThe publisher sees identical registration shapes for satisfied and");
    println!("unsatisfied conditions; only the subscriber knows which envelopes opened.");
}
