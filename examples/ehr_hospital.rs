//! The paper's Example 4: a hospital broadcasts a patient EHR; six staff
//! roles see six different projections of it.
//!
//! Run with: `cargo run --release --example ehr_hospital`

use pbcd::core::SystemHarness;
use pbcd::docs::ehr_document;
use pbcd::policy::{
    AccessControlPolicy, AttributeCondition, AttributeSet, ComparisonOp, PolicySet,
};

fn example4_policies() -> PolicySet {
    let mut set = PolicySet::new();
    let doc = "EHR.xml";
    set.add(AccessControlPolicy::new(
        vec![AttributeCondition::eq_str("role", "rec")],
        &["ContactInfo"],
        doc,
    ));
    set.add(AccessControlPolicy::new(
        vec![AttributeCondition::eq_str("role", "cas")],
        &["BillingInfo"],
        doc,
    ));
    set.add(AccessControlPolicy::new(
        vec![AttributeCondition::eq_str("role", "doc")],
        &[
            "Medication",
            "PhysicalExams",
            "LabRecords",
            "Plan",
            "ContactInfo",
        ],
        doc,
    ));
    set.add(AccessControlPolicy::new(
        vec![
            AttributeCondition::eq_str("role", "nur"),
            AttributeCondition::new("level", ComparisonOp::Ge, 59),
        ],
        &[
            "ContactInfo",
            "Medication",
            "PhysicalExams",
            "LabRecords",
            "Plan",
        ],
        doc,
    ));
    set.add(AccessControlPolicy::new(
        vec![AttributeCondition::eq_str("role", "dat")],
        &["ContactInfo", "LabRecords"],
        doc,
    ));
    set.add(AccessControlPolicy::new(
        vec![AttributeCondition::eq_str("role", "pha")],
        &["BillingInfo", "Medication"],
        doc,
    ));
    set
}

fn main() {
    let mut sys = SystemHarness::new_p256(example4_policies(), 0xE4);

    println!("== Example 4: hospital EHR dissemination ==\n");
    println!("policies:");
    for (id, acp) in sys.publisher.policies().iter() {
        println!("  {id}: {acp}");
    }

    // Staff onboard and register (privacy-preserving: each registers for
    // every condition naming an attribute they hold a token for).
    let staff: Vec<(&str, AttributeSet)> = vec![
        (
            "receptionist rita",
            AttributeSet::new().with_str("role", "rec"),
        ),
        ("cashier carl", AttributeSet::new().with_str("role", "cas")),
        ("doctor dora", AttributeSet::new().with_str("role", "doc")),
        (
            "senior nurse nancy (level 59)",
            AttributeSet::new()
                .with_str("role", "nur")
                .with("level", 59),
        ),
        (
            "junior nurse nick (level 58)",
            AttributeSet::new()
                .with_str("role", "nur")
                .with("level", 58),
        ),
        (
            "data analyst dan",
            AttributeSet::new().with_str("role", "dat"),
        ),
        (
            "pharmacist pam",
            AttributeSet::new().with_str("role", "pha"),
        ),
    ];
    let subs: Vec<_> = staff
        .iter()
        .map(|(name, attrs)| (*name, sys.subscribe(name, attrs.clone())))
        .collect();

    // Broadcast the EHR.
    let ehr = ehr_document("Jane Doe");
    let bc = sys.publisher.broadcast(&ehr, "EHR.xml", &mut sys.rng);
    println!(
        "\nbroadcast: {} policy-configuration groups, {} bytes total\n",
        bc.groups.len(),
        bc.size_bytes()
    );

    // Access matrix.
    let tags = [
        "ContactInfo",
        "BillingInfo",
        "Medication",
        "PhysicalExams",
        "LabRecords",
        "Plan",
    ];
    let pol = sys.publisher.policies();
    println!("access matrix (✓ = decrypted, · = redacted):");
    print!("{:<32}", "");
    for t in &tags {
        print!("{:>15}", t);
    }
    println!();
    for (name, sub) in &subs {
        let view = sub
            .decrypt_broadcast(&bc, pol)
            .expect("well-formed broadcast");
        print!("{name:<32}");
        for t in &tags {
            let mark = if view.find(t).is_some() { "✓" } else { "·" };
            print!("{mark:>15}");
        }
        println!();
    }

    // The junior nurse (level 58) must see nothing — the paper's negative
    // example.
    let junior = &subs[4].1;
    let view = junior.decrypt_broadcast(&bc, pol).expect("well-formed");
    assert!(tags.iter().all(|t| view.find(t).is_none()));
    println!("\njunior nurse nick (level 58) was denied everything, as in the paper.");
}
