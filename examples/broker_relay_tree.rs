//! A two-tier dissemination overlay: one origin broker relays to two
//! edge brokers, subscribers attach to the edges, and one edge is
//! started **late** — it cold-starts from the origin's retention log and
//! converges to the identical retained set before serving its local
//! subscriber.
//!
//! The overlay moves the origin's ciphertext containers verbatim, one
//! hop at a time, so every tier fans out byte-identical frames and the
//! paper's trust model is unchanged: edges are as untrusted as the
//! origin broker — a wire tap with retention — and subscribers decrypt
//! only through their own registered secrets.
//!
//! ```sh
//! cargo run --release --example broker_relay_tree
//! ```

use pbcd::core::{NetPublisher, NetSubscriber, SystemHarness};
use pbcd::docs::Element;
use pbcd::net::{Broker, BrokerConfig, BrokerHandle, FsyncPolicy, RelayConfig};
use pbcd::policy::{AccessControlPolicy, AttributeCondition, AttributeSet, PolicySet};
use std::time::{Duration, Instant};

fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn main() {
    let mut policies = PolicySet::new();
    policies.add(AccessControlPolicy::new(
        vec![AttributeCondition::eq_str("role", "doctor")],
        &["Diagnosis"],
        "ward.xml",
    ));

    // Registration stays out-of-band, exactly as in the flat-broker
    // examples: no broker in the tree ever sees key material.
    let mut sys = SystemHarness::new_p256(policies, 7);
    let amira = sys.subscribe(
        "amira",
        AttributeSet::new()
            .with_str("role", "doctor")
            .with("clearance", 7),
    );
    let lena = sys.subscribe(
        "lena",
        AttributeSet::new()
            .with_str("role", "doctor")
            .with("clearance", 7),
    );
    let SystemHarness {
        publisher, mut rng, ..
    } = sys;

    // The origin: durable (its log is what late edges cold-start from)
    // and relay-enabled, dialing edges as they appear.
    let store_path =
        std::env::temp_dir().join(format!("pbcd-relay-tree-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&store_path);
    let origin = Broker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            store_path: Some(store_path.clone()),
            fsync: FsyncPolicy::PerPublish,
            history_depth: 3,
            relay: Some(RelayConfig {
                accept_peers: false,
                ..RelayConfig::new("origin")
            }),
            ..BrokerConfig::default()
        },
    )
    .expect("bind origin");

    // Edge 1 is up from the start and serves Amira live.
    let edge1 = edge_broker("edge-1");
    origin
        .add_peer(edge1.addr().to_string())
        .expect("peer edge-1");
    wait_until("edge-1 link", || origin.stats().relay_links == 1);
    println!(
        "origin {} → edge-1 {} (log: {})",
        origin.addr(),
        edge1.addr(),
        store_path.display()
    );

    let mut net_amira =
        NetSubscriber::connect(amira, edge1.addr(), &["ward.xml"]).expect("amira joins edge-1");

    // Three epochs enter at the origin and reach Amira through the edge.
    let mut net_pub = NetPublisher::connect(publisher, origin.addr()).expect("publisher connects");
    let shared_policies = net_pub.policies();
    for note in [
        "suspected appendicitis",
        "confirmed, surgery booked",
        "post-op stable",
    ] {
        let report = Element::new("WardReport").child(Element::new("Diagnosis").text(note));
        let receipt = net_pub
            .broadcast(&report, "ward.xml", &mut rng)
            .expect("broadcast");
        println!("published ward.xml epoch {} ({note:?})", receipt.epoch);
    }
    for _ in 0..3 {
        let (container, view) = net_amira
            .recv_document(&shared_policies)
            .expect("relayed delivery");
        println!(
            "amira (edge-1) decrypted epoch {}: {:?}",
            container.epoch,
            first_diagnosis(&view)
        );
    }

    // Edge 2 attaches late: everything it serves Lena was cold-started
    // out of the origin's retention log through RelayCatchUp.
    let edge2 = edge_broker("edge-2");
    origin
        .add_peer(edge2.addr().to_string())
        .expect("peer edge-2");
    wait_until("edge-2 cold start", || edge2.stats().relays_accepted == 3);
    let origin_stats = origin.stats();
    println!(
        "\nedge-2 {} attached late: {} record(s) streamed from the log, \
         {} forward(s) total over {} link(s)",
        edge2.addr(),
        origin_stats.relay_catch_up_records,
        origin_stats.relays_forwarded,
        origin_stats.relay_links,
    );

    let mut net_lena = NetSubscriber::connect_with_history(lena, edge2.addr(), &["ward.xml"], 3)
        .expect("lena joins edge-2");
    for _ in 0..3 {
        let (container, view) = net_lena
            .recv_document(&shared_policies)
            .expect("replayed delivery");
        println!(
            "lena (edge-2) replayed epoch {}: {:?}",
            container.epoch,
            first_diagnosis(&view)
        );
    }

    origin.shutdown();
    edge1.shutdown();
    edge2.shutdown();
    let _ = std::fs::remove_file(&store_path);
    println!("\ntree shut down cleanly; log removed");
}

fn edge_broker(id: &str) -> BrokerHandle {
    Broker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            history_depth: 3,
            relay: Some(RelayConfig::new(id)),
            ..BrokerConfig::default()
        },
    )
    .expect("bind edge")
}

fn first_diagnosis(view: &Element) -> String {
    view.find("Diagnosis")
        .and_then(|e| {
            e.children.iter().find_map(|n| match n {
                pbcd::docs::Node::Text(t) => Some(t.clone()),
                _ => None,
            })
        })
        .unwrap_or_else(|| "<redacted>".into())
}
