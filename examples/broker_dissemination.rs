//! Dissemination through an untrusted TCP broker on loopback, with
//! **publisher authentication** enabled.
//!
//! Demonstrates the deployment model the paper's construction enables: the
//! publisher hands every broadcast container to a third-party broker that
//! stores and fans it out *without being able to read it* — qualified
//! subscribers re-derive keys from the public ACV values in the container,
//! everyone else (including the broker) sees only ciphertext. The broker
//! is additionally configured with the publisher's *verification* key, so
//! only Schnorr-signed publishes mutate retained state — a hostile peer
//! can no longer squat the document name or burn the retention caps
//! (availability, on top of the paper's confidentiality guarantee).
//!
//! ```sh
//! cargo run --release --example broker_dissemination
//! ```

use pbcd::core::{NetPublisher, NetSubscriber, SystemHarness};
use pbcd::docs::Element;
use pbcd::group::SigningKey;
use pbcd::net::{Broker, BrokerClient, BrokerConfig, PeerRole, PublisherDirectory};
use pbcd::policy::{
    AccessControlPolicy, AttributeCondition, AttributeSet, ComparisonOp, PolicySet,
};
use std::sync::Arc;

fn main() {
    // Policies: doctors read the diagnosis, clearance ≥ 5 reads billing.
    let mut policies = PolicySet::new();
    policies.add(AccessControlPolicy::new(
        vec![AttributeCondition::eq_str("role", "doctor")],
        &["Diagnosis"],
        "ward.xml",
    ));
    policies.add(AccessControlPolicy::new(
        vec![AttributeCondition::new("clearance", ComparisonOp::Ge, 5)],
        &["Billing"],
        "ward.xml",
    ));

    // Out-of-band phase: token issuance + oblivious registration, exactly
    // as in the in-process examples. The broker plays no part in this.
    let mut sys = SystemHarness::new_p256(policies, 7);
    let doctor = sys.subscribe(
        "dora",
        AttributeSet::new()
            .with_str("role", "doctor")
            .with("clearance", 7),
    );
    let nurse = sys.subscribe(
        "nancy",
        AttributeSet::new()
            .with_str("role", "nurse")
            .with("clearance", 6),
    );
    let clerk = sys.subscribe(
        "carl",
        AttributeSet::new()
            .with_str("role", "clerk")
            .with("clearance", 1),
    );

    // The publisher's broker-authentication key pair: the broker gets the
    // verification half only, keyed by a deployment-chosen id.
    let SystemHarness {
        publisher, mut rng, ..
    } = sys;
    let group = publisher.ocbe().group().clone();
    let signing_key = SigningKey::generate(&group, &mut rng);
    let directory =
        PublisherDirectory::new(group).with_key("ward-publisher", signing_key.verifying_key());

    // The untrusted broker: an ephemeral TCP server on loopback that now
    // refuses publishes not signed by an authorized key.
    let broker = Broker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            publisher_auth: Some(Arc::new(directory)),
            ..BrokerConfig::default()
        },
    )
    .expect("bind loopback broker");
    println!("broker listening on {} (publisher auth ON)", broker.addr());

    let mut net_doctor =
        NetSubscriber::connect(doctor, broker.addr(), &["ward.xml"]).expect("doctor connects");
    let mut net_nurse =
        NetSubscriber::connect(nurse, broker.addr(), &["ward.xml"]).expect("nurse connects");
    let mut net_clerk =
        NetSubscriber::connect(clerk, broker.addr(), &["ward.xml"]).expect("clerk connects");

    // A hostile peer tries the classic availability attack first: squat
    // the document name at the maximum epoch so the real publisher would
    // be locked out by the stale-epoch guard. With keys configured the
    // broker refuses it outright.
    let mut hostile =
        BrokerClient::connect(broker.addr(), PeerRole::Publisher).expect("hostile connects");
    let junk = pbcd::docs::BroadcastContainer {
        epoch: u64::MAX,
        document_name: "ward.xml".into(),
        skeleton_xml: "<r><pbcd-segment id=\"0\"/></r>".into(),
        groups: vec![],
    };
    match hostile.publish(&junk) {
        Err(e) => println!("hostile unsigned publish at epoch u64::MAX refused: {e}"),
        Ok(_) => unreachable!("the keyed broker must refuse unsigned publishes"),
    }

    let mut net_pub = NetPublisher::connect(publisher, broker.addr())
        .expect("publisher connects")
        .with_signing_key("ward-publisher", signing_key);

    let report = Element::new("WardReport")
        .child(Element::new("Diagnosis").text("acute appendicitis, operate today"))
        .child(Element::new("Billing").text("invoice total 4815 USD"));
    let receipt = net_pub
        .broadcast(&report, "ward.xml", &mut rng)
        .expect("signed broadcast through the broker");
    println!(
        "signed publish of ward.xml epoch {} → fanned out to {} subscribers",
        receipt.epoch, receipt.fanout
    );

    let policies = net_pub.policies();
    for (name, sub) in [
        ("doctor", &mut net_doctor),
        ("nurse", &mut net_nurse),
        ("clerk", &mut net_clerk),
    ] {
        let (container, view) = sub.recv_document(&policies).expect("delivery");
        let tags = sub.subscriber().accessible_tags(&container, &policies);
        println!(
            "{name:>6}: decrypted {:?} — Diagnosis {}, Billing {}",
            tags,
            if view.find("Diagnosis").is_some() {
                "readable"
            } else {
                "redacted"
            },
            if view.find("Billing").is_some() {
                "readable"
            } else {
                "redacted"
            },
        );
    }

    // What the broker knows: container metadata, nothing decryptable.
    let configs = net_pub.list_configs().expect("list configs");
    for c in configs {
        println!(
            "broker retains {:?}: epoch {}, {} policy group(s), {} bytes of ciphertext+public info",
            c.document_name,
            c.epoch,
            c.config_ids.len(),
            c.size_bytes
        );
    }
    let stats = broker.stats();
    println!(
        "broker stats: {} publish(es), {} rejected publish(es), {} deliveries, {} drops, \
         {} rejected connections, queue depth {}",
        stats.publishes,
        stats.publishes_rejected,
        stats.deliveries,
        stats.subscribers_dropped,
        stats.connections_rejected,
        stats.queue_depth,
    );
    broker.shutdown();
    println!("broker shut down cleanly");
}
