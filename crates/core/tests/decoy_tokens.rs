//! Focused tests for the §VI-A decoy-token extension at the core layer.

use pbcd_core::idmgr::{decoy_value, IdentityManager};
use pbcd_core::idp::IdentityProvider;
use pbcd_group::{CyclicGroup, P256Group};
use rand::SeedableRng;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0xDEC0)
}

#[test]
fn decoy_tokens_verify_like_real_ones() {
    let mut r = rng();
    let group = P256Group::new();
    let mut idmgr = IdentityManager::new(group, &mut r);
    let (token, opening) = idmgr.issue_decoy_token("carl", "level", &mut r);
    assert_eq!(token.id_tag, "level");
    // Signature checks out — the publisher cannot tell it is a decoy.
    token
        .verify(idmgr.pedersen(), &idmgr.verifying_key())
        .unwrap();
    // The opening matches and commits to the reserved out-of-range value.
    assert!(idmgr.pedersen().verify_open(&token.commitment, &opening));
    let sc = idmgr.pedersen().group().scalar_ctx().clone();
    assert_eq!(opening.value, sc.from_u64(decoy_value()));
}

#[test]
fn decoy_shares_the_subjects_nym() {
    let mut r = rng();
    let group = P256Group::new();
    let idp = IdentityProvider::new(group.clone(), "HR", &mut r);
    let mut idmgr = IdentityManager::new(group, &mut r);
    let assertion = idp.assert_attribute("carl", "age", 30, &mut r);
    let (real, _) = idmgr
        .issue_token(&assertion, &idp.verifying_key(), &mut r)
        .unwrap();
    let (decoy, _) = idmgr.issue_decoy_token("carl", "level", &mut r);
    assert_eq!(real.nym, decoy.nym, "one pseudonym per subject");
}

#[test]
fn decoy_value_is_outside_every_attribute_space() {
    // ℓ ≤ 62-bit attribute spaces and the 48-bit string encoding are all
    // strictly below the decoy value.
    assert!(decoy_value() >= 1 << 62);
    assert!(decoy_value() > (1 << 48), "above string encodings");
    // And it is representable as an OCBE commitment input (u64).
    let _ = decoy_value();
}

#[test]
fn decoys_are_unlinkable_across_subjects() {
    let mut r = rng();
    let group = P256Group::new();
    let mut idmgr = IdentityManager::new(group, &mut r);
    let (a, _) = idmgr.issue_decoy_token("alice", "level", &mut r);
    let (b, _) = idmgr.issue_decoy_token("bob", "level", &mut r);
    // Same committed value, but hiding randomness makes the commitments
    // (and thus the tokens) unlinkable.
    assert_ne!(a.commitment, b.commitment);
    assert_ne!(a.nym, b.nym);
}
