//! The service plane's registry-backed telemetry: a `Stats` proto request
//! is answered with the text exposition, `ServiceStats` is a consistent
//! view over the same registry, per-kind handler latencies and OCBE
//! envelope flavours are booked, and the direct transport times requests.

use pbcd_core::proto::{self, Request, Response};
use pbcd_core::{
    PublisherService, RegistrationSession, SharedPublisherService, Subscriber, SystemHarness,
};
use pbcd_group::P256Group;
use pbcd_net::{RegistrationClient, RegistrationServer};
use pbcd_policy::{AccessControlPolicy, AttributeCondition, AttributeSet, ComparisonOp, PolicySet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn policies() -> PolicySet {
    let mut set = PolicySet::new();
    set.add(AccessControlPolicy::new(
        vec![AttributeCondition::new("age", ComparisonOp::Ge, 18)],
        &["Content"],
        "d.xml",
    ));
    set
}

fn setup() -> (
    P256Group,
    PublisherService<P256Group>,
    Subscriber<P256Group>,
    StdRng,
) {
    let mut sys = SystemHarness::new_p256(policies(), 0x7E1E);
    let sub = sys.onboard("alice", AttributeSet::new().with("age", 30));
    let SystemHarness { publisher, .. } = sys;
    (
        P256Group::new(),
        PublisherService::new(publisher, 0x5EED),
        sub,
        StdRng::seed_from_u64(9),
    )
}

fn register_once(
    group: &P256Group,
    sub: &mut Subscriber<P256Group>,
    rng: &mut StdRng,
    mut handle: impl FnMut(&[u8]) -> Vec<u8>,
) {
    let cond = AttributeCondition::new("age", ComparisonOp::Ge, 18);
    let session = RegistrationSession::new(sub, group.clone(), 48);
    let (request, pending) = session.start(&cond, rng).expect("start");
    let response = handle(&request);
    assert!(pending.complete(&response).expect("complete"), "CSS opens");
}

/// A `Stats` request is answered from the service's own registry: request
/// counters, per-kind handler latency and the OCBE envelope flavour of the
/// registration that just ran, with no plaintext attribute values leaked.
#[test]
fn stats_query_returns_registry_exposition() {
    let (group, mut service, mut sub, mut rng) = setup();
    let exp_before = pbcd_group::ops::exp_total();
    register_once(&group, &mut sub, &mut rng, |req| service.handle(req));

    let query = Request::<P256Group>::Stats.encode(&group).expect("encode");
    assert!(proto::is_stats_query(&query));
    let response = service.handle(&query);
    let text = match Response::<P256Group>::decode(&group, &response).expect("decode") {
        Response::Stats { text } => text,
        other => panic!("expected Stats, got {other:?}"),
    };

    // One registration, then the stats query itself (counted as served).
    assert!(text.contains("service_requests_total 2"), "{text}");
    assert!(text.contains("service_registrations_total 1"), "{text}");
    assert!(text.contains("service_errors_total 0"), "{text}");
    // GE condition → one GE envelope.
    assert!(
        text.contains("ocbe_envelopes_total{kind=\"ge\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("ocbe_envelopes_total{kind=\"eq\"} 0"),
        "{text}"
    );
    // Per-kind latency histograms carry the traffic.
    assert!(
        text.contains("service_handle_ns_count{kind=\"register\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("service_handle_ns{kind=\"register\",quantile=\"0.5\"}"),
        "{text}"
    );
    // Group exponentiations ran during envelope composition; the mirrored
    // gauge must have advanced past the pre-test tally (the tally is
    // process-wide, so only deltas are meaningful under `cargo test`).
    let exp_line = text
        .lines()
        .find(|l| l.starts_with("group_exp_total "))
        .expect("group_exp_total exposed");
    let exp_now: u64 = exp_line.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert!(exp_now > exp_before, "{exp_line} vs before {exp_before}");
    // Threat model: aggregates only — no attribute names or values.
    assert!(!text.contains("age"), "{text}");
    assert!(!text.contains("alice"), "{text}");

    // The fixed-shape view reads the same registry.
    let stats = service.stats();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.registrations, 1);
    assert_eq!(stats.errors, 0);
    assert_eq!(service.metrics().counter("service_requests_total"), Some(2));
}

/// Both `SharedPublisherService` request paths (concurrent registration
/// and the exclusive fallback) book into one registry, and a stats query
/// through the shared service reflects the merged totals.
#[test]
fn shared_service_paths_feed_one_registry() {
    let (group, service, mut sub, mut rng) = setup();
    let shared = Arc::new(SharedPublisherService::new(service));

    // Concurrent fast path: registration.
    register_once(&group, &mut sub, &mut rng, |req| shared.handle(req));
    // Exclusive path: garbage → malformed error.
    let garbage = shared.handle(b"not a protocol message");
    assert!(proto::is_error_response(&garbage));

    let stats = shared.stats();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.registrations, 1);
    assert_eq!(stats.errors, 1);

    let query = Request::<P256Group>::Stats.encode(&group).expect("encode");
    let response = shared.handle(&query);
    let text = match Response::<P256Group>::decode(&group, &response).expect("decode") {
        Response::Stats { text } => text,
        other => panic!("expected Stats, got {other:?}"),
    };
    assert!(text.contains("service_registrations_total 1"), "{text}");
    assert!(text.contains("service_errors_total 1"), "{text}");
    assert!(
        text.contains("service_handle_ns_count{kind=\"malformed\"} 1"),
        "{text}"
    );
    assert_eq!(
        shared.metrics().counter("service_registrations_total"),
        Some(1)
    );
}

/// The byte classifiers the telemetry layer keys on.
#[test]
fn request_kind_labels_classify_wire_bytes() {
    let (group, _, mut sub, mut rng) = setup();
    let stats = Request::<P256Group>::Stats.encode(&group).unwrap();
    assert_eq!(proto::request_kind_label(&stats), "stats");
    assert_eq!(proto::request_kind_label(b"junk"), "malformed");
    let cond = AttributeCondition::new("age", ComparisonOp::Ge, 18);
    let session = RegistrationSession::new(&mut sub, group.clone(), 48);
    let (register, _) = session.start(&cond, &mut rng).expect("start");
    assert_eq!(proto::request_kind_label(&register), "register");
}

/// End to end over the direct transport: a remote peer sends the stats
/// query through a `RegistrationServer`, and the transport's own registry
/// times the request.
#[test]
fn stats_query_over_direct_transport() {
    let (group, service, mut sub, mut rng) = setup();
    let shared = Arc::new(SharedPublisherService::new(service));
    let handler = Arc::clone(&shared);
    let server =
        RegistrationServer::bind_concurrent("127.0.0.1:0", move |req: &[u8]| handler.handle(req))
            .expect("bind");
    let mut client = RegistrationClient::connect(server.addr()).expect("connect");

    register_once(&group, &mut sub, &mut rng, |req| {
        client.call(req).expect("call")
    });
    let query = Request::<P256Group>::Stats.encode(&group).unwrap();
    let response = client.call(&query).expect("stats call");
    let text = match Response::<P256Group>::decode(&group, &response).expect("decode") {
        Response::Stats { text } => text,
        other => panic!("expected Stats, got {other:?}"),
    };
    assert!(text.contains("service_registrations_total 1"), "{text}");

    // The transport's registry saw both calls, with latency recorded.
    assert_eq!(server.requests_served(), 2);
    let snap = server.metrics();
    assert_eq!(snap.counter("direct_requests_total"), Some(2));
    let lat = snap.histogram("direct_request_ns").expect("registered");
    assert_eq!(lat.count, 2);
    assert!(lat.max > 0);
    assert!(server.metrics_text().contains("direct_requests_total 2"));
    server.shutdown();
}
