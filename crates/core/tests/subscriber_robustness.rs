//! Subscriber-side robustness: malformed broadcasts must fail closed
//! (errors or redactions), never panic or leak.

use pbcd_core::SystemHarness;
use pbcd_docs::{BroadcastContainer, Element};
use pbcd_policy::{AccessControlPolicy, AttributeCondition, AttributeSet, PolicySet};

fn policies() -> PolicySet {
    let mut set = PolicySet::new();
    set.add(AccessControlPolicy::new(
        vec![AttributeCondition::eq_str("role", "doctor")],
        &["Secret"],
        "doc.xml",
    ));
    set
}

fn doc() -> Element {
    Element::new("root").child(Element::new("Secret").text("content"))
}

#[test]
fn malformed_key_info_fails_closed_with_redaction() {
    // Containers can arrive via an untrusted broker: a corrupted group must
    // neither panic nor error out the rest of the broadcast — it is simply
    // redacted, exactly like a group the subscriber is not qualified for.
    let mut sys = SystemHarness::new_p256(policies(), 0x0B1);
    let doctor = sys.subscribe("dora", AttributeSet::new().with_str("role", "doctor"));
    let mut bc = sys.publisher.broadcast(&doc(), "doc.xml", &mut sys.rng);
    for g in &mut bc.groups {
        if !g.key_info.is_empty() {
            g.key_info = vec![0xff; 7]; // garbage
        }
    }
    let view = doctor
        .decrypt_broadcast(&bc, sys.publisher.policies())
        .expect("malformed key info is redaction, not an error");
    assert!(view.find("Secret").is_none(), "corrupted group redacted");
}

#[test]
fn broken_skeleton_is_an_error() {
    let mut sys = SystemHarness::new_p256(policies(), 0x0B2);
    let doctor = sys.subscribe("dora", AttributeSet::new().with_str("role", "doctor"));
    let mut bc = sys.publisher.broadcast(&doc(), "doc.xml", &mut sys.rng);
    bc.skeleton_xml = "<unclosed".into();
    assert!(matches!(
        doctor
            .decrypt_broadcast(&bc, sys.publisher.policies())
            .unwrap_err(),
        pbcd_core::PbcdError::Xml(_)
    ));
}

#[test]
fn swapped_segment_ciphertexts_fail_closed() {
    // Moving a ciphertext between groups means it decrypts under the wrong
    // key → MAC failure → redaction, not garbage output.
    let mut sys = SystemHarness::new_p256(policies(), 0x0B3);
    let doctor = sys.subscribe("dora", AttributeSet::new().with_str("role", "doctor"));
    let bc = sys.publisher.broadcast(&doc(), "doc.xml", &mut sys.rng);
    let mut tampered = bc.clone();
    // Replace every ciphertext with one from another segment if possible,
    // or corrupt in place.
    let all: Vec<Vec<u8>> = tampered
        .groups
        .iter()
        .flat_map(|g| g.segments.iter().map(|s| s.ciphertext.clone()))
        .collect();
    if all.len() >= 2 {
        let mut i = 0;
        for g in &mut tampered.groups {
            for s in &mut g.segments {
                s.ciphertext = all[(i + 1) % all.len()].clone();
                i += 1;
            }
        }
    } else {
        for g in &mut tampered.groups {
            for s in &mut g.segments {
                s.ciphertext.reverse();
            }
        }
    }
    let view = doctor
        .decrypt_broadcast(&tampered, sys.publisher.policies())
        .unwrap();
    assert!(view.find("Secret").is_none(), "tampered segment redacted");
}

#[test]
fn decode_reject_does_not_affect_subsequent_broadcasts() {
    let mut sys = SystemHarness::new_p256(policies(), 0x0B4);
    let doctor = sys.subscribe("dora", AttributeSet::new().with_str("role", "doctor"));
    // Garbage container from the network.
    assert!(BroadcastContainer::decode(b"not a container").is_err());
    // The next well-formed broadcast works as usual.
    let bc = sys.publisher.broadcast(&doc(), "doc.xml", &mut sys.rng);
    let view = doctor
        .decrypt_broadcast(&bc, sys.publisher.policies())
        .unwrap();
    assert!(view.find("Secret").is_some());
}

#[test]
fn empty_document_broadcasts_cleanly() {
    let mut sys = SystemHarness::new_p256(policies(), 0x0B5);
    let doctor = sys.subscribe("dora", AttributeSet::new().with_str("role", "doctor"));
    // A document with no policy-relevant tags at all.
    let plain = Element::new("root").child(Element::new("Public").text("hello"));
    let bc = sys.publisher.broadcast(&plain, "doc.xml", &mut sys.rng);
    let view = doctor
        .decrypt_broadcast(&bc, sys.publisher.policies())
        .unwrap();
    assert!(
        view.find("Public").is_some(),
        "non-segmented content is plaintext"
    );
}
