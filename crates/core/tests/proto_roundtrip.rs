//! Protocol-layer codec robustness: every [`pbcd_core::proto`] message
//! round-trips bit-exactly, and decoding is **total** — truncation,
//! corruption, trailing bytes and header tampering yield errors, never
//! panics. These are the attacker-facing bytes of the registration
//! endpoint, so the fuzz here mirrors `pbcd_net`'s frame proptests.

use pbcd_core::proto::{
    ConditionsInfo, ErrorCode, ErrorResponse, IssueRequest, IssueResponse, RegisterRequest,
    RegisterResponse, Request, Response,
};
use pbcd_core::{IdentityManager, IdentityProvider};
use pbcd_group::P256Group;
use pbcd_ocbe::{ComparisonOp, OcbeSystem, Predicate};
use pbcd_policy::AttributeCondition;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn group() -> P256Group {
    P256Group::new()
}

/// Builds one of every request/response shape, covering all proof and
/// envelope variants (Empty/Bits/Dual, Eq/Ge/Le/Dual — including the
/// edge thresholds where one Dual side is absent).
fn sample_messages() -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let group = group();
    let mut rng = StdRng::seed_from_u64(0xC0DEC);
    let idp = IdentityProvider::new(group.clone(), "idp", &mut rng);
    let mut idmgr = IdentityManager::new(group.clone(), &mut rng);
    let assertion = idp.assert_attribute("alice", "level", 59, &mut rng);
    let (token, opening) = idmgr
        .issue_token(&assertion, &idp.verifying_key(), &mut rng)
        .expect("honest assertion");
    let ocbe = OcbeSystem::new(group.clone(), 16);

    let mut requests = vec![
        Request::<P256Group>::ConditionsQuery { attribute: None }
            .encode(&group)
            .unwrap(),
        Request::<P256Group>::ConditionsQuery {
            attribute: Some("level".into()),
        }
        .encode(&group)
        .unwrap(),
        Request::<P256Group>::Issue(IssueRequest {
            subject: "alice".into(),
            attribute: "level".into(),
            value: 59,
        })
        .encode(&group)
        .unwrap(),
    ];
    let mut responses = vec![
        Response::<P256Group>::Conditions(ConditionsInfo {
            ell: 16,
            kappa_bits: 128,
            conditions: vec![
                AttributeCondition::new("level", ComparisonOp::Ge, 59),
                AttributeCondition::eq_str("role", "nurse"),
            ],
        })
        .encode(&group)
        .unwrap(),
        Response::<P256Group>::Issue(IssueResponse {
            token: token.clone(),
            opening: opening.clone(),
        })
        .encode(&group)
        .unwrap(),
        Response::<P256Group>::Error(ErrorResponse {
            code: ErrorCode::UnknownCondition,
            message: "no such condition".into(),
        })
        .encode(&group)
        .unwrap(),
    ];

    // One register request/response pair per comparison operator,
    // including the ≠ edge thresholds (threshold 0 ⇒ GE side only;
    // threshold max ⇒ LE side only).
    for (op, threshold) in [
        (ComparisonOp::Eq, 59),
        (ComparisonOp::Ge, 59),
        (ComparisonOp::Gt, 10),
        (ComparisonOp::Le, 59),
        (ComparisonOp::Lt, 59),
        (ComparisonOp::Neq, 59),
        (ComparisonOp::Neq, 0),
        (ComparisonOp::Neq, 65535),
    ] {
        let pred = Predicate::new(op, threshold);
        let (proof, _secrets) = ocbe
            .receiver_prepare(59, &opening, &pred, &mut rng)
            .expect("satisfiable predicate");
        let envelope = ocbe
            .sender_compose(&token.commitment, &pred, &proof, b"css-bytes", &mut rng)
            .expect("proof accepted");
        requests.push(
            Request::Register(RegisterRequest {
                token: token.clone(),
                cond: AttributeCondition::new("level", op, threshold),
                proof,
            })
            .encode(&group)
            .unwrap(),
        );
        responses.push(
            Response::Register(RegisterResponse { envelope })
                .encode(&group)
                .unwrap(),
        );
    }
    (requests, responses)
}

/// decode → re-encode must reproduce the original bytes exactly (the
/// codec is canonical, so byte equality substitutes for structural
/// equality without `PartialEq` on envelope types).
#[test]
fn every_message_roundtrips_bit_exactly() {
    let group = group();
    let (requests, responses) = sample_messages();
    for bytes in &requests {
        let decoded = Request::<P256Group>::decode(&group, bytes).expect("request decodes");
        assert_eq!(&decoded.encode(&group).unwrap(), bytes, "{decoded:?}");
    }
    for bytes in &responses {
        let decoded = Response::<P256Group>::decode(&group, bytes).expect("response decodes");
        assert_eq!(&decoded.encode(&group).unwrap(), bytes, "{decoded:?}");
    }
}

/// Every strict prefix of every message fails to decode (and never
/// panics).
#[test]
fn truncation_never_decodes() {
    let group = group();
    let (requests, responses) = sample_messages();
    for bytes in &requests {
        for cut in 0..bytes.len() {
            assert!(
                Request::<P256Group>::decode(&group, &bytes[..cut]).is_err(),
                "request cut at {cut}"
            );
        }
    }
    for bytes in &responses {
        for cut in 0..bytes.len() {
            assert!(
                Response::<P256Group>::decode(&group, &bytes[..cut]).is_err(),
                "response cut at {cut}"
            );
        }
    }
}

#[test]
fn trailing_garbage_rejected() {
    let group = group();
    let (requests, responses) = sample_messages();
    for bytes in requests {
        let mut long = bytes;
        long.push(0);
        assert!(Request::<P256Group>::decode(&group, &long).is_err());
    }
    for bytes in responses {
        let mut long = bytes;
        long.push(0);
        assert!(Response::<P256Group>::decode(&group, &long).is_err());
    }
}

#[test]
fn header_tampering_rejected() {
    let group = group();
    let good = Request::<P256Group>::ConditionsQuery { attribute: None }
        .encode(&group)
        .unwrap();
    for (idx, val) in [(0usize, b'X'), (2, 99), (3, 200)] {
        let mut bad = good.clone();
        bad[idx] = val;
        assert!(Request::<P256Group>::decode(&group, &bad).is_err());
    }
    // Response kinds are rejected on the request side and vice versa.
    let resp = Response::<P256Group>::Error(ErrorResponse {
        code: ErrorCode::Internal,
        message: String::new(),
    })
    .encode(&group)
    .unwrap();
    assert!(Request::<P256Group>::decode(&group, &resp).is_err());
}

/// A non-canonical scalar (≥ group order) in a token signature must be
/// rejected, not silently reduced — otherwise one signature would have
/// multiple wire forms.
#[test]
fn non_canonical_scalars_rejected() {
    let group = group();
    let (requests, _) = sample_messages();
    // requests[3] is the first Register message; the signature scalars sit
    // after nym, id_tag and the commitment. Rather than compute offsets,
    // corrupt every 32-byte-aligned window to all-0xFF and require that
    // *no* corruption both decodes and re-encodes differently.
    for bytes in &requests {
        for start in (0..bytes.len().saturating_sub(32)).step_by(7) {
            let mut bad = bytes.clone();
            for b in &mut bad[start..start + 32] {
                *b = 0xFF;
            }
            if let Ok(decoded) = Request::<P256Group>::decode(&group, &bad) {
                // If it decodes, re-encoding must reproduce the mutated
                // bytes (canonicality).
                assert_eq!(decoded.encode(&group).unwrap(), bad);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random single-byte corruption anywhere in any message: decode may
    /// succeed or fail, but must never panic, and anything that decodes
    /// must re-encode canonically.
    #[test]
    fn corruption_is_total(msg_idx in 0usize..11, raw_pos in 0usize..1_000_000, delta in 1u8..=255) {
        let group = group();
        let (requests, responses) = sample_messages();
        let reqs = &requests[msg_idx.min(requests.len() - 1)];
        let pos = raw_pos % reqs.len();
        let mut bad = reqs.clone();
        bad[pos] = bad[pos].wrapping_add(delta);
        if let Ok(decoded) = Request::<P256Group>::decode(&group, &bad) {
            prop_assert_eq!(decoded.encode(&group).unwrap(), bad);
        }
        let resp = &responses[msg_idx.min(responses.len() - 1)];
        let pos = raw_pos % resp.len();
        let mut bad = resp.clone();
        bad[pos] = bad[pos].wrapping_add(delta);
        if let Ok(decoded) = Response::<P256Group>::decode(&group, &bad) {
            prop_assert_eq!(decoded.encode(&group).unwrap(), bad);
        }
    }

    /// Arbitrary conditions round-trip through the Conditions response.
    #[test]
    fn arbitrary_conditions_roundtrip(
        attrs in prop::collection::vec("[a-zA-Z][a-zA-Z0-9_.-]{0,12}", 0..6),
        ops in prop::collection::vec(0u8..6, 6),
        thresholds in prop::collection::vec(any::<u64>(), 6),
        ell in 1u32..=63,
        kappa in 1u32..=4096,
    ) {
        let group = group();
        let conditions: Vec<AttributeCondition> = attrs
            .iter()
            .zip(&ops)
            .zip(&thresholds)
            .map(|((a, &o), &t)| {
                let op = [
                    ComparisonOp::Eq, ComparisonOp::Neq, ComparisonOp::Gt,
                    ComparisonOp::Ge, ComparisonOp::Lt, ComparisonOp::Le,
                ][o as usize];
                AttributeCondition::new(a, op, t)
            })
            .collect();
        let info = ConditionsInfo { ell, kappa_bits: kappa, conditions };
        let bytes = Response::<P256Group>::Conditions(info.clone()).encode(&group).unwrap();
        match Response::<P256Group>::decode(&group, &bytes).expect("decodes") {
            Response::Conditions(back) => prop_assert_eq!(back, info),
            other => prop_assert!(false, "wrong kind: {:?}", other),
        }
    }

    /// Pure noise never decodes as anything (the magic gate) and never
    /// panics.
    #[test]
    fn random_noise_never_panics(noise in prop::collection::vec(any::<u8>(), 0..256)) {
        let group = group();
        let _ = Request::<P256Group>::decode(&group, &noise);
        let _ = Response::<P256Group>::decode(&group, &noise);
        if noise.len() >= 2 && &noise[..2] != b"PP" {
            prop_assert!(Request::<P256Group>::decode(&group, &noise).is_err());
        }
    }
}
