//! Adversarial tests for the bytes-in/bytes-out services: every hostile
//! input gets a typed error response, nothing panics, and the service
//! keeps serving afterwards.

use pbcd_core::proto::{self, ErrorCode, Request, Response};
use pbcd_core::{IssuerService, PublisherService, RegistrationSession, Subscriber, SystemHarness};
use pbcd_group::P256Group;
use pbcd_ocbe::ProofMessage;
use pbcd_policy::{AccessControlPolicy, AttributeCondition, AttributeSet, ComparisonOp, PolicySet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn policies() -> PolicySet {
    let mut set = PolicySet::new();
    set.add(AccessControlPolicy::new(
        vec![AttributeCondition::new("age", ComparisonOp::Ge, 18)],
        &["Content"],
        "d.xml",
    ));
    set
}

/// A harness-backed service plus one onboarded (but unregistered)
/// subscriber with a valid token.
fn setup() -> (
    P256Group,
    PublisherService<P256Group>,
    Subscriber<P256Group>,
    StdRng,
) {
    let mut sys = SystemHarness::new_p256(policies(), 0xAD7E);
    let sub = sys.onboard("alice", AttributeSet::new().with("age", 30));
    let SystemHarness { publisher, .. } = sys;
    (
        P256Group::new(),
        PublisherService::new(publisher, 0x5EED),
        sub,
        StdRng::seed_from_u64(9),
    )
}

fn expect_error(group: &P256Group, response: &[u8], code: ErrorCode) {
    assert!(proto::is_error_response(response));
    match Response::<P256Group>::decode(group, response).expect("error decodes") {
        Response::Error(e) => assert_eq!(e.code, code, "{}", e.message),
        other => panic!("expected error, got {other:?}"),
    }
}

/// After any rejected request, a well-formed registration must still
/// succeed — "the service keeps serving".
fn assert_still_serving(
    group: &P256Group,
    service: &mut PublisherService<P256Group>,
    sub: &mut Subscriber<P256Group>,
    rng: &mut StdRng,
) {
    let cond = AttributeCondition::new("age", ComparisonOp::Ge, 18);
    let session = RegistrationSession::new(sub, group.clone(), 48);
    let (request, pending) = session.start(&cond, rng).expect("start");
    let response = service.handle(&request);
    assert!(pending.complete(&response).expect("complete"), "CSS opens");
}

#[test]
fn garbage_bytes_get_typed_error_and_service_survives() {
    let (group, mut service, mut sub, mut rng) = setup();
    for garbage in [
        Vec::new(),
        vec![0u8; 3],
        b"not a protocol message at all".to_vec(),
        vec![0x50, 0x50, 9, 1, 0], // wrong version
        vec![0x50, 0x50, 1, 77],   // unknown kind
    ] {
        let response = service.handle(&garbage);
        expect_error(&group, &response, ErrorCode::Malformed);
    }
    assert_still_serving(&group, &mut service, &mut sub, &mut rng);
    let stats = service.stats();
    assert_eq!(stats.errors, 5);
    assert_eq!(stats.registrations, 1);
    assert_eq!(stats.requests, 6);
}

#[test]
fn unknown_condition_rejected_with_typed_error() {
    let (group, mut service, mut sub, mut rng) = setup();
    let rogue = AttributeCondition::new("age", ComparisonOp::Ge, 99);
    let session = RegistrationSession::new(&mut sub, group.clone(), 48);
    let (request, _pending) = session.start(&rogue, &mut rng).expect("start");
    let response = service.handle(&request);
    expect_error(&group, &response, ErrorCode::UnknownCondition);
    assert_still_serving(&group, &mut service, &mut sub, &mut rng);
}

#[test]
fn wrong_tag_token_rejected_with_typed_error() {
    let (group, mut service, mut sub, mut rng) = setup();
    // Hand-build a request whose token (for "age") claims a condition on
    // a different attribute.
    let token = sub.token_for("age").expect("token").clone();
    let request = Request::Register(pbcd_core::proto::RegisterRequest {
        token,
        cond: AttributeCondition::new("level", ComparisonOp::Eq, 1),
        proof: ProofMessage::Empty,
    })
    .encode(&group)
    .expect("encodes");
    let response = service.handle(&request);
    expect_error(&group, &response, ErrorCode::TagMismatch);
    assert_still_serving(&group, &mut service, &mut sub, &mut rng);
}

#[test]
fn forged_token_rejected_with_typed_error() {
    let (group, mut service, mut sub, mut rng) = setup();
    let mut token = sub.token_for("age").expect("token").clone();
    token.nym = "pn-spoofed".into(); // breaks the signature binding
    let cond = AttributeCondition::new("age", ComparisonOp::Ge, 18);
    let (proof, _) = sub
        .prepare_registration(
            &pbcd_ocbe::OcbeSystem::new(group.clone(), 48),
            &cond,
            &mut rng,
        )
        .expect("prepare");
    let request = Request::Register(pbcd_core::proto::RegisterRequest { token, cond, proof })
        .encode(&group)
        .expect("encodes");
    let response = service.handle(&request);
    expect_error(&group, &response, ErrorCode::BadToken);
    assert_still_serving(&group, &mut service, &mut sub, &mut rng);
}

#[test]
fn wrong_proof_shape_rejected_with_typed_error() {
    let (group, mut service, mut sub, mut rng) = setup();
    let token = sub.token_for("age").expect("token").clone();
    // GE condition with an EQ-shaped (empty) proof.
    let request = Request::Register(pbcd_core::proto::RegisterRequest {
        token,
        cond: AttributeCondition::new("age", ComparisonOp::Ge, 18),
        proof: ProofMessage::Empty,
    })
    .encode(&group)
    .expect("encodes");
    let response = service.handle(&request);
    expect_error(&group, &response, ErrorCode::BadProof);
    assert_still_serving(&group, &mut service, &mut sub, &mut rng);
}

#[test]
fn replayed_register_request_reissues_without_growing_the_table() {
    let (group, mut service, mut sub, mut rng) = setup();
    let cond = AttributeCondition::new("age", ComparisonOp::Ge, 18);
    let session = RegistrationSession::new(&mut sub, group.clone(), 48);
    let (request, pending) = session.start(&cond, &mut rng).expect("start");
    let first = service.handle(&request);
    let replay = service.handle(&request);
    assert!(!proto::is_error_response(&first));
    assert!(!proto::is_error_response(&replay));
    assert_eq!(
        service.publisher().css_table().record_count(),
        1,
        "replay overrides (credential-update semantics), it does not append"
    );
    // The replay's envelope carries the *current* CSS; the session opens it.
    assert!(pending.complete(&replay).expect("complete"));
    assert_eq!(service.stats().registrations, 2);
}

#[test]
fn publisher_refuses_issuance_requests() {
    let (group, mut service, _sub, _rng) = setup();
    let request = Request::<P256Group>::Issue(pbcd_core::proto::IssueRequest {
        subject: "mallory".into(),
        attribute: "age".into(),
        value: 21,
    })
    .encode(&group)
    .expect("encodes");
    let response = service.handle(&request);
    expect_error(&group, &response, ErrorCode::Unsupported);
}

#[test]
fn conditions_query_filters_by_attribute() {
    let (group, mut service, _sub, _rng) = setup();
    for (attr, expected) in [(Some("age"), 1usize), (Some("level"), 0), (None, 1)] {
        let request = Request::<P256Group>::ConditionsQuery {
            attribute: attr.map(String::from),
        }
        .encode(&group)
        .expect("encodes");
        let response = service.handle(&request);
        match Response::<P256Group>::decode(&group, &response).expect("decodes") {
            Response::Conditions(info) => {
                assert_eq!(info.conditions.len(), expected, "attr={attr:?}");
                assert_eq!(info.ell, 48);
                assert_eq!(info.kappa_bits, 128);
            }
            other => panic!("expected conditions, got {other:?}"),
        }
    }
}

#[test]
fn issuer_verifier_blocks_unvouched_claims() {
    let group = P256Group::new();
    let mut rng = StdRng::seed_from_u64(0x7E11);
    let idp = pbcd_core::IdentityProvider::new(group.clone(), "hr", &mut rng);
    let idmgr = pbcd_core::IdentityManager::new(group.clone(), &mut rng);
    // The deployment's ground truth: only alice, and only clearance 3.
    let mut issuer = IssuerService::with_verifier(idp, idmgr, 0x2F, |req| {
        req.subject == "alice" && req.attribute == "clearance" && req.value == 3
    });
    let issue = |subject: &str, value: u64| {
        Request::<P256Group>::Issue(pbcd_core::proto::IssueRequest {
            subject: subject.into(),
            attribute: "clearance".into(),
            value,
        })
        .encode(&P256Group::new())
        .expect("encodes")
    };
    // Mallory inflating her clearance — or claiming alice's identity with
    // an inflated value — is refused with a typed error.
    for (subject, value) in [("mallory", 9), ("alice", 9)] {
        let response = issuer.handle(&issue(subject, value));
        expect_error(&group, &response, ErrorCode::BadToken);
    }
    // The vouched-for claim still issues.
    let response = issuer.handle(&issue("alice", 3));
    assert!(matches!(
        Response::<P256Group>::decode(&group, &response).expect("decodes"),
        Response::Issue(_)
    ));
}

#[test]
fn issuer_service_is_total_and_scoped() {
    let group = P256Group::new();
    let mut rng = StdRng::seed_from_u64(0x1D);
    let idp = pbcd_core::IdentityProvider::new(group.clone(), "hr", &mut rng);
    let idmgr = pbcd_core::IdentityManager::new(group.clone(), &mut rng);
    let idmgr_key = idmgr.verifying_key();
    let mut issuer = IssuerService::new(idp, idmgr, 0x2E);

    // Garbage → Malformed.
    let response = issuer.handle(b"\xff\xff\xff\xff");
    expect_error(&group, &response, ErrorCode::Malformed);

    // Registration at the issuer → Unsupported.
    let response = issuer.handle(
        &Request::<P256Group>::ConditionsQuery { attribute: None }
            .encode(&group)
            .expect("encodes"),
    );
    expect_error(&group, &response, ErrorCode::Unsupported);

    // A well-formed issuance yields a verifiable token whose opening
    // matches its commitment.
    let response = issuer.handle(
        &Request::<P256Group>::Issue(pbcd_core::proto::IssueRequest {
            subject: "alice".into(),
            attribute: "age".into(),
            value: 28,
        })
        .encode(&group)
        .expect("encodes"),
    );
    match Response::<P256Group>::decode(&group, &response).expect("decodes") {
        Response::Issue(r) => {
            r.token
                .verify(issuer.idmgr().pedersen(), &idmgr_key)
                .expect("token verifies");
            assert!(issuer
                .idmgr()
                .pedersen()
                .verify_open(&r.token.commitment, &r.opening));
            assert_eq!(r.token.id_tag, "age");
        }
        other => panic!("expected issue response, got {other:?}"),
    }
}
