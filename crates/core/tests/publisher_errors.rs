//! Publisher-side validation: registrations must be rejected for forged
//! tokens, mismatched tags and conditions outside the policy set.

use pbcd_core::{PbcdError, Publisher, PublisherConfig, SystemHarness};
use pbcd_group::{P256Group, SigningKey};
use pbcd_ocbe::ProofMessage;
use pbcd_policy::{AccessControlPolicy, AttributeCondition, AttributeSet, ComparisonOp, PolicySet};
use rand::SeedableRng;

fn policies() -> PolicySet {
    let mut set = PolicySet::new();
    set.add(AccessControlPolicy::new(
        vec![AttributeCondition::new("age", ComparisonOp::Ge, 18)],
        &["Content"],
        "d.xml",
    ));
    set
}

fn harness() -> SystemHarness<P256Group> {
    SystemHarness::new_p256(policies(), 0xE221)
}

#[test]
fn forged_token_rejected() {
    let mut sys = harness();
    let sub = sys.onboard("alice", AttributeSet::new().with("age", 30));
    let mut token = sub.token_for("age").unwrap().clone();
    // Re-sign with a rogue key: the publisher must reject it.
    let group = P256Group::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let rogue = SigningKey::generate(&group, &mut rng);
    let payload = b"wrong payload entirely";
    token.signature = rogue.sign(&group, &mut rng, payload);
    let cond = AttributeCondition::new("age", ComparisonOp::Ge, 18);
    let err = sys
        .publisher
        .register(&token, &cond, &ProofMessage::Empty, &mut sys.rng)
        .unwrap_err();
    assert_eq!(err, PbcdError::BadTokenSignature);
}

#[test]
fn tag_mismatch_rejected() {
    let mut sys = harness();
    let sub = sys.onboard("alice", AttributeSet::new().with("age", 30));
    let token = sub.token_for("age").unwrap().clone();
    // Use the age token against a condition on a different attribute that
    // exists in no policy either — tag check fires first.
    let cond = AttributeCondition::new("level", ComparisonOp::Ge, 1);
    let err = sys
        .publisher
        .register(&token, &cond, &ProofMessage::Empty, &mut sys.rng)
        .unwrap_err();
    assert!(matches!(err, PbcdError::TagMismatch { .. }));
}

#[test]
fn unknown_condition_rejected() {
    let mut sys = harness();
    let sub = sys.onboard("alice", AttributeSet::new().with("age", 30));
    let token = sub.token_for("age").unwrap().clone();
    // Right attribute, but a threshold no policy mentions.
    let cond = AttributeCondition::new("age", ComparisonOp::Ge, 99);
    let (proof, _secrets) = sub
        .prepare_registration(sys.publisher.ocbe(), &cond, &mut sys.rng)
        .unwrap();
    let err = sys
        .publisher
        .register(&token, &cond, &proof, &mut sys.rng)
        .unwrap_err();
    assert_eq!(err, PbcdError::UnknownCondition);
}

#[test]
fn wrong_proof_shape_rejected() {
    let mut sys = harness();
    let sub = sys.onboard("alice", AttributeSet::new().with("age", 30));
    let token = sub.token_for("age").unwrap().clone();
    // A GE condition needs digit commitments, not the empty EQ proof.
    let cond = AttributeCondition::new("age", ComparisonOp::Ge, 18);
    let err = sys
        .publisher
        .register(&token, &cond, &ProofMessage::Empty, &mut sys.rng)
        .unwrap_err();
    assert_eq!(
        err,
        PbcdError::Ocbe(pbcd_ocbe::OcbeError::ProofShapeMismatch)
    );
}

#[test]
fn revocation_of_unknown_subscriber_is_a_noop() {
    let mut sys = harness();
    assert!(!sys.publisher.revoke_subscriber("pn-9999"));
    let cond = AttributeCondition::new("age", ComparisonOp::Ge, 18);
    assert!(!sys.publisher.revoke_credential("pn-9999", &cond));
}

#[test]
fn conditions_for_attribute_filters_by_name() {
    let sys = harness();
    assert_eq!(sys.publisher.conditions_for_attribute("age").len(), 1);
    assert!(sys.publisher.conditions_for_attribute("role").is_empty());
}

#[test]
fn subscriber_without_token_cannot_prepare() {
    let mut sys = harness();
    let sub = sys.onboard("alice", AttributeSet::new().with("age", 30));
    let cond = AttributeCondition::new("level", ComparisonOp::Ge, 1);
    let err = sub
        .prepare_registration(sys.publisher.ocbe(), &cond, &mut sys.rng)
        .unwrap_err();
    assert_eq!(err, PbcdError::MissingToken("level".into()));
}

#[test]
fn registration_is_idempotent_with_fresh_css() {
    // Re-registering the same (nym, cond) overrides the old CSS (paper:
    // credential update) — and only the latest CSS derives future keys.
    let mut sys = harness();
    let mut sub = sys.onboard("alice", AttributeSet::new().with("age", 30));
    let extracted_first = sys.register_all(&mut sub);
    assert_eq!(extracted_first, 1);
    let table_size = sys.publisher.css_table().record_count();
    let extracted_again = sys.register_all(&mut sub);
    assert_eq!(extracted_again, 1);
    assert_eq!(
        sys.publisher.css_table().record_count(),
        table_size,
        "override, not append"
    );
}

#[test]
fn custom_config_is_respected() {
    let config = PublisherConfig {
        ell: 16,
        kappa_bits: 64,
        parallel_broadcast: false,
    };
    let group = P256Group::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let idmgr_key = SigningKey::generate(&group, &mut rng).verifying_key();
    let publisher = Publisher::with_config(group, idmgr_key, policies(), config);
    assert_eq!(publisher.ocbe().ell(), 16);
    assert_eq!(publisher.css_table().kappa_bits(), 64);
}
