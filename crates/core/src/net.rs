//! Network adapters: the [`Publisher`]/[`Subscriber`] actors deployed over
//! real sockets.
//!
//! Two transports, two trust levels, matching the paper's model:
//!
//! * **Dissemination** rides the untrusted `pbcd_net` broker — broadcast
//!   containers are safe in any hands.
//! * **Registration** (the OCBE flow that delivers CSSs) runs over a
//!   *direct* publisher↔subscriber socket: [`NetPublisher`] can expose its
//!   [`PublisherService`] through a [`pbcd_net::direct::RegistrationServer`]
//!   and [`NetSubscriber::register_via`] drives the session-typed client
//!   side against it. The broker never carries — and its crate can never
//!   even type — this traffic.

use crate::error::PbcdError;
use crate::proto;
use crate::publisher::Publisher;
use crate::service::{ConditionsSnapshot, PublisherService, ServiceStats};
use crate::session;
use crate::subscriber::Subscriber;
use pbcd_docs::{BroadcastContainer, Element};
use pbcd_gkm::{AcvBgkm, BroadcastGkm};
use pbcd_group::CyclicGroup;
use pbcd_net::direct::RegistrationServer;
use pbcd_net::{BrokerClient, ConfigSummary, NetError, PeerRole, PublishReceipt};
use pbcd_policy::{AttributeCondition, PolicySet};
use rand::RngCore;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A [`Publisher`] deployed on the network: broadcasts go to a broker,
/// and (optionally) a direct registration endpoint serves the oblivious
/// CSS flow on a separate socket.
///
/// The publisher lives inside a shared [`PublisherService`] so the
/// registration server thread and the broadcasting caller can both reach
/// it; access it through [`Self::with_publisher`]/[`Self::with_publisher_mut`].
pub struct NetPublisher<G: CyclicGroup, K: BroadcastGkm = AcvBgkm> {
    service: Arc<Mutex<PublisherService<G, K>>>,
    client: BrokerClient,
    registration: Option<RegistrationServer>,
    /// Pre-encoded full-conditions response served without the service
    /// mutex; invalidated by [`Self::with_publisher_mut`].
    conditions: Arc<ConditionsSnapshot>,
}

impl<G: CyclicGroup, K: BroadcastGkm> NetPublisher<G, K> {
    /// Wraps `publisher` and connects it to the broker at `addr`. The
    /// registration endpoint is off until [`Self::serve_registration`].
    pub fn connect(publisher: Publisher<G, K>, addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Self::connect_service(PublisherService::new(publisher, 0), addr)
    }

    /// Wraps an existing [`PublisherService`] (e.g. with a chosen RNG
    /// seed) and connects it to the broker at `addr`.
    pub fn connect_service(
        service: PublisherService<G, K>,
        addr: impl ToSocketAddrs,
    ) -> Result<Self, NetError> {
        let client = BrokerClient::connect(addr, PeerRole::Publisher)?;
        Ok(Self {
            service: Arc::new(Mutex::new(service)),
            client,
            registration: None,
            conditions: Arc::new(ConditionsSnapshot::new()),
        })
    }

    /// Opens the direct registration endpoint on `addr` (use port 0 for an
    /// ephemeral port), reseeding the service RNG with `seed` first.
    /// Subscribers point [`NetSubscriber::register_via`] (or
    /// [`crate::session::register_all_via`]) at the returned address.
    /// The full conditions query (`attribute: None`) is read-mostly and
    /// carries no per-subscriber state, so it is answered from a
    /// pre-encoded [`ConditionsSnapshot`] **without taking the service
    /// mutex** — heavy conditions traffic no longer serializes behind
    /// in-flight registrations. The snapshot is populated here and after
    /// any cache miss, and invalidated by [`Self::with_publisher_mut`]
    /// (the mutation gateway for policy changes). Snapshot-served
    /// requests are counted by [`Self::conditions_cache_hits`], not
    /// [`Self::service_stats`].
    pub fn serve_registration(
        &mut self,
        addr: impl ToSocketAddrs,
        seed: u64,
    ) -> Result<SocketAddr, NetError>
    where
        K: 'static,
    {
        {
            let mut service = self.service.lock().expect("publisher service poisoned");
            service.reseed(seed);
            if let Some(bytes) = service.encode_conditions() {
                self.conditions.set(bytes);
            }
        }
        let service = Arc::clone(&self.service);
        let snapshot = Arc::clone(&self.conditions);
        let server = RegistrationServer::bind(addr, move |request: &[u8]| {
            if proto::is_full_conditions_query(request) {
                if let Some(bytes) = snapshot.get() {
                    return bytes.as_ref().clone();
                }
                // Miss: compute *and repopulate* under the service lock, so
                // a concurrent `with_publisher_mut` (which invalidates
                // while holding the same lock) cannot interleave between
                // the two and leave stale pre-mutation bytes installed.
                let mut svc = service.lock().expect("publisher service poisoned");
                let response = svc.handle(request);
                if !proto::is_error_response(&response) {
                    snapshot.set(response.clone());
                }
                drop(svc);
                return response;
            }
            service
                .lock()
                .expect("publisher service poisoned")
                .handle(request)
        })?;
        let bound = server.addr();
        self.registration = Some(server);
        Ok(bound)
    }

    /// The registration endpoint's address, if serving.
    pub fn registration_addr(&self) -> Option<SocketAddr> {
        self.registration.as_ref().map(RegistrationServer::addr)
    }

    /// Runs `f` against the wrapped publisher (policy inspection, table
    /// audits).
    pub fn with_publisher<T>(&self, f: impl FnOnce(&Publisher<G, K>) -> T) -> T {
        f(self
            .service
            .lock()
            .expect("publisher service poisoned")
            .publisher())
    }

    /// Runs `f` against the wrapped publisher mutably (revocation and
    /// other publisher-local actions). Invalidates the pre-encoded
    /// conditions snapshot — an arbitrary mutation may change what the
    /// conditions endpoint should answer; the next query repopulates it.
    /// The invalidation happens while the service lock is still held, so
    /// it serializes with the miss-path repopulation (which sets the
    /// snapshot under the same lock) — no interleaving can re-install
    /// pre-mutation bytes.
    pub fn with_publisher_mut<T>(&self, f: impl FnOnce(&mut Publisher<G, K>) -> T) -> T {
        let mut service = self.service.lock().expect("publisher service poisoned");
        let out = f(service.publisher_mut());
        self.conditions.invalidate();
        drop(service);
        out
    }

    /// How many full-conditions queries the registration endpoint served
    /// straight from the snapshot (without the service mutex). These do
    /// **not** appear in [`Self::service_stats`].
    pub fn conditions_cache_hits(&self) -> u64 {
        self.conditions.hits()
    }

    /// A clone of the public policy set.
    pub fn policies(&self) -> PolicySet {
        self.with_publisher(|p| p.policies().clone())
    }

    /// Subscription revocation (publisher-local; takes effect on the next
    /// broadcast, with no message to anyone).
    pub fn revoke_subscriber(&self, nym: &str) -> bool {
        self.with_publisher_mut(|p| p.revoke_subscriber(nym))
    }

    /// Credential revocation for one `(nym, condition)` record.
    pub fn revoke_credential(&self, nym: &str, cond: &AttributeCondition) -> bool {
        self.with_publisher_mut(|p| p.revoke_credential(nym, cond))
    }

    /// Registration-service traffic counters.
    pub fn service_stats(&self) -> ServiceStats {
        self.service
            .lock()
            .expect("publisher service poisoned")
            .stats()
    }

    /// Segments, rekeys and encrypts `doc` exactly like
    /// [`Publisher::broadcast`], then ships the container to the broker.
    /// Returns the broker's receipt (epoch + fan-out count).
    pub fn broadcast<R: RngCore + ?Sized>(
        &mut self,
        doc: &Element,
        doc_name: &str,
        rng: &mut R,
    ) -> Result<PublishReceipt, NetError> {
        let container = self
            .service
            .lock()
            .expect("publisher service poisoned")
            .publisher_mut()
            .broadcast(doc, doc_name, rng);
        self.client.publish(&container)
    }

    /// What the broker currently retains.
    pub fn list_configs(&mut self) -> Result<Vec<ConfigSummary>, NetError> {
        self.client.list_configs()
    }

    /// Shuts the registration endpoint (if any), says goodbye to the
    /// broker and returns the wrapped publisher.
    pub fn disconnect(mut self) -> Result<Publisher<G, K>, NetError> {
        if let Some(server) = self.registration.take() {
            server.shutdown();
        }
        self.client.bye()?;
        let service = Arc::try_unwrap(self.service)
            .map_err(|_| NetError::protocol("registration handler still alive after shutdown"))?
            .into_inner()
            .expect("publisher service poisoned");
        Ok(service.into_inner())
    }
}

/// A [`Subscriber`] receiving broadcasts from a broker connection.
///
/// Deliveries are **epoch-ordered per document**: the broker is untrusted,
/// and concurrent or hostile publishers could race a stale (e.g.
/// pre-revocation) container in after a fresher one — the adapter drops any
/// delivery whose epoch is not strictly newer than the last one seen for
/// that document, so consumers can safely treat the latest receive as
/// current.
pub struct NetSubscriber<G: CyclicGroup, K: BroadcastGkm = AcvBgkm> {
    subscriber: Subscriber<G, K>,
    client: BrokerClient,
    /// The subscribed document names (empty = everything).
    documents: Vec<String>,
    /// document name → highest epoch delivered so far.
    seen_epochs: std::collections::BTreeMap<String, u64>,
}

/// Cap on distinct document names tracked per subscriber; a hostile broker
/// streaming made-up names must not grow client memory without bound.
const MAX_TRACKED_DOCUMENTS: usize = 4096;

impl<G: CyclicGroup, K: BroadcastGkm> NetSubscriber<G, K> {
    /// Wraps `subscriber`, connects to the broker at `addr` and subscribes
    /// to `documents` (empty = every document). Retained containers are
    /// replayed immediately and arrive via
    /// [`Self::recv_container`]/[`Self::recv_document`]. Registration can
    /// happen before or after this — see [`Self::register_via`].
    pub fn connect(
        subscriber: Subscriber<G, K>,
        addr: impl ToSocketAddrs,
        documents: &[&str],
    ) -> Result<Self, NetError> {
        let mut client = BrokerClient::connect(addr, PeerRole::Subscriber)?;
        client.set_read_timeout(Some(std::time::Duration::from_secs(10)))?;
        client.subscribe(documents)?;
        client.set_read_timeout(None)?;
        Ok(Self {
            subscriber,
            client,
            documents: documents.iter().map(|d| d.to_string()).collect(),
            seen_epochs: std::collections::BTreeMap::new(),
        })
    }

    /// The wrapped subscriber.
    pub fn subscriber(&self) -> &Subscriber<G, K> {
        &self.subscriber
    }

    /// Runs the full oblivious registration against a publisher's direct
    /// registration endpoint at `addr` — the [`crate::proto`] flow over a
    /// socket the broker never sees. `group` is the public deployment
    /// group parameter. Returns how many CSSs were extracted.
    pub fn register_via<R: RngCore + ?Sized>(
        &mut self,
        addr: impl ToSocketAddrs,
        group: &G,
        rng: &mut R,
    ) -> Result<usize, PbcdError> {
        session::register_all_via(&mut self.subscriber, group, addr, rng)
    }

    /// Bounds how long receives may block.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.client.set_read_timeout(timeout)
    }

    /// Blocks for the next raw container (no decryption) whose epoch is
    /// strictly newer than anything previously received for its document;
    /// stale or duplicate deliveries — and deliveries for documents this
    /// subscriber never asked for (a broker is not trusted to honor the
    /// filter) — are silently skipped.
    pub fn recv_container(&mut self) -> Result<BroadcastContainer, NetError> {
        loop {
            let container = self.client.next_delivery()?;
            if !self.documents.is_empty() && !self.documents.contains(&container.document_name) {
                continue;
            }
            match self.seen_epochs.get_mut(&container.document_name) {
                Some(seen) if container.epoch <= *seen => continue,
                Some(seen) => {
                    *seen = container.epoch;
                    return Ok(container);
                }
                None => {
                    if self.seen_epochs.len() >= MAX_TRACKED_DOCUMENTS {
                        return Err(NetError::protocol(
                            "broker delivered more distinct documents than the client tracks",
                        ));
                    }
                    self.seen_epochs
                        .insert(container.document_name.clone(), container.epoch);
                    return Ok(container);
                }
            }
        }
    }

    /// Blocks for the next container and decrypts everything this
    /// subscriber's CSSs allow, reassembling the document with the rest
    /// redacted. A non-qualified subscriber gets the skeleton only —
    /// failing closed, not erroring.
    pub fn recv_document(
        &mut self,
        policies: &PolicySet,
    ) -> Result<(BroadcastContainer, Element), PbcdError> {
        let container = self.recv_container()?;
        let view = self.subscriber.decrypt_broadcast(&container, policies)?;
        Ok((container, view))
    }

    /// Says goodbye to the broker and returns the wrapped subscriber.
    pub fn disconnect(self) -> Result<Subscriber<G, K>, NetError> {
        self.client.bye()?;
        Ok(self.subscriber)
    }
}
