//! Network adapters: the existing [`Publisher`]/[`Subscriber`] actors
//! speaking to an untrusted `pbcd_net` broker over real sockets.
//!
//! The adapters change *transport only*, not trust: registration (the OCBE
//! flow that delivers CSSs) remains out-of-band between subscriber and
//! publisher exactly as in the paper — run it through
//! [`crate::SystemHarness`] or the manual flow first, then hand the actors
//! to the adapters for dissemination. The broker carries only broadcast
//! containers, which are safe in any hands.

use crate::error::PbcdError;
use crate::publisher::Publisher;
use crate::subscriber::Subscriber;
use pbcd_docs::{BroadcastContainer, Element};
use pbcd_gkm::{AcvBgkm, BroadcastGkm};
use pbcd_group::CyclicGroup;
use pbcd_net::{BrokerClient, ConfigSummary, NetError, PeerRole, PublishReceipt};
use pbcd_policy::PolicySet;
use rand::RngCore;
use std::net::ToSocketAddrs;
use std::time::Duration;

/// A [`Publisher`] whose broadcasts go out over a broker connection.
pub struct NetPublisher<G: CyclicGroup, K: BroadcastGkm = AcvBgkm> {
    publisher: Publisher<G, K>,
    client: BrokerClient,
}

impl<G: CyclicGroup, K: BroadcastGkm> NetPublisher<G, K> {
    /// Wraps `publisher` and connects it to the broker at `addr`.
    pub fn connect(publisher: Publisher<G, K>, addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let client = BrokerClient::connect(addr, PeerRole::Publisher)?;
        Ok(Self { publisher, client })
    }

    /// The wrapped publisher (e.g. for policy inspection).
    pub fn publisher(&self) -> &Publisher<G, K> {
        &self.publisher
    }

    /// Mutable access for out-of-band flows: registration, revocation.
    pub fn publisher_mut(&mut self) -> &mut Publisher<G, K> {
        &mut self.publisher
    }

    /// Segments, rekeys and encrypts `doc` exactly like
    /// [`Publisher::broadcast`], then ships the container to the broker.
    /// Returns the broker's receipt (epoch + fan-out count).
    pub fn broadcast<R: RngCore + ?Sized>(
        &mut self,
        doc: &Element,
        doc_name: &str,
        rng: &mut R,
    ) -> Result<PublishReceipt, NetError> {
        let container = self.publisher.broadcast(doc, doc_name, rng);
        self.client.publish(&container)
    }

    /// What the broker currently retains.
    pub fn list_configs(&mut self) -> Result<Vec<ConfigSummary>, NetError> {
        self.client.list_configs()
    }

    /// Says goodbye to the broker and returns the wrapped publisher.
    pub fn disconnect(self) -> Result<Publisher<G, K>, NetError> {
        self.client.bye()?;
        Ok(self.publisher)
    }
}

/// A [`Subscriber`] receiving broadcasts from a broker connection.
///
/// Deliveries are **epoch-ordered per document**: the broker is untrusted,
/// and concurrent or hostile publishers could race a stale (e.g.
/// pre-revocation) container in after a fresher one — the adapter drops any
/// delivery whose epoch is not strictly newer than the last one seen for
/// that document, so consumers can safely treat the latest receive as
/// current.
pub struct NetSubscriber<G: CyclicGroup, K: BroadcastGkm = AcvBgkm> {
    subscriber: Subscriber<G, K>,
    client: BrokerClient,
    /// The subscribed document names (empty = everything).
    documents: Vec<String>,
    /// document name → highest epoch delivered so far.
    seen_epochs: std::collections::BTreeMap<String, u64>,
}

/// Cap on distinct document names tracked per subscriber; a hostile broker
/// streaming made-up names must not grow client memory without bound.
const MAX_TRACKED_DOCUMENTS: usize = 4096;

impl<G: CyclicGroup, K: BroadcastGkm> NetSubscriber<G, K> {
    /// Wraps a (registered) `subscriber`, connects to the broker at `addr`
    /// and subscribes to `documents` (empty = every document). Retained
    /// containers are replayed immediately and arrive via
    /// [`Self::recv_container`]/[`Self::recv_document`].
    pub fn connect(
        subscriber: Subscriber<G, K>,
        addr: impl ToSocketAddrs,
        documents: &[&str],
    ) -> Result<Self, NetError> {
        let mut client = BrokerClient::connect(addr, PeerRole::Subscriber)?;
        client.set_read_timeout(Some(std::time::Duration::from_secs(10)))?;
        client.subscribe(documents)?;
        client.set_read_timeout(None)?;
        Ok(Self {
            subscriber,
            client,
            documents: documents.iter().map(|d| d.to_string()).collect(),
            seen_epochs: std::collections::BTreeMap::new(),
        })
    }

    /// The wrapped subscriber.
    pub fn subscriber(&self) -> &Subscriber<G, K> {
        &self.subscriber
    }

    /// Bounds how long receives may block.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.client.set_read_timeout(timeout)
    }

    /// Blocks for the next raw container (no decryption) whose epoch is
    /// strictly newer than anything previously received for its document;
    /// stale or duplicate deliveries — and deliveries for documents this
    /// subscriber never asked for (a broker is not trusted to honor the
    /// filter) — are silently skipped.
    pub fn recv_container(&mut self) -> Result<BroadcastContainer, NetError> {
        loop {
            let container = self.client.next_delivery()?;
            if !self.documents.is_empty() && !self.documents.contains(&container.document_name) {
                continue;
            }
            match self.seen_epochs.get_mut(&container.document_name) {
                Some(seen) if container.epoch <= *seen => continue,
                Some(seen) => {
                    *seen = container.epoch;
                    return Ok(container);
                }
                None => {
                    if self.seen_epochs.len() >= MAX_TRACKED_DOCUMENTS {
                        return Err(NetError::protocol(
                            "broker delivered more distinct documents than the client tracks",
                        ));
                    }
                    self.seen_epochs
                        .insert(container.document_name.clone(), container.epoch);
                    return Ok(container);
                }
            }
        }
    }

    /// Blocks for the next container and decrypts everything this
    /// subscriber's CSSs allow, reassembling the document with the rest
    /// redacted. A non-qualified subscriber gets the skeleton only —
    /// failing closed, not erroring.
    pub fn recv_document(
        &mut self,
        policies: &PolicySet,
    ) -> Result<(BroadcastContainer, Element), PbcdError> {
        let container = self.recv_container()?;
        let view = self.subscriber.decrypt_broadcast(&container, policies)?;
        Ok((container, view))
    }

    /// Says goodbye to the broker and returns the wrapped subscriber.
    pub fn disconnect(self) -> Result<Subscriber<G, K>, NetError> {
        self.client.bye()?;
        Ok(self.subscriber)
    }
}
