//! Network adapters: the [`Publisher`]/[`Subscriber`] actors deployed over
//! real sockets.
//!
//! Two transports, two trust levels, matching the paper's model:
//!
//! * **Dissemination** rides the untrusted `pbcd_net` broker — broadcast
//!   containers are safe in any hands.
//! * **Registration** (the OCBE flow that delivers CSSs) runs over a
//!   *direct* publisher↔subscriber socket: [`NetPublisher`] can expose its
//!   [`PublisherService`] through a [`pbcd_net::direct::RegistrationServer`]
//!   and [`NetSubscriber::register_via`] drives the session-typed client
//!   side against it. The broker never carries — and its crate can never
//!   even type — this traffic.

use crate::error::PbcdError;
use crate::publisher::Publisher;
use crate::service::{PublisherService, ServiceStats, SharedPublisherService};
use crate::session;
use crate::subscriber::Subscriber;
use pbcd_docs::{BroadcastContainer, Element};
use pbcd_gkm::{AcvBgkm, BroadcastGkm};
use pbcd_group::{CyclicGroup, SigningKey};
use pbcd_net::direct::RegistrationServer;
use pbcd_net::{BrokerClient, ConfigSummary, NetError, PeerRole, PublishReceipt};
use pbcd_policy::{AttributeCondition, PolicySet};
use rand::RngCore;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// A [`Publisher`] deployed on the network: broadcasts go to a broker
/// (optionally Schnorr-signed, for brokers that require publisher
/// authentication), and (optionally) a direct registration endpoint
/// serves the oblivious CSS flow on a separate socket.
///
/// The publisher lives inside a [`SharedPublisherService`] so the
/// registration server's **concurrent** connection handlers and the
/// broadcasting caller can all reach it; access it through
/// [`Self::with_publisher`]/[`Self::with_publisher_mut`].
pub struct NetPublisher<G: CyclicGroup, K: BroadcastGkm = AcvBgkm> {
    shared: Arc<SharedPublisherService<G, K>>,
    group: G,
    client: BrokerClient,
    registration: Option<RegistrationServer>,
    /// When set, broadcasts go out as signed publishes under this
    /// `(key_id, signing key)` pair.
    signing: Option<(String, SigningKey<G>)>,
}

impl<G: CyclicGroup, K: BroadcastGkm> NetPublisher<G, K> {
    /// Wraps `publisher` and connects it to the broker at `addr`. The
    /// registration endpoint is off until [`Self::serve_registration`].
    pub fn connect(publisher: Publisher<G, K>, addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Self::connect_service(PublisherService::new(publisher, 0), addr)
    }

    /// Wraps an existing [`PublisherService`] (e.g. with a chosen RNG
    /// seed) and connects it to the broker at `addr`.
    pub fn connect_service(
        service: PublisherService<G, K>,
        addr: impl ToSocketAddrs,
    ) -> Result<Self, NetError> {
        let group = service.publisher().ocbe().group().clone();
        let client = BrokerClient::connect(addr, PeerRole::Publisher)?;
        Ok(Self {
            shared: Arc::new(SharedPublisherService::new(service)),
            group,
            client,
            registration: None,
            signing: None,
        })
    }

    /// Enables authenticated publishing: every subsequent
    /// [`Self::broadcast`] ships a `PublishSigned` frame signed with `key`
    /// and claiming `key_id` — required against a broker configured with a
    /// [`pbcd_net::PublisherDirectory`]. Returns `self` for chaining.
    pub fn with_signing_key(mut self, key_id: impl Into<String>, key: SigningKey<G>) -> Self {
        self.signing = Some((key_id.into(), key));
        self
    }

    /// Opens the direct registration endpoint on `addr` (use port 0 for an
    /// ephemeral port), reseeding the service RNGs with `seed` first.
    /// Subscribers point [`NetSubscriber::register_via`] (or
    /// [`crate::session::register_all_via`]) at the returned address.
    ///
    /// The endpoint runs **concurrently**: connection handlers call
    /// [`SharedPublisherService::handle`] in parallel, so the full
    /// conditions query is served from a lock-free snapshot and
    /// registrations run against the `Arc`-shared registrar + sharded CSS
    /// table — no request class serializes on a single service mutex.
    /// Snapshot-served conditions queries are counted in
    /// [`ServiceStats::conditions_cache_hits`] (also exposed by
    /// [`Self::conditions_cache_hits`]), not in `requests`.
    pub fn serve_registration(
        &mut self,
        addr: impl ToSocketAddrs,
        seed: u64,
    ) -> Result<SocketAddr, NetError>
    where
        K: 'static,
    {
        self.shared.reseed(seed);
        let shared = Arc::clone(&self.shared);
        let server = RegistrationServer::bind_concurrent(addr, move |request: &[u8]| {
            shared.handle(request)
        })?;
        let bound = server.addr();
        self.registration = Some(server);
        Ok(bound)
    }

    /// The registration endpoint's address, if serving.
    pub fn registration_addr(&self) -> Option<SocketAddr> {
        self.registration.as_ref().map(RegistrationServer::addr)
    }

    /// Runs `f` against the wrapped publisher (policy inspection, table
    /// audits).
    pub fn with_publisher<T>(&self, f: impl FnOnce(&Publisher<G, K>) -> T) -> T {
        self.shared.with_publisher(f)
    }

    /// Runs `f` against the wrapped publisher mutably (revocation and
    /// other publisher-local actions). Invalidates the pre-encoded
    /// conditions snapshot and the registration-material snapshot — an
    /// arbitrary mutation may change what either should serve; both
    /// repopulate lazily, serialized against the service lock so stale
    /// material can never be re-installed.
    pub fn with_publisher_mut<T>(&self, f: impl FnOnce(&mut Publisher<G, K>) -> T) -> T {
        self.shared.with_publisher_mut(f)
    }

    /// How many full-conditions queries the registration endpoint served
    /// straight from the snapshot (without the service mutex). Also
    /// reported as [`ServiceStats::conditions_cache_hits`].
    pub fn conditions_cache_hits(&self) -> u64 {
        self.shared.conditions_cache_hits()
    }

    /// A clone of the public policy set.
    pub fn policies(&self) -> PolicySet {
        self.with_publisher(|p| p.policies().clone())
    }

    /// Subscription revocation (publisher-local; takes effect on the next
    /// broadcast, with no message to anyone).
    pub fn revoke_subscriber(&self, nym: &str) -> bool {
        self.with_publisher_mut(|p| p.revoke_subscriber(nym))
    }

    /// Credential revocation for one `(nym, condition)` record.
    pub fn revoke_credential(&self, nym: &str, cond: &AttributeCondition) -> bool {
        self.with_publisher_mut(|p| p.revoke_credential(nym, cond))
    }

    /// Registration-service traffic counters (both service paths plus the
    /// conditions-snapshot hit count).
    pub fn service_stats(&self) -> ServiceStats {
        self.shared.stats()
    }

    /// Segments, rekeys and encrypts `doc` exactly like
    /// [`Publisher::broadcast`], then ships the container to the broker —
    /// signed, when a key was installed via [`Self::with_signing_key`].
    /// Returns the broker's receipt (epoch + fan-out count); a typed
    /// broker refusal (unknown key, bad signature, stale epoch, retention
    /// cap) surfaces as [`PbcdError::PublishRejected`] with the broker
    /// connection still usable.
    pub fn broadcast<R: RngCore + ?Sized>(
        &mut self,
        doc: &Element,
        doc_name: &str,
        rng: &mut R,
    ) -> Result<PublishReceipt, PbcdError> {
        let container = self
            .shared
            .with_publisher_broadcast(|p| p.broadcast(doc, doc_name, rng));
        let receipt = match &self.signing {
            Some((key_id, key)) => {
                self.client
                    .publish_signed(&self.group, key_id, key, &container, rng)
            }
            None => self.client.publish(&container),
        };
        receipt.map_err(PbcdError::from)
    }

    /// What the broker currently retains.
    pub fn list_configs(&mut self) -> Result<Vec<ConfigSummary>, NetError> {
        self.client.list_configs()
    }

    /// Shuts the registration endpoint (if any), says goodbye to the
    /// broker and returns the wrapped publisher.
    pub fn disconnect(mut self) -> Result<Publisher<G, K>, NetError> {
        if let Some(server) = self.registration.take() {
            server.shutdown();
        }
        self.client.bye()?;
        let shared = Arc::try_unwrap(self.shared)
            .map_err(|_| NetError::protocol("registration handler still alive after shutdown"))?;
        Ok(shared.into_service().into_inner())
    }
}

/// A [`Subscriber`] receiving broadcasts from a broker connection.
///
/// Deliveries are **epoch-ordered per document**: the broker is untrusted,
/// and concurrent or hostile publishers could race a stale (e.g.
/// pre-revocation) container in after a fresher one — the adapter drops any
/// delivery whose epoch is not strictly newer than the last one seen for
/// that document, so consumers can safely treat the latest receive as
/// current.
pub struct NetSubscriber<G: CyclicGroup, K: BroadcastGkm = AcvBgkm> {
    subscriber: Subscriber<G, K>,
    client: BrokerClient,
    /// The subscribed document names (empty = everything).
    documents: Vec<String>,
    /// document name → highest epoch delivered so far.
    seen_epochs: std::collections::BTreeMap<String, u64>,
}

/// Cap on distinct document names tracked per subscriber; a hostile broker
/// streaming made-up names must not grow client memory without bound.
const MAX_TRACKED_DOCUMENTS: usize = 4096;

impl<G: CyclicGroup, K: BroadcastGkm> NetSubscriber<G, K> {
    /// Wraps `subscriber`, connects to the broker at `addr` and subscribes
    /// to `documents` (empty = every document). Retained containers are
    /// replayed immediately and arrive via
    /// [`Self::recv_container`]/[`Self::recv_document`]. Registration can
    /// happen before or after this — see [`Self::register_via`].
    pub fn connect(
        subscriber: Subscriber<G, K>,
        addr: impl ToSocketAddrs,
        documents: &[&str],
    ) -> Result<Self, NetError> {
        Self::connect_inner(subscriber, addr, documents, 1)
    }

    /// Like [`Self::connect`], but asks the broker to replay up to the
    /// last `depth` retained epochs per document (a durable broker keeps
    /// [`pbcd_net::BrokerConfig::history_depth`] of them). The broker
    /// replays history oldest-first, so every replayed epoch passes this
    /// adapter's strictly-increasing epoch filter and arrives through
    /// [`Self::recv_container`] in epoch order.
    pub fn connect_with_history(
        subscriber: Subscriber<G, K>,
        addr: impl ToSocketAddrs,
        documents: &[&str],
        depth: u32,
    ) -> Result<Self, NetError> {
        Self::connect_inner(subscriber, addr, documents, depth)
    }

    fn connect_inner(
        subscriber: Subscriber<G, K>,
        addr: impl ToSocketAddrs,
        documents: &[&str],
        depth: u32,
    ) -> Result<Self, NetError> {
        let mut client = BrokerClient::connect(addr, PeerRole::Subscriber)?;
        client.set_read_timeout(Some(std::time::Duration::from_secs(10)))?;
        if depth <= 1 {
            client.subscribe(documents)?;
        } else {
            client.subscribe_with_history(documents, depth)?;
        }
        client.set_read_timeout(None)?;
        Ok(Self {
            subscriber,
            client,
            documents: documents.iter().map(|d| d.to_string()).collect(),
            seen_epochs: std::collections::BTreeMap::new(),
        })
    }

    /// The wrapped subscriber.
    pub fn subscriber(&self) -> &Subscriber<G, K> {
        &self.subscriber
    }

    /// Runs the full oblivious registration against a publisher's direct
    /// registration endpoint at `addr` — the [`crate::proto`] flow over a
    /// socket the broker never sees. `group` is the public deployment
    /// group parameter. Returns how many CSSs were extracted.
    pub fn register_via<R: RngCore + ?Sized>(
        &mut self,
        addr: impl ToSocketAddrs,
        group: &G,
        rng: &mut R,
    ) -> Result<usize, PbcdError> {
        session::register_all_via(&mut self.subscriber, group, addr, rng)
    }

    /// Bounds how long receives may block.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.client.set_read_timeout(timeout)
    }

    /// Blocks for the next raw container (no decryption) whose epoch is
    /// strictly newer than anything previously received for its document;
    /// stale or duplicate deliveries — and deliveries for documents this
    /// subscriber never asked for (a broker is not trusted to honor the
    /// filter) — are silently skipped.
    pub fn recv_container(&mut self) -> Result<BroadcastContainer, NetError> {
        loop {
            let container = self.client.next_delivery()?;
            if !self.documents.is_empty() && !self.documents.contains(&container.document_name) {
                continue;
            }
            match self.seen_epochs.get_mut(&container.document_name) {
                Some(seen) if container.epoch <= *seen => continue,
                Some(seen) => {
                    *seen = container.epoch;
                    return Ok(container);
                }
                None => {
                    if self.seen_epochs.len() >= MAX_TRACKED_DOCUMENTS {
                        return Err(NetError::protocol(
                            "broker delivered more distinct documents than the client tracks",
                        ));
                    }
                    self.seen_epochs
                        .insert(container.document_name.clone(), container.epoch);
                    return Ok(container);
                }
            }
        }
    }

    /// Blocks for the next container and decrypts everything this
    /// subscriber's CSSs allow, reassembling the document with the rest
    /// redacted. A non-qualified subscriber gets the skeleton only —
    /// failing closed, not erroring.
    pub fn recv_document(
        &mut self,
        policies: &PolicySet,
    ) -> Result<(BroadcastContainer, Element), PbcdError> {
        let container = self.recv_container()?;
        let view = self.subscriber.decrypt_broadcast(&container, policies)?;
        Ok((container, view))
    }

    /// Says goodbye to the broker and returns the wrapped subscriber.
    pub fn disconnect(self) -> Result<Subscriber<G, K>, NetError> {
        self.client.bye()?;
        Ok(self.subscriber)
    }
}
