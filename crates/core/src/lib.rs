//! # pbcd-core
//!
//! The end-to-end PBCD system (paper §III overview, §V scheme):
//!
//! * [`idp`] — Identity Providers issuing certified attribute assertions,
//! * [`idmgr`] — the Identity Manager turning assertions into signed
//!   identity tokens over Pedersen commitments,
//! * [`token`] — the token format `IT = (nym, id-tag, c, σ)`,
//! * [`publisher`] — policy owner: oblivious CSS registration (OCBE),
//!   the CSS table `T`, per-configuration ACV-BGKM rekey and broadcast,
//! * [`subscriber`] — receiver side: registration, key derivation from
//!   public broadcast values, decryption and document reassembly,
//! * [`proto`] — the transport-agnostic protocol layer: typed,
//!   strictly-decoded request/response messages for issuance, the
//!   conditions query and oblivious registration,
//! * [`service`] — [`PublisherService`]/[`IssuerService`]: total
//!   bytes-in/bytes-out handlers over [`proto`],
//! * [`session`] — the session-typed subscriber driver
//!   ([`RegistrationSession`] → [`PendingRegistration`]) plus TCP helpers,
//! * [`harness`] — a wired-up system for examples, tests and benches
//!   (registration runs through the byte-level protocol even in-process),
//! * [`net`] — [`NetPublisher`]/[`NetSubscriber`] adapters: dissemination
//!   over an untrusted `pbcd_net` broker, registration over a direct
//!   publisher socket the broker never sees.
//!
//! Privacy property carried end-to-end: the publisher sees pseudonyms,
//! commitments and proofs — never an attribute value, and never whether a
//! given registration actually yielded a usable CSS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod harness;
pub mod idmgr;
pub mod idp;
pub mod net;
pub mod proto;
pub mod publisher;
pub mod service;
pub mod session;
pub mod subscriber;
pub mod token;

pub use error::PbcdError;
pub use harness::SystemHarness;
pub use idmgr::IdentityManager;
pub use idp::{AttributeAssertion, IdentityProvider};
pub use net::{NetPublisher, NetSubscriber};
pub use publisher::Registrar;
pub use publisher::{Publisher, PublisherConfig};
pub use service::{
    ConditionsSnapshot, IssueVerifier, IssuerService, PublisherService, ServiceStats,
    SharedPublisherService,
};
pub use session::{
    BatchRegistrationSession, PendingBatchRegistration, PendingRegistration, RegistrationSession,
};
pub use subscriber::Subscriber;
pub use token::IdentityToken;
