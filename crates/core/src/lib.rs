//! # pbcd-core
//!
//! The end-to-end PBCD system (paper §III overview, §V scheme):
//!
//! * [`idp`] — Identity Providers issuing certified attribute assertions,
//! * [`idmgr`] — the Identity Manager turning assertions into signed
//!   identity tokens over Pedersen commitments,
//! * [`token`] — the token format `IT = (nym, id-tag, c, σ)`,
//! * [`publisher`] — policy owner: oblivious CSS registration (OCBE),
//!   the CSS table `T`, per-configuration ACV-BGKM rekey and broadcast,
//! * [`subscriber`] — receiver side: registration, key derivation from
//!   public broadcast values, decryption and document reassembly,
//! * [`harness`] — a wired-up system for examples, tests and benches,
//! * [`net`] — [`NetPublisher`]/[`NetSubscriber`] adapters that move
//!   dissemination onto an untrusted `pbcd_net` broker while registration
//!   stays out-of-band.
//!
//! Privacy property carried end-to-end: the publisher sees pseudonyms,
//! commitments and proofs — never an attribute value, and never whether a
//! given registration actually yielded a usable CSS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod harness;
pub mod idmgr;
pub mod idp;
pub mod net;
pub mod publisher;
pub mod subscriber;
pub mod token;

pub use error::PbcdError;
pub use harness::SystemHarness;
pub use idmgr::IdentityManager;
pub use idp::{AttributeAssertion, IdentityProvider};
pub use net::{NetPublisher, NetSubscriber};
pub use publisher::{Publisher, PublisherConfig};
pub use subscriber::Subscriber;
pub use token::IdentityToken;
