//! The Identity Manager (paper §III, §V-A): a trusted third party that
//! turns certified attributes into identity tokens.
//!
//! The IdMgr runs the Pedersen setup, verifies IdP assertions, assigns each
//! subject a stable pseudonym, and issues signed tokens whose commitments
//! hide the attribute values. It hands `(x, r)` back to the subscriber for
//! private use.

use crate::error::PbcdError;
use crate::idp::AttributeAssertion;
use crate::token::{token_signing_payload, IdentityToken};
use pbcd_commit::{Opening, Pedersen};
use pbcd_group::{CyclicGroup, SigningKey, VerifyingKey};
use rand::RngCore;
use std::collections::BTreeMap;

/// The Identity Manager.
pub struct IdentityManager<G: CyclicGroup> {
    ped: Pedersen<G>,
    key: SigningKey<G>,
    /// Stable subject → pseudonym map ("all identity tokens of the same Sub
    /// have the same nym").
    nyms: BTreeMap<String, String>,
    next_nym: u32,
}

impl<G: CyclicGroup> IdentityManager<G> {
    /// Creates an IdMgr over `group` with a fresh signing key.
    pub fn new<R: RngCore + ?Sized>(group: G, rng: &mut R) -> Self {
        Self {
            ped: Pedersen::new(group.clone()),
            key: SigningKey::generate(&group, rng),
            nyms: BTreeMap::new(),
            next_nym: 1000,
        }
    }

    /// The IdMgr's token-verification key (published system-wide).
    pub fn verifying_key(&self) -> VerifyingKey<G> {
        self.key.verifying_key()
    }

    /// The Pedersen instance (system parameters `⟨G, g, h⟩`).
    pub fn pedersen(&self) -> &Pedersen<G> {
        &self.ped
    }

    /// The pseudonym assigned to `subject`, allocating one if new.
    pub fn nym_for(&mut self, subject: &str) -> String {
        if let Some(n) = self.nyms.get(subject) {
            return n.clone();
        }
        let nym = format!("pn-{:04}", self.next_nym);
        self.next_nym += 1;
        self.nyms.insert(subject.to_string(), nym.clone());
        nym
    }

    /// Issues an identity token for a verified assertion. Returns the token
    /// plus the opening `(x, r)`, which the IdMgr forwards to the
    /// subscriber and then forgets.
    pub fn issue_token<R: RngCore + ?Sized>(
        &mut self,
        assertion: &AttributeAssertion<G>,
        idp_key: &VerifyingKey<G>,
        rng: &mut R,
    ) -> Result<(IdentityToken<G>, Opening), PbcdError> {
        if !assertion.verify(self.ped.group(), idp_key) {
            return Err(PbcdError::BadAssertionSignature);
        }
        let nym = self.nym_for(&assertion.subject);
        Ok(self.issue_raw(&nym, &assertion.attribute, assertion.value, rng))
    }

    /// Issues a **decoy token** (paper §VI-A extension): a token for an
    /// attribute the subject holds *no proof for*, committing to a value
    /// outside the normal range. The subscriber can then register for
    /// conditions on that attribute — hiding even *which attributes it
    /// possesses* from the publisher — while never being able to open the
    /// resulting envelopes.
    pub fn issue_decoy_token<R: RngCore + ?Sized>(
        &mut self,
        subject: &str,
        attribute: &str,
        rng: &mut R,
    ) -> (IdentityToken<G>, Opening) {
        let nym = self.nym_for(subject);
        self.issue_raw(&nym, attribute, decoy_value(), rng)
    }

    fn issue_raw<R: RngCore + ?Sized>(
        &mut self,
        nym: &str,
        attribute: &str,
        value: u64,
        rng: &mut R,
    ) -> (IdentityToken<G>, Opening) {
        let value = self.ped.group().scalar_ctx().from_u64(value);
        let (commitment, opening) = self.ped.commit(&value, rng);
        let payload = token_signing_payload(&self.ped, nym, attribute, &commitment);
        let signature = self.key.sign(self.ped.group(), rng, &payload);
        (
            IdentityToken {
                nym: nym.to_string(),
                id_tag: attribute.to_string(),
                commitment,
                signature,
            },
            opening,
        )
    }
}

/// The reserved out-of-range value decoy tokens commit to: the all-ones
/// 63-bit pattern, outside every ℓ ≤ 62-bit attribute space and outside
/// the 48-bit string-encoding space.
pub fn decoy_value() -> u64 {
    (1 << 63) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idp::IdentityProvider;
    use pbcd_group::P256Group;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1200)
    }

    #[test]
    fn issue_and_verify_token() {
        let mut r = rng();
        let group = P256Group::new();
        let idp = IdentityProvider::new(group.clone(), "DMV", &mut r);
        let mut idmgr = IdentityManager::new(group.clone(), &mut r);
        let assertion = idp.assert_attribute("bob@example.com", "age", 28, &mut r);
        let (token, opening) = idmgr
            .issue_token(&assertion, &idp.verifying_key(), &mut r)
            .unwrap();
        assert_eq!(token.id_tag, "age");
        token
            .verify(idmgr.pedersen(), &idmgr.verifying_key())
            .unwrap();
        // Opening matches the commitment.
        assert!(idmgr.pedersen().verify_open(&token.commitment, &opening));
        assert_eq!(
            opening.value,
            group.scalar_ctx().from_u64(28),
            "committed value is the asserted one"
        );
    }

    #[test]
    fn forged_assertion_rejected() {
        let mut r = rng();
        let group = P256Group::new();
        let idp = IdentityProvider::new(group.clone(), "DMV", &mut r);
        let rogue = IdentityProvider::new(group.clone(), "Rogue", &mut r);
        let mut idmgr = IdentityManager::new(group, &mut r);
        let mut assertion = idp.assert_attribute("bob", "age", 28, &mut r);
        // Wrong IdP key.
        assert_eq!(
            idmgr
                .issue_token(&assertion, &rogue.verifying_key(), &mut r)
                .err(),
            Some(PbcdError::BadAssertionSignature)
        );
        // Tampered value.
        assertion.value = 99;
        assert_eq!(
            idmgr
                .issue_token(&assertion, &idp.verifying_key(), &mut r)
                .err(),
            Some(PbcdError::BadAssertionSignature)
        );
    }

    #[test]
    fn stable_pseudonyms_per_subject() {
        let mut r = rng();
        let group = P256Group::new();
        let idp = IdentityProvider::new(group.clone(), "HR", &mut r);
        let mut idmgr = IdentityManager::new(group, &mut r);
        let a1 = idp.assert_attribute("alice", "role", 7, &mut r);
        let a2 = idp.assert_attribute("alice", "level", 59, &mut r);
        let a3 = idp.assert_attribute("bob", "role", 7, &mut r);
        let (t1, _) = idmgr
            .issue_token(&a1, &idp.verifying_key(), &mut r)
            .unwrap();
        let (t2, _) = idmgr
            .issue_token(&a2, &idp.verifying_key(), &mut r)
            .unwrap();
        let (t3, _) = idmgr
            .issue_token(&a3, &idp.verifying_key(), &mut r)
            .unwrap();
        assert_eq!(t1.nym, t2.nym, "same subject, same nym");
        assert_ne!(t1.nym, t3.nym, "different subjects, different nyms");
    }

    #[test]
    fn tampered_token_fails_verification() {
        let mut r = rng();
        let group = P256Group::new();
        let idp = IdentityProvider::new(group.clone(), "DMV", &mut r);
        let mut idmgr = IdentityManager::new(group, &mut r);
        let assertion = idp.assert_attribute("bob", "age", 28, &mut r);
        let (mut token, _) = idmgr
            .issue_token(&assertion, &idp.verifying_key(), &mut r)
            .unwrap();
        token.id_tag = "level".into(); // claim a different attribute
        assert_eq!(
            token.verify(idmgr.pedersen(), &idmgr.verifying_key()).err(),
            Some(PbcdError::BadTokenSignature)
        );
    }
}
