//! Identity tokens (paper §V-A): `IT = (nym, id-tag, c, σ)`.
//!
//! A token binds a pseudonym and an attribute *name* to a Pedersen
//! commitment of the attribute *value*, under the Identity Manager's
//! signature. The value itself never appears.

use crate::error::PbcdError;
use pbcd_commit::{Commitment, Pedersen};
use pbcd_group::{CyclicGroup, Signature, VerifyingKey};

/// An identity token.
pub struct IdentityToken<G: CyclicGroup> {
    /// The subscriber's pseudonym (`nym`), shared by all its tokens.
    pub nym: String,
    /// The attribute name this token certifies (`id-tag`).
    pub id_tag: String,
    /// Pedersen commitment to the attribute value.
    pub commitment: Commitment<G>,
    /// IdMgr signature over `(nym, id-tag, commitment)`.
    pub signature: Signature<G>,
}

impl<G: CyclicGroup> Clone for IdentityToken<G> {
    fn clone(&self) -> Self {
        Self {
            nym: self.nym.clone(),
            id_tag: self.id_tag.clone(),
            commitment: self.commitment.clone(),
            signature: self.signature.clone(),
        }
    }
}

impl<G: CyclicGroup> core::fmt::Debug for IdentityToken<G> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "IdentityToken(nym={}, tag={})", self.nym, self.id_tag)
    }
}

/// Canonical byte string the IdMgr signs.
pub fn token_signing_payload<G: CyclicGroup>(
    ped: &Pedersen<G>,
    nym: &str,
    id_tag: &str,
    commitment: &Commitment<G>,
) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(b"pbcd-identity-token-v1\0");
    payload.extend_from_slice(&(nym.len() as u32).to_be_bytes());
    payload.extend_from_slice(nym.as_bytes());
    payload.extend_from_slice(&(id_tag.len() as u32).to_be_bytes());
    payload.extend_from_slice(id_tag.as_bytes());
    payload.extend_from_slice(&ped.serialize(commitment));
    payload
}

impl<G: CyclicGroup> IdentityToken<G> {
    /// Verifies the IdMgr signature.
    pub fn verify(&self, ped: &Pedersen<G>, idmgr_key: &VerifyingKey<G>) -> Result<(), PbcdError> {
        let payload = token_signing_payload(ped, &self.nym, &self.id_tag, &self.commitment);
        if idmgr_key.verify(ped.group(), &payload, &self.signature) {
            Ok(())
        } else {
            Err(PbcdError::BadTokenSignature)
        }
    }
}
