//! Publisher- and issuer-side protocol services: single
//! bytes-in/bytes-out entry points over the [`crate::proto`] messages.
//!
//! A service owns its actor and a deterministic RNG, and exposes exactly
//! one method — `handle(request_bytes) -> response_bytes` — that is
//! **total**: malformed, hostile or out-of-protocol input yields an
//! encoded [`proto::ErrorResponse`], never a panic, and the service keeps
//! serving. Because the surface is pure bytes it is trivially
//! rate-limitable, fuzzable, and transportable: pass `handle` as the
//! handler of a [`pbcd_net::direct::RegistrationServer`] and the whole
//! registration flow crosses real sockets with no shared `OcbeSystem`
//! references between the endpoints.

use crate::error::PbcdError;
use crate::idmgr::IdentityManager;
use crate::idp::IdentityProvider;
use crate::proto::{
    self, ConditionsInfo, ErrorCode, ErrorResponse, IssueResponse, RegisterResponse, Request,
    Response,
};
use crate::publisher::Publisher;
use pbcd_gkm::{AcvBgkm, BroadcastGkm};
use pbcd_group::CyclicGroup;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Running counters a service keeps about its traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests handled (including rejected ones).
    pub requests: u64,
    /// Registrations that produced an envelope.
    pub registrations: u64,
    /// Requests answered with a typed error response.
    pub errors: u64,
}

/// Longest error-detail string shipped back to a peer; truncation keeps
/// the error path infallible (a bounded message can always encode).
const MAX_ERROR_DETAIL: usize = 256;

fn error_bytes<G: CyclicGroup>(group: &G, code: ErrorCode, message: &str) -> Vec<u8> {
    let mut end = message.len().min(MAX_ERROR_DETAIL);
    while !message.is_char_boundary(end) {
        end -= 1;
    }
    Response::<G>::Error(ErrorResponse {
        code,
        message: message[..end].to_string(),
    })
    .encode(group)
    .expect("bounded error responses always encode")
}

fn code_for(err: &PbcdError) -> ErrorCode {
    match err {
        PbcdError::BadTokenSignature | PbcdError::BadAssertionSignature => ErrorCode::BadToken,
        PbcdError::TagMismatch { .. } => ErrorCode::TagMismatch,
        PbcdError::UnknownCondition => ErrorCode::UnknownCondition,
        PbcdError::Ocbe(_) => ErrorCode::BadProof,
        _ => ErrorCode::Internal,
    }
}

/// The publisher-side protocol handler as a free function: decodes one
/// request, serves it against `publisher`, encodes the response. Total —
/// every failure becomes a typed error response.
///
/// [`PublisherService`] wraps this with owned state; [`crate::harness`]
/// calls it directly so the in-process flow exercises the very same
/// byte-level protocol as the socket deployment.
pub fn dispatch<G: CyclicGroup, K: BroadcastGkm, R: RngCore + ?Sized>(
    publisher: &mut Publisher<G, K>,
    request: &[u8],
    rng: &mut R,
) -> Vec<u8> {
    let group = publisher.ocbe().group().clone();
    let req = match Request::decode(&group, request) {
        Ok(r) => r,
        Err(e) => return error_bytes(&group, ErrorCode::Malformed, &e.to_string()),
    };
    let resp = match req {
        Request::ConditionsQuery { attribute } => Response::Conditions(ConditionsInfo {
            ell: publisher.ocbe().ell(),
            kappa_bits: publisher.css_table().kappa_bits(),
            conditions: match attribute {
                Some(a) => publisher.conditions_for_attribute(&a),
                None => publisher.policies().distinct_conditions(),
            },
        }),
        Request::Register(r) => match publisher.register(&r.token, &r.cond, &r.proof, rng) {
            Ok(envelope) => Response::Register(RegisterResponse { envelope }),
            Err(e) => return error_bytes(&group, code_for(&e), &e.to_string()),
        },
        Request::Issue(_) => {
            return error_bytes(
                &group,
                ErrorCode::Unsupported,
                "publishers do not issue tokens; speak to the identity manager",
            )
        }
    };
    resp.encode(&group)
        .unwrap_or_else(|e| error_bytes(&group, ErrorCode::Internal, &e.to_string()))
}

/// The publisher's registration endpoint: owns the [`Publisher`] and an
/// RNG, and answers [`crate::proto`] requests as opaque bytes.
pub struct PublisherService<G: CyclicGroup, K: BroadcastGkm = AcvBgkm> {
    publisher: Publisher<G, K>,
    rng: StdRng,
    stats: ServiceStats,
}

impl<G: CyclicGroup, K: BroadcastGkm> PublisherService<G, K> {
    /// Wraps `publisher` with a deterministically seeded RNG (matching the
    /// repository-wide reproducibility convention).
    pub fn new(publisher: Publisher<G, K>, seed: u64) -> Self {
        Self {
            publisher,
            rng: StdRng::seed_from_u64(seed),
            stats: ServiceStats::default(),
        }
    }

    /// Handles one request; total, never panics on hostile bytes.
    pub fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        self.stats.requests += 1;
        let response = dispatch(&mut self.publisher, request, &mut self.rng);
        if proto::is_error_response(&response) {
            self.stats.errors += 1;
        } else if proto::is_register_request(request) {
            // A non-error answer to a registration means an envelope went
            // out.
            self.stats.registrations += 1;
        }
        response
    }

    /// Pre-encodes the response to the **full** conditions query
    /// (`attribute: None`) — byte-identical to what [`Self::handle`]
    /// would return — so read-mostly endpoints can serve it from a
    /// [`ConditionsSnapshot`] without locking this service. `None` only
    /// if the policy data fails to encode (oversized fields).
    pub fn encode_conditions(&self) -> Option<Vec<u8>> {
        let group = self.publisher.ocbe().group().clone();
        Response::<G>::Conditions(ConditionsInfo {
            ell: self.publisher.ocbe().ell(),
            kappa_bits: self.publisher.css_table().kappa_bits(),
            conditions: self.publisher.policies().distinct_conditions(),
        })
        .encode(&group)
        .ok()
    }

    /// The wrapped publisher (e.g. for broadcasting and policy queries).
    pub fn publisher(&self) -> &Publisher<G, K> {
        &self.publisher
    }

    /// Mutable access (broadcast, revocation — publisher-local actions
    /// that are not protocol requests).
    pub fn publisher_mut(&mut self) -> &mut Publisher<G, K> {
        &mut self.publisher
    }

    /// Reseeds the envelope RNG (e.g. before exposing the service on a
    /// socket).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Traffic counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Unwraps the publisher.
    pub fn into_inner(self) -> Publisher<G, K> {
        self.publisher
    }
}

/// A shared, pre-encoded copy of the full-conditions response that
/// read-mostly endpoints serve **without taking the publisher-service
/// mutex** — under many concurrent subscribers, conditions queries no
/// longer serialize behind registrations (which hold the service lock for
/// a full OCBE envelope composition each).
///
/// Lifecycle: populate with [`Self::set`] (from
/// [`PublisherService::encode_conditions`] or a fresh `handle` response),
/// serve with [`Self::get`], and [`Self::invalidate`] on **any**
/// publisher mutation — the policy set, ℓ or κ may have changed; the next
/// query repopulates lazily. Snapshot-served requests bypass
/// [`ServiceStats`]; they are counted in [`Self::hits`] instead.
#[derive(Debug, Default)]
pub struct ConditionsSnapshot {
    bytes: RwLock<Option<Arc<Vec<u8>>>>,
    hits: AtomicU64,
}

impl ConditionsSnapshot {
    /// An empty (unpopulated) snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// The snapshot bytes, if populated. Counts a hit when it is.
    pub fn get(&self) -> Option<Arc<Vec<u8>>> {
        let bytes = self
            .bytes
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        if bytes.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        bytes
    }

    /// Installs fresh pre-encoded response bytes.
    pub fn set(&self, bytes: Vec<u8>) {
        *self
            .bytes
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Arc::new(bytes));
    }

    /// Drops the snapshot; the next query goes to the service and
    /// repopulates.
    pub fn invalidate(&self) {
        *self
            .bytes
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }

    /// How many queries were answered from the snapshot (i.e. without the
    /// service mutex).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

/// A subject-authentication hook for [`IssuerService`]: given an incoming
/// [`proto::IssueRequest`], decide whether this deployment's identity
/// provider actually vouches for `(subject, attribute, value)`.
pub type IssueVerifier = Box<dyn FnMut(&proto::IssueRequest) -> bool + Send>;

/// The issuance endpoint (paper §V-A): the IdP + IdMgr pair behind one
/// bytes-in/bytes-out handler. Subscribers send [`proto::IssueRequest`]s
/// and receive signed tokens plus their private openings. The issuer
/// legitimately learns attribute values — it is the party committing to
/// them; the publisher never sees this exchange.
///
/// **Trust caveat:** the protocol message carries a *claimed*
/// `(subject, attribute, value)`; the paper's IdP certifies attributes it
/// has verified out of band (an employer's HR system, a DMV, …). A service
/// built with [`Self::new`] trusts every claim — acceptable only on an
/// authenticated channel to already-vetted subjects (as in the examples
/// and tests here, where the harness plays every role). Real deployments
/// must install an [`IssueVerifier`] via [`Self::with_verifier`] — a
/// rejected claim gets a typed [`ErrorCode::BadToken`] response, and a
/// network peer can then no longer mint qualifying tokens (or tokens
/// bound to someone else's nym) by just asking.
pub struct IssuerService<G: CyclicGroup> {
    idp: IdentityProvider<G>,
    idmgr: IdentityManager<G>,
    rng: StdRng,
    verifier: Option<IssueVerifier>,
}

impl<G: CyclicGroup> IssuerService<G> {
    /// Wraps an IdP/IdMgr pair that vouches for every claim it receives —
    /// see the trust caveat on the type.
    pub fn new(idp: IdentityProvider<G>, idmgr: IdentityManager<G>, seed: u64) -> Self {
        Self {
            idp,
            idmgr,
            rng: StdRng::seed_from_u64(seed),
            verifier: None,
        }
    }

    /// Like [`Self::new`], but every issuance claim must pass `verifier`
    /// first; rejected claims get a typed [`ErrorCode::BadToken`] response.
    pub fn with_verifier(
        idp: IdentityProvider<G>,
        idmgr: IdentityManager<G>,
        seed: u64,
        verifier: impl FnMut(&proto::IssueRequest) -> bool + Send + 'static,
    ) -> Self {
        Self {
            idp,
            idmgr,
            rng: StdRng::seed_from_u64(seed),
            verifier: Some(Box::new(verifier)),
        }
    }

    /// Handles one request; total, never panics on hostile bytes.
    pub fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        let group = self.idmgr.pedersen().group().clone();
        let req = match Request::decode(&group, request) {
            Ok(r) => r,
            Err(e) => return error_bytes(&group, ErrorCode::Malformed, &e.to_string()),
        };
        let resp = match req {
            Request::Issue(r) => {
                if let Some(verifier) = &mut self.verifier {
                    if !verifier(&r) {
                        return error_bytes(
                            &group,
                            ErrorCode::BadToken,
                            "the identity provider does not vouch for this claim",
                        );
                    }
                }
                let assertion =
                    self.idp
                        .assert_attribute(&r.subject, &r.attribute, r.value, &mut self.rng);
                match self
                    .idmgr
                    .issue_token(&assertion, &self.idp.verifying_key(), &mut self.rng)
                {
                    Ok((token, opening)) => Response::Issue(IssueResponse { token, opening }),
                    Err(e) => return error_bytes(&group, code_for(&e), &e.to_string()),
                }
            }
            Request::ConditionsQuery { .. } | Request::Register(_) => {
                return error_bytes(
                    &group,
                    ErrorCode::Unsupported,
                    "the issuer only serves token issuance",
                )
            }
        };
        resp.encode(&group)
            .unwrap_or_else(|e| error_bytes(&group, ErrorCode::Internal, &e.to_string()))
    }

    /// The identity manager (e.g. for its verifying key, which publishers
    /// need at setup).
    pub fn idmgr(&self) -> &IdentityManager<G> {
        &self.idmgr
    }
}
