//! Publisher- and issuer-side protocol services: single
//! bytes-in/bytes-out entry points over the [`crate::proto`] messages.
//!
//! A service owns its actor and a deterministic RNG, and exposes exactly
//! one method — `handle(request_bytes) -> response_bytes` — that is
//! **total**: malformed, hostile or out-of-protocol input yields an
//! encoded [`proto::ErrorResponse`], never a panic, and the service keeps
//! serving. Because the surface is pure bytes it is trivially
//! rate-limitable, fuzzable, and transportable: pass `handle` as the
//! handler of a [`pbcd_net::direct::RegistrationServer`] and the whole
//! registration flow crosses real sockets with no shared `OcbeSystem`
//! references between the endpoints.

use crate::error::PbcdError;
use crate::idmgr::IdentityManager;
use crate::idp::IdentityProvider;
use crate::proto::{
    self, ConditionsInfo, ErrorCode, ErrorResponse, IssueResponse, RegisterResponse, Request,
    Response,
};
use crate::publisher::{Publisher, Registrar};
use pbcd_gkm::{AcvBgkm, BroadcastGkm};
use pbcd_group::CyclicGroup;
use pbcd_telemetry::{Counter, Gauge, Histogram, Registry, Snapshot};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Running counters a service keeps about its traffic — a fixed-shape
/// view over the service's metrics registry (every field reads a registry
/// counter; [`PublisherService::metrics`] exposes the full set, including
/// per-request-kind latency histograms and OCBE envelope counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests handled (including rejected ones). Does **not** include
    /// snapshot-served conditions queries — see
    /// [`Self::conditions_cache_hits`].
    pub requests: u64,
    /// Registrations that produced an envelope.
    pub registrations: u64,
    /// Requests answered with a typed error response.
    pub errors: u64,
    /// Full conditions queries answered from the pre-encoded snapshot,
    /// i.e. without touching the service at all. Always 0 for a bare
    /// [`PublisherService`] (which has no snapshot); populated by
    /// [`SharedPublisherService::stats`].
    pub conditions_cache_hits: u64,
}

/// Longest error-detail string shipped back to a peer; truncation keeps
/// the error path infallible (a bounded message can always encode).
const MAX_ERROR_DETAIL: usize = 256;

fn error_bytes<G: CyclicGroup>(group: &G, code: ErrorCode, message: &str) -> Vec<u8> {
    let mut end = message.len().min(MAX_ERROR_DETAIL);
    while !message.is_char_boundary(end) {
        end -= 1;
    }
    Response::<G>::Error(ErrorResponse {
        code,
        message: message[..end].to_string(),
    })
    .encode(group)
    .expect("bounded error responses always encode")
}

/// A per-item error for batch responses — same code mapping and detail
/// truncation as [`error_bytes`], but as a value the batch codec embeds
/// rather than a whole response.
fn error_item(err: &PbcdError) -> ErrorResponse {
    let message = err.to_string();
    let mut end = message.len().min(MAX_ERROR_DETAIL);
    while !message.is_char_boundary(end) {
        end -= 1;
    }
    ErrorResponse {
        code: code_for(err),
        message: message[..end].to_string(),
    }
}

fn code_for(err: &PbcdError) -> ErrorCode {
    match err {
        PbcdError::BadTokenSignature | PbcdError::BadAssertionSignature => ErrorCode::BadToken,
        PbcdError::TagMismatch { .. } => ErrorCode::TagMismatch,
        PbcdError::UnknownCondition => ErrorCode::UnknownCondition,
        PbcdError::Ocbe(_) => ErrorCode::BadProof,
        _ => ErrorCode::Internal,
    }
}

/// Pre-resolved registry handles for the service-plane metrics. Clonable:
/// [`SharedPublisherService`] keeps a clone whose handles point at the
/// same underlying atomics as the wrapped service's, so both request
/// paths feed one registry.
#[derive(Clone)]
struct ServiceTelemetry {
    registry: Arc<Registry>,
    requests: Counter,
    registrations: Counter,
    errors: Counter,
    snapshot_hits: Gauge,
    env_eq: Counter,
    env_ge: Counter,
    env_le: Counter,
    env_dual: Counter,
    handle_conditions_ns: Histogram,
    handle_register_ns: Histogram,
    handle_register_batch_ns: Histogram,
    handle_issue_ns: Histogram,
    handle_issue_batch_ns: Histogram,
    handle_stats_ns: Histogram,
    handle_malformed_ns: Histogram,
    group_exp: Gauge,
    group_exp2: Gauge,
}

impl ServiceTelemetry {
    /// Registers the full service metric set eagerly, so even a fresh
    /// service's exposition shows every name at zero.
    fn new() -> ServiceTelemetry {
        let registry = Arc::new(Registry::new());
        ServiceTelemetry {
            requests: registry.counter("service_requests_total"),
            registrations: registry.counter("service_registrations_total"),
            errors: registry.counter("service_errors_total"),
            snapshot_hits: registry.gauge("service_conditions_cache_hits"),
            env_eq: registry.counter("ocbe_envelopes_total{kind=\"eq\"}"),
            env_ge: registry.counter("ocbe_envelopes_total{kind=\"ge\"}"),
            env_le: registry.counter("ocbe_envelopes_total{kind=\"le\"}"),
            env_dual: registry.counter("ocbe_envelopes_total{kind=\"dual\"}"),
            handle_conditions_ns: registry.histogram("service_handle_ns{kind=\"conditions\"}"),
            handle_register_ns: registry.histogram("service_handle_ns{kind=\"register\"}"),
            handle_register_batch_ns: registry
                .histogram("service_handle_ns{kind=\"register_batch\"}"),
            handle_issue_ns: registry.histogram("service_handle_ns{kind=\"issue\"}"),
            handle_issue_batch_ns: registry.histogram("service_handle_ns{kind=\"issue_batch\"}"),
            handle_stats_ns: registry.histogram("service_handle_ns{kind=\"stats\"}"),
            handle_malformed_ns: registry.histogram("service_handle_ns{kind=\"malformed\"}"),
            group_exp: registry.gauge("group_exp_total"),
            group_exp2: registry.gauge("group_exp2_total"),
            registry,
        }
    }

    /// The latency histogram for a request-kind label (from
    /// [`proto::request_kind_label`]).
    fn histogram_for(&self, kind: &str) -> &Histogram {
        match kind {
            "conditions" => &self.handle_conditions_ns,
            "register" => &self.handle_register_ns,
            "register_batch" => &self.handle_register_batch_ns,
            "issue" => &self.handle_issue_ns,
            "issue_batch" => &self.handle_issue_batch_ns,
            "stats" => &self.handle_stats_ns,
            _ => &self.handle_malformed_ns,
        }
    }

    /// Counts one composed OCBE envelope under its flavour label.
    fn count_envelope(&self, kind: &str) {
        match kind {
            "eq" => self.env_eq.inc(),
            "ge" => self.env_ge.inc(),
            "le" => self.env_le.inc(),
            "dual" => self.env_dual.inc(),
            _ => {}
        }
    }

    /// Books a served request: errors, registrations and envelope
    /// flavours from the byte classifiers, plus the per-kind latency.
    fn record(&self, request: &[u8], response: &[u8], start: Instant) {
        if proto::is_error_response(response) {
            self.errors.inc();
        } else if proto::is_register_request(request) {
            self.registrations.inc();
            if let Some(kind) = proto::register_envelope_kind(response) {
                self.count_envelope(kind);
            }
        }
        self.histogram_for(proto::request_kind_label(request))
            .record_since(start);
    }

    /// One consistent snapshot, with the process-wide group-exponentiation
    /// tallies ([`pbcd_group::ops`]) mirrored in as gauges first.
    fn snapshot(&self) -> Snapshot {
        self.group_exp.set(pbcd_group::ops::exp_total());
        self.group_exp2.set(pbcd_group::ops::exp2_total());
        self.registry.snapshot()
    }
}

/// The publisher-side protocol handler as a free function: decodes one
/// request, serves it against `publisher`, encodes the response. Total —
/// every failure becomes a typed error response.
///
/// [`PublisherService`] wraps this with owned state; [`crate::harness`]
/// calls it directly so the in-process flow exercises the very same
/// byte-level protocol as the socket deployment.
pub fn dispatch<G: CyclicGroup, K: BroadcastGkm, R: RngCore + ?Sized>(
    publisher: &mut Publisher<G, K>,
    request: &[u8],
    rng: &mut R,
) -> Vec<u8> {
    let group = publisher.ocbe().group().clone();
    let req = match Request::decode(&group, request) {
        Ok(r) => r,
        Err(e) => return error_bytes(&group, ErrorCode::Malformed, &e.to_string()),
    };
    let resp = match req {
        Request::ConditionsQuery { attribute } => Response::Conditions(ConditionsInfo {
            ell: publisher.ocbe().ell(),
            kappa_bits: publisher.shared_css_table().kappa_bits(),
            conditions: match attribute {
                Some(a) => publisher.conditions_for_attribute(&a),
                None => publisher.policies().distinct_conditions(),
            },
        }),
        Request::Register(r) => match publisher.register(&r.token, &r.cond, &r.proof, rng) {
            Ok(envelope) => Response::Register(RegisterResponse { envelope }),
            Err(e) => return error_bytes(&group, code_for(&e), &e.to_string()),
        },
        Request::RegisterBatch(items) => {
            let items: Vec<_> = items
                .into_iter()
                .map(|r| (r.token, r.cond, r.proof))
                .collect();
            Response::RegisterBatch(
                publisher
                    .register_batch(&items, rng)
                    .into_iter()
                    .map(|r| match r {
                        Ok(envelope) => Ok(RegisterResponse { envelope }),
                        Err(e) => Err(error_item(&e)),
                    })
                    .collect(),
            )
        }
        Request::IssueBatch(_) | Request::Issue(_) => {
            return error_bytes(
                &group,
                ErrorCode::Unsupported,
                "publishers do not issue tokens; speak to the identity manager",
            )
        }
        Request::Stats => {
            return error_bytes(
                &group,
                ErrorCode::Unsupported,
                "stats are served by the owning service, not the bare dispatcher",
            )
        }
    };
    resp.encode(&group)
        .unwrap_or_else(|e| error_bytes(&group, ErrorCode::Internal, &e.to_string()))
}

/// The publisher's registration endpoint: owns the [`Publisher`] and an
/// RNG, and answers [`crate::proto`] requests as opaque bytes.
pub struct PublisherService<G: CyclicGroup, K: BroadcastGkm = AcvBgkm> {
    publisher: Publisher<G, K>,
    rng: StdRng,
    telemetry: ServiceTelemetry,
}

impl<G: CyclicGroup, K: BroadcastGkm> PublisherService<G, K> {
    /// Wraps `publisher` with a deterministically seeded RNG (matching the
    /// repository-wide reproducibility convention).
    pub fn new(publisher: Publisher<G, K>, seed: u64) -> Self {
        Self {
            publisher,
            rng: StdRng::seed_from_u64(seed),
            telemetry: ServiceTelemetry::new(),
        }
    }

    /// Handles one request; total, never panics on hostile bytes. A
    /// [`proto::Request::Stats`] query is answered from the service's own
    /// registry; everything else goes through [`dispatch`], with the
    /// per-kind latency and OCBE envelope flavour booked from the byte
    /// classifiers.
    pub fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        let start = Instant::now();
        self.telemetry.requests.inc();
        let response = if proto::is_stats_query(request) {
            let group = self.publisher.ocbe().group().clone();
            Response::<G>::Stats {
                text: self.telemetry.snapshot().render_text(),
            }
            .encode(&group)
            .unwrap_or_else(|e| error_bytes(&group, ErrorCode::Internal, &e.to_string()))
        } else {
            dispatch(&mut self.publisher, request, &mut self.rng)
        };
        self.telemetry.record(request, &response, start);
        response
    }

    /// Pre-encodes the response to the **full** conditions query
    /// (`attribute: None`) — byte-identical to what [`Self::handle`]
    /// would return — so read-mostly endpoints can serve it from a
    /// [`ConditionsSnapshot`] without locking this service. `None` only
    /// if the policy data fails to encode (oversized fields).
    pub fn encode_conditions(&self) -> Option<Vec<u8>> {
        let group = self.publisher.ocbe().group().clone();
        Response::<G>::Conditions(ConditionsInfo {
            ell: self.publisher.ocbe().ell(),
            kappa_bits: self.publisher.shared_css_table().kappa_bits(),
            conditions: self.publisher.policies().distinct_conditions(),
        })
        .encode(&group)
        .ok()
    }

    /// The wrapped publisher (e.g. for broadcasting and policy queries).
    pub fn publisher(&self) -> &Publisher<G, K> {
        &self.publisher
    }

    /// Mutable access (broadcast, revocation — publisher-local actions
    /// that are not protocol requests).
    pub fn publisher_mut(&mut self) -> &mut Publisher<G, K> {
        &mut self.publisher
    }

    /// Reseeds the envelope RNG (e.g. before exposing the service on a
    /// socket).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Traffic counters — a fixed-shape view over [`Self::metrics`].
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.telemetry.requests.get(),
            registrations: self.telemetry.registrations.get(),
            errors: self.telemetry.errors.get(),
            conditions_cache_hits: self.telemetry.snapshot_hits.get(),
        }
    }

    /// Full metrics snapshot: request counters, per-kind handler latency
    /// histograms, OCBE envelope counters and the mirrored process-wide
    /// group-exponentiation tallies.
    pub fn metrics(&self) -> Snapshot {
        self.telemetry.snapshot()
    }

    /// Unwraps the publisher.
    pub fn into_inner(self) -> Publisher<G, K> {
        self.publisher
    }
}

/// A shared, pre-encoded copy of the full-conditions response that
/// read-mostly endpoints serve **without taking the publisher-service
/// mutex** — under many concurrent subscribers, conditions queries no
/// longer serialize behind registrations (which hold the service lock for
/// a full OCBE envelope composition each).
///
/// Lifecycle: populate with [`Self::set`] (from
/// [`PublisherService::encode_conditions`] or a fresh `handle` response),
/// serve with [`Self::get`], and [`Self::invalidate`] on **any**
/// publisher mutation — the policy set, ℓ or κ may have changed; the next
/// query repopulates lazily. Snapshot-served requests bypass
/// [`ServiceStats`]; they are counted in [`Self::hits`] instead.
#[derive(Debug, Default)]
pub struct ConditionsSnapshot {
    bytes: RwLock<Option<Arc<Vec<u8>>>>,
    hits: AtomicU64,
}

impl ConditionsSnapshot {
    /// An empty (unpopulated) snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// The snapshot bytes, if populated. Counts a hit when it is.
    pub fn get(&self) -> Option<Arc<Vec<u8>>> {
        let bytes = self
            .bytes
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        if bytes.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        bytes
    }

    /// Installs fresh pre-encoded response bytes.
    pub fn set(&self, bytes: Vec<u8>) {
        *self
            .bytes
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Arc::new(bytes));
    }

    /// Drops the snapshot; the next query goes to the service and
    /// repopulates.
    pub fn invalidate(&self) {
        *self
            .bytes
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }

    /// How many queries were answered from the snapshot (i.e. without the
    /// service mutex).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

/// The publisher service sharded for concurrency: a total
/// `handle(bytes) -> bytes` that any number of connection threads may call
/// **simultaneously** (`&self`), routing each request class to the
/// cheapest synchronization that serves it:
///
/// * **Full conditions query** → the pre-encoded [`ConditionsSnapshot`],
///   no lock at all (PR 4's fast path, now folded in here);
/// * **Registration** → an `Arc`-shared read-mostly [`Registrar`] (OCBE
///   parameters, IdMgr key, condition list) plus the sharded CSS table —
///   concurrent registrations contend only on their subscriber's table
///   shard and a momentary RNG reseed;
/// * **everything else** (filtered conditions queries, unsupported kinds,
///   malformed bytes) → the exclusive inner [`PublisherService`] mutex,
///   which also remains the gateway for every publisher mutation.
///
/// Snapshot discipline: [`Self::with_publisher_mut`] invalidates both the
/// conditions snapshot and the registrar while holding the inner lock;
/// rebuild-on-miss also runs under that lock, so stale material can never
/// be re-installed after a mutation.
pub struct SharedPublisherService<G: CyclicGroup, K: BroadcastGkm = AcvBgkm> {
    inner: Mutex<PublisherService<G, K>>,
    /// Read-mostly registration material; `None` = stale, rebuild on use.
    registrar: RwLock<Option<Arc<Registrar<G>>>>,
    conditions: ConditionsSnapshot,
    /// Seed source for the per-thread registration RNGs: held only long
    /// enough to draw 8 bytes, never across an envelope composition.
    rng: Mutex<StdRng>,
    /// Identity of this service instance for the thread-local RNG cache.
    serial: u64,
    /// Bumped by [`Self::reseed`]; invalidates every cached per-thread RNG.
    rng_epoch: AtomicU64,
    /// A clone of the wrapped service's telemetry: the concurrent
    /// registration path books into the same registry atomics as the
    /// exclusive path, so there is exactly one set of service counters.
    telemetry: ServiceTelemetry,
}

impl<G: CyclicGroup, K: BroadcastGkm> SharedPublisherService<G, K> {
    /// Wraps an exclusive service for concurrent serving. The
    /// concurrent-path seed source is drawn from the wrapped service's own
    /// RNG, so the caller-chosen service seed governs every CSS the
    /// concurrent path issues too — never a hardcoded constant.
    pub fn new(mut service: PublisherService<G, K>) -> Self {
        let seed = service.rng.next_u64();
        let telemetry = service.telemetry.clone();
        static SERIAL: AtomicU64 = AtomicU64::new(0);
        Self {
            inner: Mutex::new(service),
            registrar: RwLock::new(None),
            conditions: ConditionsSnapshot::new(),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            serial: SERIAL.fetch_add(1, Ordering::Relaxed),
            rng_epoch: AtomicU64::new(0),
            telemetry,
        }
    }

    /// Reseeds both the inner service RNG and the concurrent-path seed
    /// source, and eagerly (re)builds the conditions snapshot and the
    /// registrar so the first requests already take the fast paths.
    pub fn reseed(&self, seed: u64) {
        let mut service = self.lock_inner();
        service.reseed(seed);
        *self
            .rng
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) =
            StdRng::seed_from_u64(seed.wrapping_add(1));
        self.rng_epoch.fetch_add(1, Ordering::Release);
        if let Some(bytes) = service.encode_conditions() {
            self.conditions.set(bytes);
        }
        *self
            .registrar
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) =
            Some(Arc::new(service.publisher().registrar()));
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, PublisherService<G, K>> {
        self.inner.lock().expect("publisher service poisoned")
    }

    /// Handles one request; total, never panics on hostile bytes, and safe
    /// to call from any number of threads at once.
    pub fn handle(&self, request: &[u8]) -> Vec<u8> {
        // Fast path 1: the full conditions query, served lock-free from
        // the snapshot (counted in `conditions_cache_hits`, not
        // `requests` — it never touches the service).
        if proto::is_full_conditions_query(request) {
            if let Some(bytes) = self.conditions.get() {
                return bytes.as_ref().clone();
            }
            // Miss: compute *and repopulate* under the service lock, so a
            // concurrent `with_publisher_mut` (which invalidates while
            // holding the same lock) cannot interleave between the two and
            // leave stale pre-mutation bytes installed.
            let mut service = self.lock_inner();
            let response = service.handle(request);
            if !proto::is_error_response(&response) {
                self.conditions.set(response.clone());
            }
            return response;
        }
        // Fast path 2: registration through the shared registrar — the
        // stateful hot path, no service mutex. Booked into the same
        // registry handles the exclusive path uses.
        if proto::is_register_request(request) {
            let start = Instant::now();
            let registrar = self.registrar_handle();
            let response = self.with_request_rng(|rng| dispatch_register(&registrar, request, rng));
            self.telemetry.requests.inc();
            self.telemetry.record(request, &response, start);
            return response;
        }
        // Stats query: refresh the snapshot-hit gauge (the one counter
        // living outside the registry), then render via the exclusive
        // service — the registry is shared, so the exposition covers both
        // request paths.
        if proto::is_stats_query(request) {
            self.telemetry.snapshot_hits.set(self.conditions.hits());
            return self.lock_inner().handle(request);
        }
        // Everything else (filtered conditions queries, unsupported kinds,
        // garbage): the exclusive path, which counts its own stats.
        self.lock_inner().handle(request)
    }

    /// Runs `f` with this thread's cached registration RNG, seeding it
    /// from the shared seed source on first use (and again after every
    /// [`Self::reseed`], which bumps the epoch). Steady-state concurrent
    /// registrations therefore touch no lock and construct no RNG — the
    /// two per-request constants the serialized path never paid.
    fn with_request_rng<T>(&self, f: impl FnOnce(&mut StdRng) -> T) -> T {
        thread_local! {
            /// One cached `(service serial, reseed epoch, rng)` slot per
            /// thread; a thread bouncing between services reseeds on each
            /// switch, which is correct just slower.
            static REG_RNG: std::cell::RefCell<Option<(u64, u64, StdRng)>> =
                const { std::cell::RefCell::new(None) };
        }
        let epoch = self.rng_epoch.load(Ordering::Acquire);
        REG_RNG.with(|slot| {
            let mut slot = slot.borrow_mut();
            let stale = !matches!(&*slot, Some((s, e, _)) if *s == self.serial && *e == epoch);
            if stale {
                let seed = self
                    .rng
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .next_u64();
                *slot = Some((self.serial, epoch, StdRng::seed_from_u64(seed)));
            }
            let (_, _, rng) = slot.as_mut().expect("slot just populated");
            f(rng)
        })
    }

    /// The current registrar, rebuilt under the service lock on staleness.
    fn registrar_handle(&self) -> Arc<Registrar<G>> {
        if let Some(r) = self
            .registrar
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
        {
            return Arc::clone(r);
        }
        // Lock order everywhere: inner service, then registrar slot — the
        // same order `with_publisher_mut` takes for invalidation, so a
        // mutation either completes before the rebuild (we capture fresh
        // material) or waits for it (and invalidates what we installed).
        let service = self.lock_inner();
        let mut slot = self
            .registrar
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(r) = slot.as_ref() {
            return Arc::clone(r);
        }
        let rebuilt = Arc::new(service.publisher().registrar());
        *slot = Some(Arc::clone(&rebuilt));
        rebuilt
    }

    /// Runs `f` against the wrapped publisher (policy inspection, audits).
    pub fn with_publisher<T>(&self, f: impl FnOnce(&Publisher<G, K>) -> T) -> T {
        f(self.lock_inner().publisher())
    }

    /// Runs `f` against the wrapped publisher mutably (revocation, policy
    /// edits). Invalidates the conditions snapshot **and** the registrar
    /// while the service lock is held — an arbitrary mutation may change
    /// the policy/OCBE material both depend on; each rebuilds lazily.
    pub fn with_publisher_mut<T>(&self, f: impl FnOnce(&mut Publisher<G, K>) -> T) -> T {
        let mut service = self.lock_inner();
        let out = f(service.publisher_mut());
        self.conditions.invalidate();
        *self
            .registrar
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        drop(service);
        out
    }

    /// Exclusive publisher access *without* snapshot/registrar
    /// invalidation — solely for broadcast, which bumps the epoch and
    /// rekeys but cannot change the conditions or registration material.
    pub(crate) fn with_publisher_broadcast<T>(
        &self,
        f: impl FnOnce(&mut Publisher<G, K>) -> T,
    ) -> T {
        let mut service = self.lock_inner();
        f(service.publisher_mut())
    }

    /// Aggregated traffic counters: both request paths book into one
    /// shared registry, so this is a plain read — no service lock.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.telemetry.requests.get(),
            registrations: self.telemetry.registrations.get(),
            errors: self.telemetry.errors.get(),
            conditions_cache_hits: self.conditions.hits(),
        }
    }

    /// Full metrics snapshot over both request paths (see
    /// [`PublisherService::metrics`]).
    pub fn metrics(&self) -> Snapshot {
        self.telemetry.snapshot_hits.set(self.conditions.hits());
        self.telemetry.snapshot()
    }

    /// Full conditions queries served straight from the snapshot.
    pub fn conditions_cache_hits(&self) -> u64 {
        self.conditions.hits()
    }

    /// Unwraps the exclusive service (fails if handler threads still hold
    /// clones of the `Arc` this is typically wrapped in — callers go
    /// through `Arc::try_unwrap` first).
    pub fn into_service(self) -> PublisherService<G, K> {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The concurrent registration dispatcher: decode, register through the
/// shared [`Registrar`], encode — with exactly [`dispatch`]'s error
/// surface, so the wire behaviour is independent of which path served a
/// request.
fn dispatch_register<G: CyclicGroup, R: RngCore + ?Sized>(
    registrar: &Registrar<G>,
    request: &[u8],
    rng: &mut R,
) -> Vec<u8> {
    let group = registrar.ocbe().group().clone();
    let req = match Request::decode(&group, request) {
        Ok(r) => r,
        Err(e) => return error_bytes(&group, ErrorCode::Malformed, &e.to_string()),
    };
    let resp = match req {
        Request::Register(r) => match registrar.register(&r.token, &r.cond, &r.proof, rng) {
            Ok(envelope) => Response::Register(RegisterResponse { envelope }),
            Err(e) => return error_bytes(&group, code_for(&e), &e.to_string()),
        },
        Request::RegisterBatch(items) => {
            let items: Vec<_> = items
                .into_iter()
                .map(|r| (r.token, r.cond, r.proof))
                .collect();
            Response::RegisterBatch(
                registrar
                    .register_batch(&items, rng)
                    .into_iter()
                    .map(|r| match r {
                        Ok(envelope) => Ok(RegisterResponse { envelope }),
                        Err(e) => Err(error_item(&e)),
                    })
                    .collect(),
            )
        }
        // Unreachable behind `is_register_request`, but keep the function
        // total on its own terms.
        _ => {
            return error_bytes(
                &group,
                ErrorCode::Unsupported,
                "concurrent path serves registrations only",
            )
        }
    };
    resp.encode(&group)
        .unwrap_or_else(|e| error_bytes(&group, ErrorCode::Internal, &e.to_string()))
}

/// A subject-authentication hook for [`IssuerService`]: given an incoming
/// [`proto::IssueRequest`], decide whether this deployment's identity
/// provider actually vouches for `(subject, attribute, value)`.
pub type IssueVerifier = Box<dyn FnMut(&proto::IssueRequest) -> bool + Send>;

/// The issuance endpoint (paper §V-A): the IdP + IdMgr pair behind one
/// bytes-in/bytes-out handler. Subscribers send [`proto::IssueRequest`]s
/// and receive signed tokens plus their private openings. The issuer
/// legitimately learns attribute values — it is the party committing to
/// them; the publisher never sees this exchange.
///
/// **Trust caveat:** the protocol message carries a *claimed*
/// `(subject, attribute, value)`; the paper's IdP certifies attributes it
/// has verified out of band (an employer's HR system, a DMV, …). A service
/// built with [`Self::new`] trusts every claim — acceptable only on an
/// authenticated channel to already-vetted subjects (as in the examples
/// and tests here, where the harness plays every role). Real deployments
/// must install an [`IssueVerifier`] via [`Self::with_verifier`] — a
/// rejected claim gets a typed [`ErrorCode::BadToken`] response, and a
/// network peer can then no longer mint qualifying tokens (or tokens
/// bound to someone else's nym) by just asking.
pub struct IssuerService<G: CyclicGroup> {
    idp: IdentityProvider<G>,
    idmgr: IdentityManager<G>,
    rng: StdRng,
    verifier: Option<IssueVerifier>,
}

impl<G: CyclicGroup> IssuerService<G> {
    /// Wraps an IdP/IdMgr pair that vouches for every claim it receives —
    /// see the trust caveat on the type.
    pub fn new(idp: IdentityProvider<G>, idmgr: IdentityManager<G>, seed: u64) -> Self {
        idmgr.pedersen().group().warm_up();
        Self {
            idp,
            idmgr,
            rng: StdRng::seed_from_u64(seed),
            verifier: None,
        }
    }

    /// Like [`Self::new`], but every issuance claim must pass `verifier`
    /// first; rejected claims get a typed [`ErrorCode::BadToken`] response.
    pub fn with_verifier(
        idp: IdentityProvider<G>,
        idmgr: IdentityManager<G>,
        seed: u64,
        verifier: impl FnMut(&proto::IssueRequest) -> bool + Send + 'static,
    ) -> Self {
        idmgr.pedersen().group().warm_up();
        Self {
            idp,
            idmgr,
            rng: StdRng::seed_from_u64(seed),
            verifier: Some(Box::new(verifier)),
        }
    }

    /// Handles one request; total, never panics on hostile bytes.
    pub fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        let group = self.idmgr.pedersen().group().clone();
        let req = match Request::decode(&group, request) {
            Ok(r) => r,
            Err(e) => return error_bytes(&group, ErrorCode::Malformed, &e.to_string()),
        };
        let resp = match req {
            Request::Issue(r) => {
                if let Some(verifier) = &mut self.verifier {
                    if !verifier(&r) {
                        return error_bytes(
                            &group,
                            ErrorCode::BadToken,
                            "the identity provider does not vouch for this claim",
                        );
                    }
                }
                let assertion =
                    self.idp
                        .assert_attribute(&r.subject, &r.attribute, r.value, &mut self.rng);
                match self
                    .idmgr
                    .issue_token(&assertion, &self.idp.verifying_key(), &mut self.rng)
                {
                    Ok((token, opening)) => Response::Issue(IssueResponse { token, opening }),
                    Err(e) => return error_bytes(&group, code_for(&e), &e.to_string()),
                }
            }
            Request::IssueBatch(items) => {
                Response::IssueBatch(items.iter().map(|r| self.issue_one(r)).collect())
            }
            Request::ConditionsQuery { .. }
            | Request::Register(_)
            | Request::RegisterBatch(_)
            | Request::Stats => {
                return error_bytes(
                    &group,
                    ErrorCode::Unsupported,
                    "the issuer only serves token issuance",
                )
            }
        };
        resp.encode(&group)
            .unwrap_or_else(|e| error_bytes(&group, ErrorCode::Internal, &e.to_string()))
    }

    /// One issuance as a batch item: the same verifier gate and error
    /// codes as the single-request path, but failures stay per-item so
    /// one rejected claim cannot sink its cohort.
    fn issue_one(&mut self, r: &proto::IssueRequest) -> Result<IssueResponse<G>, ErrorResponse> {
        if let Some(verifier) = &mut self.verifier {
            if !verifier(r) {
                return Err(ErrorResponse {
                    code: ErrorCode::BadToken,
                    message: "the identity provider does not vouch for this claim".to_string(),
                });
            }
        }
        let assertion = self
            .idp
            .assert_attribute(&r.subject, &r.attribute, r.value, &mut self.rng);
        self.idmgr
            .issue_token(&assertion, &self.idp.verifying_key(), &mut self.rng)
            .map(|(token, opening)| IssueResponse { token, opening })
            .map_err(|e| error_item(&e))
    }

    /// The identity manager (e.g. for its verifying key, which publishers
    /// need at setup).
    pub fn idmgr(&self) -> &IdentityManager<G> {
        &self.idmgr
    }
}
