//! A full-system harness wiring IdP → IdMgr → Publisher → Subscribers,
//! used by the examples, the integration tests and the benchmark driver.
//!
//! The harness performs the complete privacy-preserving flow: assertion
//! issuance, token issuance, registration for **every** condition whose
//! attribute matches a held token (the paper's recommended
//! inference-resistant behaviour), and broadcast decryption.
//!
//! Registration runs through the byte-level [`crate::proto`] protocol —
//! the subscriber side builds its own `OcbeSystem` from the parameters in
//! the publisher's `Conditions` response and exchanges encoded messages
//! with [`crate::service::dispatch`], so the in-process flow exercises the
//! very same code path as a socket deployment.

use crate::idmgr::IdentityManager;
use crate::idp::IdentityProvider;
use crate::proto::{Request, Response};
use crate::publisher::{Publisher, PublisherConfig};
use crate::service;
use crate::session::RegistrationSession;
use crate::subscriber::Subscriber;
use pbcd_gkm::{AcvBgkm, BroadcastGkm};
use pbcd_group::CyclicGroup;
use pbcd_group::P256Group;
use pbcd_policy::{AttributeSet, PolicySet};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The assembled system, generic over the group backend and (like
/// [`Publisher`]/[`Subscriber`]) over the broadcast GKM scheme.
pub struct SystemHarness<G: CyclicGroup, K: BroadcastGkm = AcvBgkm> {
    /// The (single, for simplicity) identity provider.
    pub idp: IdentityProvider<G>,
    /// The identity manager.
    pub idmgr: IdentityManager<G>,
    /// The publisher.
    pub publisher: Publisher<G, K>,
    /// Deterministic randomness for reproducible runs.
    pub rng: StdRng,
}

impl SystemHarness<P256Group> {
    /// Builds a P-256-backed system with the default publisher config.
    pub fn new_p256(policies: PolicySet, seed: u64) -> Self {
        Self::new(P256Group::new(), policies, PublisherConfig::default(), seed)
    }
}

impl<G: CyclicGroup> SystemHarness<G> {
    /// Builds an ACV-BGKM system over any group backend.
    pub fn new(group: G, policies: PolicySet, config: PublisherConfig, seed: u64) -> Self {
        Self::new_with_gkm(group, policies, config, AcvBgkm::default(), seed)
    }
}

impl<G: CyclicGroup, K: BroadcastGkm> SystemHarness<G, K> {
    /// Builds a system over any group backend and any GKM scheme.
    pub fn new_with_gkm(
        group: G,
        policies: PolicySet,
        config: PublisherConfig,
        gkm: K,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let idp = IdentityProvider::new(group.clone(), "idp", &mut rng);
        let idmgr = IdentityManager::new(group.clone(), &mut rng);
        let publisher = Publisher::with_gkm(group, idmgr.verifying_key(), policies, config, gkm);
        Self {
            idp,
            idmgr,
            publisher,
            rng,
        }
    }

    /// Issues identity tokens for every attribute of `attrs` and returns
    /// the subscriber holding them (not yet registered).
    pub fn onboard(&mut self, subject: &str, attrs: AttributeSet) -> Subscriber<G, K> {
        let mut sub = Subscriber::with_gkm(attrs.clone(), self.publisher.gkm().clone());
        for (name, value) in attrs.iter() {
            let assertion = self
                .idp
                .assert_attribute(subject, name, value, &mut self.rng);
            let (token, opening) = self
                .idmgr
                .issue_token(&assertion, &self.idp.verifying_key(), &mut self.rng)
                .expect("harness assertions are honest");
            sub.install_token(token, opening)
                .expect("one IdMgr, one nym per subject");
        }
        sub
    }

    /// Runs the full oblivious registration **through the byte-level
    /// protocol**: the subscriber queries the publisher's conditions, then
    /// registers for every condition whose attribute matches a held token.
    /// Every leg is an encoded [`crate::proto`] message handed to
    /// [`crate::service::dispatch`] — no `OcbeSystem` handle crosses the
    /// actor boundary. Returns how many CSSs the subscriber extracted
    /// (information the publisher never has).
    pub fn register_all(&mut self, sub: &mut Subscriber<G, K>) -> usize {
        let group = self.publisher.ocbe().group().clone();
        let query = Request::<G>::ConditionsQuery { attribute: None }
            .encode(&group)
            .expect("query encodes");
        let reply = service::dispatch(&mut self.publisher, &query, &mut self.rng);
        let Ok(Response::Conditions(info)) = Response::decode(&group, &reply) else {
            panic!("publisher answered the conditions query with an error");
        };
        let mut extracted = 0;
        for cond in &info.conditions {
            if sub.token_for(&cond.attribute).is_none() {
                continue;
            }
            let session = RegistrationSession::new(sub, group.clone(), info.ell);
            let (request, pending) = session
                .start(cond, &mut self.rng)
                .expect("token presence checked above");
            let response = service::dispatch(&mut self.publisher, &request, &mut self.rng);
            if pending
                .complete(&response)
                .expect("harness registrations are well-formed")
            {
                extracted += 1;
            }
        }
        extracted
    }

    /// Onboards and fully registers a subscriber in one call.
    pub fn subscribe(&mut self, subject: &str, attrs: AttributeSet) -> Subscriber<G, K> {
        let mut sub = self.onboard(subject, attrs);
        self.register_all(&mut sub);
        sub
    }

    /// Onboards with genuine attributes plus §VI-A **decoy tokens** for
    /// `decoy_attributes` the subject does not hold, then registers for
    /// everything — the strongest privacy posture: the publisher cannot
    /// even tell which attributes the subscriber possesses.
    pub fn subscribe_with_decoys(
        &mut self,
        subject: &str,
        attrs: AttributeSet,
        decoy_attributes: &[&str],
    ) -> Subscriber<G, K> {
        let mut sub = self.onboard(subject, attrs);
        for attr in decoy_attributes {
            let (token, opening) = self.idmgr.issue_decoy_token(subject, attr, &mut self.rng);
            sub.install_decoy_token(token, opening, crate::idmgr::decoy_value())
                .expect("decoy tokens carry the subject's own nym");
        }
        self.register_all(&mut sub);
        sub
    }
}
