//! A full-system harness wiring IdP → IdMgr → Publisher → Subscribers,
//! used by the examples, the integration tests and the benchmark driver.
//!
//! The harness performs the complete privacy-preserving flow: assertion
//! issuance, token issuance, registration for **every** condition whose
//! attribute matches a held token (the paper's recommended
//! inference-resistant behaviour), and broadcast decryption.

use crate::idmgr::IdentityManager;
use crate::idp::IdentityProvider;
use crate::publisher::{Publisher, PublisherConfig};
use crate::subscriber::Subscriber;
use pbcd_gkm::{AcvBgkm, BroadcastGkm};
use pbcd_group::CyclicGroup;
use pbcd_group::P256Group;
use pbcd_policy::{AttributeSet, PolicySet};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The assembled system, generic over the group backend and (like
/// [`Publisher`]/[`Subscriber`]) over the broadcast GKM scheme.
pub struct SystemHarness<G: CyclicGroup, K: BroadcastGkm = AcvBgkm> {
    /// The (single, for simplicity) identity provider.
    pub idp: IdentityProvider<G>,
    /// The identity manager.
    pub idmgr: IdentityManager<G>,
    /// The publisher.
    pub publisher: Publisher<G, K>,
    /// Deterministic randomness for reproducible runs.
    pub rng: StdRng,
}

impl SystemHarness<P256Group> {
    /// Builds a P-256-backed system with the default publisher config.
    pub fn new_p256(policies: PolicySet, seed: u64) -> Self {
        Self::new(P256Group::new(), policies, PublisherConfig::default(), seed)
    }
}

impl<G: CyclicGroup> SystemHarness<G> {
    /// Builds an ACV-BGKM system over any group backend.
    pub fn new(group: G, policies: PolicySet, config: PublisherConfig, seed: u64) -> Self {
        Self::new_with_gkm(group, policies, config, AcvBgkm::default(), seed)
    }
}

impl<G: CyclicGroup, K: BroadcastGkm> SystemHarness<G, K> {
    /// Builds a system over any group backend and any GKM scheme.
    pub fn new_with_gkm(
        group: G,
        policies: PolicySet,
        config: PublisherConfig,
        gkm: K,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let idp = IdentityProvider::new(group.clone(), "idp", &mut rng);
        let idmgr = IdentityManager::new(group.clone(), &mut rng);
        let publisher = Publisher::with_gkm(group, idmgr.verifying_key(), policies, config, gkm);
        Self {
            idp,
            idmgr,
            publisher,
            rng,
        }
    }

    /// Issues identity tokens for every attribute of `attrs` and returns
    /// the subscriber holding them (not yet registered).
    pub fn onboard(&mut self, subject: &str, attrs: AttributeSet) -> Subscriber<G, K> {
        let mut sub = Subscriber::with_gkm(attrs.clone(), self.publisher.gkm().clone());
        for (name, value) in attrs.iter() {
            let assertion = self
                .idp
                .assert_attribute(subject, name, value, &mut self.rng);
            let (token, opening) = self
                .idmgr
                .issue_token(&assertion, &self.idp.verifying_key(), &mut self.rng)
                .expect("harness assertions are honest");
            sub.install_token(token, opening);
        }
        sub
    }

    /// Runs the full oblivious registration: for every token the
    /// subscriber holds, register for **all** conditions naming that
    /// attribute. Returns how many CSSs the subscriber extracted
    /// (information the publisher never has).
    pub fn register_all(&mut self, sub: &mut Subscriber<G, K>) -> usize {
        let mut extracted = 0;
        let tags: Vec<String> = sub
            .attributes()
            .iter()
            .map(|(n, _)| n.to_string())
            .collect();
        for tag in tags {
            for cond in self.publisher.conditions_for_attribute(&tag) {
                let Some(token) = sub.token_for(&tag).cloned() else {
                    continue;
                };
                let (proof, secrets) = sub
                    .prepare_registration(self.publisher.ocbe(), &cond, &mut self.rng)
                    .expect("token present");
                let envelope = self
                    .publisher
                    .register(&token, &cond, &proof, &mut self.rng)
                    .expect("registration accepted");
                if sub.complete_registration(self.publisher.ocbe(), &cond, &envelope, &secrets) {
                    extracted += 1;
                }
            }
        }
        extracted
    }

    /// Onboards and fully registers a subscriber in one call.
    pub fn subscribe(&mut self, subject: &str, attrs: AttributeSet) -> Subscriber<G, K> {
        let mut sub = self.onboard(subject, attrs);
        self.register_all(&mut sub);
        sub
    }

    /// Onboards with genuine attributes plus §VI-A **decoy tokens** for
    /// `decoy_attributes` the subject does not hold, then registers for
    /// everything — the strongest privacy posture: the publisher cannot
    /// even tell which attributes the subscriber possesses.
    pub fn subscribe_with_decoys(
        &mut self,
        subject: &str,
        attrs: AttributeSet,
        decoy_attributes: &[&str],
    ) -> Subscriber<G, K> {
        let mut sub = self.onboard(subject, attrs);
        for attr in decoy_attributes {
            let (token, opening) = self.idmgr.issue_decoy_token(subject, attr, &mut self.rng);
            sub.install_decoy_token(token, opening, crate::idmgr::decoy_value());
        }
        self.register_all(&mut sub);
        sub
    }
}
