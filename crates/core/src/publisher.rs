//! The Publisher (paper §III, §V): policy owner, registration endpoint and
//! broadcast source.
//!
//! Holds the policy set `ACPB`, the CSS table `T` and the ACV-BGKM
//! instance. Registration delivers CSSs obliviously (OCBE); broadcasting
//! segments a document by policy configuration, rekeys every configuration
//! (fresh `K`, `X`, `z` values — the paper's transparent rekey) and emits a
//! single [`BroadcastContainer`].

use crate::error::PbcdError;
use crate::token::IdentityToken;
use pbcd_crypto::AuthKey;
use pbcd_docs::{segment, BroadcastContainer, Element, EncryptedGroup, EncryptedSegment};
use pbcd_gkm::{AccessRow, AcvBgkm, BroadcastGkm, CssTable, Nym, ShardedCssTable};
use pbcd_group::{verify_batch, CyclicGroup, Signature, VerifyingKey};
use pbcd_ocbe::{Envelope, OcbeSystem, ProofMessage};
use pbcd_policy::{AttributeCondition, PolicyConfiguration, PolicySet};
use rand::{RngCore, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Publisher configuration knobs.
#[derive(Clone, Debug)]
pub struct PublisherConfig {
    /// Attribute bit width ℓ for OCBE (default 48: wide enough for the
    /// string-encoded attribute space).
    pub ell: u32,
    /// CSS width κ in bits (default 128).
    pub kappa_bits: u32,
    /// Rekey/encrypt policy configurations on parallel threads.
    pub parallel_broadcast: bool,
}

impl Default for PublisherConfig {
    fn default() -> Self {
        Self {
            ell: 48,
            kappa_bits: 128,
            parallel_broadcast: false,
        }
    }
}

/// The Publisher, generic over the broadcast GKM scheme (default: the
/// paper's ACV-BGKM). Any [`BroadcastGkm`] implementation — marker,
/// secure-lock, sharded ACV — slots in without touching the registration
/// or segmentation logic.
pub struct Publisher<G: CyclicGroup, K: BroadcastGkm = AcvBgkm> {
    ocbe: OcbeSystem<G>,
    idmgr_key: VerifyingKey<G>,
    policies: PolicySet,
    /// The CSS table `T`, sharded and shared: registration handlers hold
    /// their own [`Arc`] (via [`Publisher::registrar`]) and issue CSSs
    /// concurrently without going through the publisher at all.
    table: Arc<ShardedCssTable>,
    gkm: K,
    epoch: u64,
    config: PublisherConfig,
}

impl<G: CyclicGroup> Publisher<G> {
    /// Creates an ACV-BGKM publisher trusting tokens signed by `idmgr_key`.
    pub fn new(group: G, idmgr_key: VerifyingKey<G>, policies: PolicySet) -> Self {
        Self::with_config(group, idmgr_key, policies, PublisherConfig::default())
    }

    /// Creates an ACV-BGKM publisher with explicit configuration.
    pub fn with_config(
        group: G,
        idmgr_key: VerifyingKey<G>,
        policies: PolicySet,
        config: PublisherConfig,
    ) -> Self {
        Self::with_gkm(group, idmgr_key, policies, config, AcvBgkm::default())
    }
}

impl<G: CyclicGroup, K: BroadcastGkm> Publisher<G, K> {
    /// Creates a publisher over an explicit GKM scheme. Warms the group's
    /// fixed-base tables eagerly, so the first registration request served
    /// by this publisher does not pay comb-construction latency.
    pub fn with_gkm(
        group: G,
        idmgr_key: VerifyingKey<G>,
        policies: PolicySet,
        config: PublisherConfig,
        gkm: K,
    ) -> Self {
        group.warm_up();
        Self {
            ocbe: OcbeSystem::new(group, config.ell),
            idmgr_key,
            policies,
            table: Arc::new(ShardedCssTable::new(config.kappa_bits)),
            gkm,
            epoch: 0,
            config,
        }
    }

    /// The public policy set (policies are not secret; values inside
    /// subscriber attributes are).
    pub fn policies(&self) -> &PolicySet {
        &self.policies
    }

    /// Mutable access to the policy set (dynamic policy updates). Changes
    /// take effect on the next broadcast; layers that cache
    /// policy-derived material (the conditions snapshot, the concurrent
    /// registrar) invalidate it through their `with_publisher_mut`
    /// gateways, which is the only route network deployments expose.
    pub fn policies_mut(&mut self) -> &mut PolicySet {
        &mut self.policies
    }

    /// The OCBE deployment parameters (shared with subscribers).
    pub fn ocbe(&self) -> &OcbeSystem<G> {
        &self.ocbe
    }

    /// The GKM scheme parameters (shared with subscribers).
    pub fn gkm(&self) -> &K {
        &self.gkm
    }

    /// Current rekey epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A point-in-time copy of the CSS table (exposed for audits and the
    /// Table-I example). The live table is sharded and shared — see
    /// [`Self::shared_css_table`].
    pub fn css_table(&self) -> CssTable {
        self.table.snapshot()
    }

    /// The live, sharded CSS table. Registration handlers write to it
    /// through their own [`Arc`]; broadcast reads it shard by shard.
    pub fn shared_css_table(&self) -> &Arc<ShardedCssTable> {
        &self.table
    }

    /// A read-mostly handle carrying everything registration needs — the
    /// OCBE system, the IdMgr verification key, the current condition set
    /// and an [`Arc`] of the CSS table — detached from the publisher, so
    /// any number of handler threads can serve [`Registrar::register`]
    /// concurrently while the publisher broadcasts. The condition snapshot
    /// goes stale on policy mutation: rebuild the registrar whenever the
    /// publisher is mutated (the same discipline as the conditions-response
    /// snapshot in [`crate::service`]).
    pub fn registrar(&self) -> Registrar<G> {
        Registrar {
            ocbe: self.ocbe.clone(),
            idmgr_key: self.idmgr_key.clone(),
            conditions: self.policies.distinct_conditions(),
            table: Arc::clone(&self.table),
        }
    }

    /// The distinct conditions that mention `attribute` — what a subscriber
    /// holding a token with that id-tag registers for.
    pub fn conditions_for_attribute(&self, attribute: &str) -> Vec<AttributeCondition> {
        self.policies.conditions_on_attribute(attribute)
    }

    /// Registration (paper §V-B): verifies the token, generates a fresh
    /// CSS for `(nym, cond)`, records it in `T`, and returns the OCBE
    /// envelope that delivers the CSS iff the committed value satisfies
    /// the condition. The publisher never learns whether it did.
    pub fn register<R: RngCore + ?Sized>(
        &mut self,
        token: &IdentityToken<G>,
        cond: &AttributeCondition,
        proof: &ProofMessage<G>,
        rng: &mut R,
    ) -> Result<Envelope<G>, PbcdError> {
        register_inner(
            &self.ocbe,
            &self.idmgr_key,
            &self.policies.distinct_conditions(),
            &self.table,
            token,
            cond,
            proof,
            rng,
        )
    }

    /// Cohort registration: like [`Self::register`] for every item of the
    /// batch, but token authentication costs **one** batched Schnorr check
    /// for the whole cohort instead of one double exponentiation per item.
    /// Outcomes are per item: a bad item costs only itself.
    pub fn register_batch<R: RngCore + ?Sized>(
        &mut self,
        items: &[(IdentityToken<G>, AttributeCondition, ProofMessage<G>)],
        rng: &mut R,
    ) -> Vec<Result<Envelope<G>, PbcdError>> {
        register_batch_inner(
            &self.ocbe,
            &self.idmgr_key,
            &self.policies.distinct_conditions(),
            &self.table,
            items,
            rng,
        )
    }

    /// Credential revocation: deletes one `(nym, cond)` record. The next
    /// broadcast rekeys everything, cutting the subscriber off from
    /// configurations that required the credential.
    pub fn revoke_credential(&mut self, nym: &str, cond: &AttributeCondition) -> bool {
        self.table.remove_credential(&Nym::new(nym), cond)
    }

    // (revocations keep `&mut self` although the sharded table would allow
    // `&self`: mutating publisher state through a shared reference would
    // silently bypass the snapshot-invalidation gateways built on top.)

    /// Subscription revocation: deletes a subscriber's whole row.
    pub fn revoke_subscriber(&mut self, nym: &str) -> bool {
        self.table.remove_subscriber(&Nym::new(nym))
    }

    /// The access rows for one policy configuration: one row per
    /// `(acp_k, nym ∈ U_k)` as in §V-C.
    fn access_rows(&self, pc: &PolicyConfiguration) -> Vec<AccessRow> {
        let mut rows = Vec::new();
        for acp_id in pc.acp_ids() {
            let Some(acp) = self.policies.get(acp_id) else {
                continue;
            };
            for nym in self.table.nyms_with_all(&acp.conditions) {
                // A concurrent credential revocation between the two shard
                // reads can legitimately remove coverage; skip the row —
                // the next broadcast (a full rekey) settles it either way.
                let Some(css_concat) = self.table.css_concat(&nym, &acp.conditions) else {
                    continue;
                };
                rows.push(AccessRow {
                    nym: nym.as_str().to_string(),
                    css_concat,
                });
            }
        }
        rows
    }

    /// Broadcast (paper §V-C "Document Broadcasting"): segments `doc` along
    /// policy objects, groups segments by policy configuration, rekeys each
    /// configuration and encrypts. Every broadcast is a fresh rekey —
    /// joins and revocations since the last broadcast take effect here with
    /// no message to any subscriber.
    pub fn broadcast<R: RngCore + ?Sized>(
        &mut self,
        doc: &Element,
        doc_name: &str,
        rng: &mut R,
    ) -> BroadcastContainer {
        self.epoch += 1;
        // Segment along every object named by any policy for this document.
        let tags: Vec<&str> = {
            let mut t: Vec<&str> = self
                .policies
                .iter()
                .filter(|(_, p)| p.document == doc_name)
                .flat_map(|(_, p)| p.objects.iter().map(String::as_str))
                .collect();
            t.sort_unstable();
            t.dedup();
            t
        };
        let segmented = segment(doc, doc_name, &tags);

        // Group segment ids by policy configuration.
        let mut by_config: BTreeMap<PolicyConfiguration, Vec<&pbcd_docs::Segment>> =
            BTreeMap::new();
        for seg in &segmented.segments {
            by_config
                .entry(self.policies.configuration_of(&seg.tag))
                .or_default()
                .push(seg);
        }

        let jobs: Vec<(u32, PolicyConfiguration, Vec<&pbcd_docs::Segment>)> = by_config
            .into_iter()
            .enumerate()
            .map(|(i, (pc, segs))| (i as u32, pc, segs))
            .collect();

        let groups = if self.config.parallel_broadcast {
            self.encrypt_groups_parallel(&jobs, rng)
        } else {
            jobs.iter()
                .map(|(id, pc, segs)| self.encrypt_group(*id, pc, segs, rng))
                .collect()
        };

        BroadcastContainer {
            epoch: self.epoch,
            document_name: doc_name.to_string(),
            skeleton_xml: segmented.skeleton.to_xml(),
            groups,
        }
    }

    fn encrypt_group<R: RngCore + ?Sized>(
        &self,
        config_id: u32,
        pc: &PolicyConfiguration,
        segs: &[&pbcd_docs::Segment],
        rng: &mut R,
    ) -> EncryptedGroup {
        // Empty configuration: nobody may read — encrypt under a throwaway
        // key and publish no key material (paper: "without the need of
        // publishing X or zi").
        let (key_bytes, key_info) = if pc.is_empty() {
            let mut k = vec![0u8; 32];
            rng.fill_bytes(&mut k);
            (k, Vec::new())
        } else {
            let rows = self.access_rows(pc);
            let (k, info) = self.gkm.rekey(&rows, rng);
            (k, self.gkm.encode_info(&info))
        };
        let key = AuthKey::from_master(&key_bytes);
        let segments = segs
            .iter()
            .map(|seg| EncryptedSegment {
                segment_id: seg.id,
                tag: seg.tag.clone(),
                ciphertext: key.encrypt(rng, seg.content.to_xml().as_bytes()),
            })
            .collect();
        EncryptedGroup {
            config_id,
            key_info,
            segments,
        }
    }

    /// Parallel per-configuration rekey: the paper notes "computations
    /// related to different subdocuments are independent … and thus can be
    /// performed in parallel" (§VII).
    fn encrypt_groups_parallel<R: RngCore + ?Sized>(
        &self,
        jobs: &[(u32, PolicyConfiguration, Vec<&pbcd_docs::Segment>)],
        rng: &mut R,
    ) -> Vec<EncryptedGroup> {
        // One independently seeded RNG per job, derived from the caller's.
        let seeds: Vec<u64> = jobs.iter().map(|_| rng.next_u64()).collect();
        let results = std::sync::Mutex::new(vec![None; jobs.len()]);
        std::thread::scope(|scope| {
            for (idx, ((id, pc, segs), seed)) in jobs.iter().zip(&seeds).enumerate() {
                let results = &results;
                scope.spawn(move || {
                    let mut job_rng = rand::rngs::StdRng::seed_from_u64(*seed);
                    let group = self.encrypt_group(*id, pc, segs, &mut job_rng);
                    results.lock().expect("broadcast worker panicked")[idx] = Some(group);
                });
            }
        });
        results
            .into_inner()
            .expect("broadcast worker panicked")
            .into_iter()
            .map(|g| g.expect("every job completed"))
            .collect()
    }
}

/// The registration half of a [`Publisher`], detached for concurrency:
/// token verification, condition lookup and OCBE envelope composition are
/// read-only against materials captured at build time, and CSS issuance
/// goes through the shared sharded table — so `register` takes `&self`
/// and any number of threads can serve registrations at once, each
/// contending only for its subscriber's table shard.
///
/// Obtain via [`Publisher::registrar`]; rebuild after any publisher
/// mutation (the captured condition list is a snapshot).
pub struct Registrar<G: CyclicGroup> {
    pub(crate) ocbe: OcbeSystem<G>,
    pub(crate) idmgr_key: VerifyingKey<G>,
    pub(crate) conditions: Vec<AttributeCondition>,
    pub(crate) table: Arc<ShardedCssTable>,
}

impl<G: CyclicGroup> Registrar<G> {
    /// The OCBE deployment parameters (for decoding requests and encoding
    /// responses).
    pub fn ocbe(&self) -> &OcbeSystem<G> {
        &self.ocbe
    }

    /// Registration, identical in behaviour to [`Publisher::register`] but
    /// callable from concurrent handler threads.
    pub fn register<R: RngCore + ?Sized>(
        &self,
        token: &IdentityToken<G>,
        cond: &AttributeCondition,
        proof: &ProofMessage<G>,
        rng: &mut R,
    ) -> Result<Envelope<G>, PbcdError> {
        register_inner(
            &self.ocbe,
            &self.idmgr_key,
            &self.conditions,
            &self.table,
            token,
            cond,
            proof,
            rng,
        )
    }

    /// Cohort registration, identical in behaviour to
    /// [`Publisher::register_batch`] but callable from concurrent handler
    /// threads: one batched Schnorr check authenticates the whole cohort.
    pub fn register_batch<R: RngCore + ?Sized>(
        &self,
        items: &[(IdentityToken<G>, AttributeCondition, ProofMessage<G>)],
        rng: &mut R,
    ) -> Vec<Result<Envelope<G>, PbcdError>> {
        register_batch_inner(
            &self.ocbe,
            &self.idmgr_key,
            &self.conditions,
            &self.table,
            items,
            rng,
        )
    }
}

/// The single source of truth for registration (paper §V-B), shared by
/// the exclusive [`Publisher::register`] and the concurrent
/// [`Registrar::register`].
#[allow(clippy::too_many_arguments)]
fn register_inner<G: CyclicGroup, R: RngCore + ?Sized>(
    ocbe: &OcbeSystem<G>,
    idmgr_key: &VerifyingKey<G>,
    conditions: &[AttributeCondition],
    table: &ShardedCssTable,
    token: &IdentityToken<G>,
    cond: &AttributeCondition,
    proof: &ProofMessage<G>,
    rng: &mut R,
) -> Result<Envelope<G>, PbcdError> {
    token.verify(ocbe.pedersen(), idmgr_key)?;
    register_verified_inner(ocbe, conditions, table, token, cond, proof, rng)
}

/// Registration *after* token authentication: the tag/condition checks,
/// CSS issuance and envelope composition. Split out so the batch path can
/// substitute one batched Schnorr check for per-item verification.
fn register_verified_inner<G: CyclicGroup, R: RngCore + ?Sized>(
    ocbe: &OcbeSystem<G>,
    conditions: &[AttributeCondition],
    table: &ShardedCssTable,
    token: &IdentityToken<G>,
    cond: &AttributeCondition,
    proof: &ProofMessage<G>,
    rng: &mut R,
) -> Result<Envelope<G>, PbcdError> {
    if token.id_tag != cond.attribute {
        return Err(PbcdError::TagMismatch {
            token_tag: token.id_tag.clone(),
            condition_attribute: cond.attribute.clone(),
        });
    }
    if !conditions.iter().any(|c| c == cond) {
        return Err(PbcdError::UnknownCondition);
    }
    // Fresh CSS, recorded unconditionally: `T` over-approximates — only
    // qualified subscribers can actually open the envelope.
    let css = table.issue(&Nym::new(&token.nym), cond, rng);
    let envelope = ocbe.sender_compose(&token.commitment, &cond.predicate(), proof, &css, rng)?;
    Ok(envelope)
}

/// Cohort registration: authenticates every token of the batch with **one**
/// random-linear-combination Schnorr check ([`pbcd_group::verify_batch`], a
/// single multi-scalar multiplication — and since all tokens carry the same
/// IdMgr key, its generator and key terms collapse) before issuing CSSs and
/// composing envelopes per item. Outcomes are per item and independent: a
/// forged token in the cohort costs only that item (the combined check
/// fails, and per-item verification attributes the failure), the rest
/// register normally.
fn register_batch_inner<G: CyclicGroup, R: RngCore + ?Sized>(
    ocbe: &OcbeSystem<G>,
    idmgr_key: &VerifyingKey<G>,
    conditions: &[AttributeCondition],
    table: &ShardedCssTable,
    items: &[(IdentityToken<G>, AttributeCondition, ProofMessage<G>)],
    rng: &mut R,
) -> Vec<Result<Envelope<G>, PbcdError>> {
    let payloads: Vec<Vec<u8>> = items
        .iter()
        .map(|(token, _, _)| {
            crate::token::token_signing_payload(
                ocbe.pedersen(),
                &token.nym,
                &token.id_tag,
                &token.commitment,
            )
        })
        .collect();
    let batch: Vec<(&VerifyingKey<G>, &[u8], &Signature<G>)> = items
        .iter()
        .zip(&payloads)
        .map(|((token, _, _), payload)| (idmgr_key, payload.as_slice(), &token.signature))
        .collect();
    let all_valid = verify_batch(ocbe.group(), &batch);
    items
        .iter()
        .map(|(token, cond, proof)| {
            if !all_valid {
                token.verify(ocbe.pedersen(), idmgr_key)?;
            }
            register_verified_inner(ocbe, conditions, table, token, cond, proof, rng)
        })
        .collect()
}
