//! The transport-agnostic protocol layer: typed, strictly-decoded
//! request/response messages for every wire-crossing interaction of the
//! paper's system — token issuance (§V-A), oblivious CSS registration
//! (§V-B) and the conditions query that precedes it.
//!
//! Every message travels as `magic "PP" ‖ version u8 ‖ kind u8 ‖ payload`
//! with all integers big-endian and every variable-length field
//! length-prefixed through the audited [`pbcd_docs::wire`] helpers. Both
//! directions are **total**: truncated, oversized, trailing or
//! semantically invalid bytes (non-elements, non-canonical scalars,
//! unknown enum codes) yield [`WireError`], never a panic — these are the
//! attacker-facing bytes of the registration endpoint.
//!
//! The messages deliberately carry no live references: a
//! [`RegisterRequest`] is self-contained (token + condition + proof), so
//! publisher and subscriber can sit on opposite ends of any byte pipe —
//! in-process, loopback TCP ([`pbcd_net::direct`]), or anything else.
//! Dissemination is *not* here: broadcast containers already have their
//! own wire format ([`pbcd_docs::BroadcastContainer`]) and ride the
//! untrusted broker protocol ([`pbcd_net::frame`]).

use crate::token::IdentityToken;
use bytes::{Buf, BufMut};
use pbcd_commit::{Commitment, Opening};
use pbcd_docs::wire::{self, WireError};
use pbcd_group::{CyclicGroup, Scalar, Signature};
use pbcd_ocbe::{BitProof, BitwiseEnvelope, Envelope, EqEnvelope, ProofMessage};
use pbcd_policy::{AttributeCondition, ComparisonOp};

/// Leading bytes of every protocol message.
pub const PROTO_MAGIC: &[u8; 2] = b"PP";
/// Protocol version spoken by this module.
pub const PROTO_VERSION: u8 = 1;
/// Upper bound on one protocol message (4 MiB) — a registration request
/// for ℓ = 63 is under 10 KiB, so anything near this bound is hostile.
pub const MAX_MESSAGE_LEN: usize = 4 * 1024 * 1024;

const KIND_CONDITIONS_QUERY: u8 = 1;
const KIND_REGISTER_REQUEST: u8 = 2;
const KIND_ISSUE_REQUEST: u8 = 3;
const KIND_STATS_QUERY: u8 = 4;
const KIND_REGISTER_BATCH_REQUEST: u8 = 5;
const KIND_ISSUE_BATCH_REQUEST: u8 = 6;
const KIND_CONDITIONS: u8 = 16;
const KIND_REGISTER_RESPONSE: u8 = 17;
const KIND_ISSUE_RESPONSE: u8 = 18;
const KIND_STATS: u8 = 19;
const KIND_REGISTER_BATCH_RESPONSE: u8 = 20;
const KIND_ISSUE_BATCH_RESPONSE: u8 = 21;
const KIND_ERROR: u8 = 31;

/// Most items one batch request may carry. Bounds the work a single
/// message can demand (a full register batch is ~64 envelope
/// compositions) while still amortizing the per-request costs the batch
/// endpoints exist for.
pub const MAX_BATCH_ITEMS: usize = 64;

/// Typed error codes carried by [`ErrorResponse`] — the wire projection of
/// the service-side failure cases, deliberately coarse so a response never
/// leaks more than the paper allows (notably: *nothing* about whether an
/// envelope would open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request bytes failed strict decoding.
    Malformed,
    /// The identity token's signature did not verify.
    BadToken,
    /// The token's id-tag does not match the condition's attribute.
    TagMismatch,
    /// The condition is not part of any policy.
    UnknownCondition,
    /// The OCBE proof was rejected (shape mismatch, inconsistent
    /// commitments, unsatisfiable predicate).
    BadProof,
    /// The endpoint does not serve this request kind.
    Unsupported,
    /// Internal failure; the service keeps serving.
    Internal,
}

impl ErrorCode {
    fn code(self) -> u8 {
        match self {
            Self::Malformed => 1,
            Self::BadToken => 2,
            Self::TagMismatch => 3,
            Self::UnknownCondition => 4,
            Self::BadProof => 5,
            Self::Unsupported => 6,
            Self::Internal => 7,
        }
    }

    fn from_code(code: u8) -> Result<Self, WireError> {
        Ok(match code {
            1 => Self::Malformed,
            2 => Self::BadToken,
            3 => Self::TagMismatch,
            4 => Self::UnknownCondition,
            5 => Self::BadProof,
            6 => Self::Unsupported,
            7 => Self::Internal,
            _ => return Err(WireError::InvalidValue),
        })
    }
}

impl core::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::Malformed => "malformed request",
            Self::BadToken => "bad token signature",
            Self::TagMismatch => "token/condition tag mismatch",
            Self::UnknownCondition => "unknown condition",
            Self::BadProof => "bad OCBE proof",
            Self::Unsupported => "unsupported request",
            Self::Internal => "internal error",
        };
        write!(f, "{s}")
    }
}

/// Registration request (§V-B): the subscriber's token, the condition it
/// registers for and the OCBE proof message — everything the publisher
/// needs, with no shared state.
pub struct RegisterRequest<G: CyclicGroup> {
    /// The identity token whose commitment the proof opens against.
    pub token: IdentityToken<G>,
    /// The attribute condition being registered for.
    pub cond: AttributeCondition,
    /// Receiver phase-1 OCBE proof message.
    pub proof: ProofMessage<G>,
}

/// Registration response: the OCBE envelope around the fresh CSS. Whether
/// it opens is information only the subscriber ever has.
pub struct RegisterResponse<G: CyclicGroup> {
    /// The composed envelope.
    pub envelope: Envelope<G>,
}

/// Token issuance request (§V-A): the subject asks the issuer to certify
/// one attribute value. The issuer (IdP + IdMgr role) legitimately learns
/// the value — it is the party that commits to it; the *publisher* never
/// sees this message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssueRequest {
    /// Subject identity at the issuer (e.g. an account name).
    pub subject: String,
    /// Attribute name to certify.
    pub attribute: String,
    /// Attribute value (integer-encoded).
    pub value: u64,
}

/// Token issuance response: the signed token plus the private opening
/// `(x, r)` the subscriber needs for OCBE proofs.
pub struct IssueResponse<G: CyclicGroup> {
    /// The signed identity token.
    pub token: IdentityToken<G>,
    /// The commitment opening, for the subscriber's eyes only.
    pub opening: Opening,
}

/// The deployment parameters and condition list a publisher answers a
/// [`Request::ConditionsQuery`] with — everything a subscriber needs to
/// drive registration without sharing any in-process handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConditionsInfo {
    /// OCBE attribute bit-width ℓ.
    pub ell: u32,
    /// CSS width κ in bits.
    pub kappa_bits: u32,
    /// The distinct conditions registrable at this publisher.
    pub conditions: Vec<AttributeCondition>,
}

/// A typed error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorResponse {
    /// What class of failure occurred.
    pub code: ErrorCode,
    /// Human-readable detail (never secret-bearing).
    pub message: String,
}

/// A protocol request (subscriber → publisher or subscriber → issuer).
pub enum Request<G: CyclicGroup> {
    /// Ask the publisher for its deployment parameters and conditions —
    /// all of them, or only those naming one attribute.
    ConditionsQuery {
        /// Restrict to conditions on this attribute (`None` = all).
        attribute: Option<String>,
    },
    /// Oblivious CSS registration.
    Register(RegisterRequest<G>),
    /// A cohort of registrations in one message (at most
    /// [`MAX_BATCH_ITEMS`]): the service authenticates every token with a
    /// single batched Schnorr check and amortizes the per-request
    /// transport, lock and RNG costs across the cohort. Outcomes are per
    /// item.
    RegisterBatch(Vec<RegisterRequest<G>>),
    /// Token issuance.
    Issue(IssueRequest),
    /// A cohort of token issuances in one message (at most
    /// [`MAX_BATCH_ITEMS`]); outcomes are per item.
    IssueBatch(Vec<IssueRequest>),
    /// Ask the endpoint for its telemetry exposition. Carries nothing;
    /// the reply is aggregates only (the same threat model as the broker's
    /// stats frame: never token material, attribute values or envelopes).
    Stats,
}

/// A protocol response (publisher/issuer → subscriber).
pub enum Response<G: CyclicGroup> {
    /// Reply to [`Request::ConditionsQuery`].
    Conditions(ConditionsInfo),
    /// Reply to [`Request::Register`].
    Register(RegisterResponse<G>),
    /// Reply to [`Request::RegisterBatch`]: one outcome per requested
    /// item, in order — a rejected item carries its typed error without
    /// failing the cohort.
    RegisterBatch(Vec<Result<RegisterResponse<G>, ErrorResponse>>),
    /// Reply to [`Request::Issue`].
    Issue(IssueResponse<G>),
    /// Reply to [`Request::IssueBatch`]: one outcome per requested item,
    /// in order.
    IssueBatch(Vec<Result<IssueResponse<G>, ErrorResponse>>),
    /// Reply to [`Request::Stats`]: the text exposition of the endpoint's
    /// metrics registry.
    Stats {
        /// `name{label} value` exposition lines.
        text: String,
    },
    /// Typed failure; the connection stays usable.
    Error(ErrorResponse),
}

// ---------------------------------------------------------------------------
// Field codecs
// ---------------------------------------------------------------------------

/// Fixed scalar width on the wire: the canonical 32-byte big-endian
/// encoding of the 256-bit scalar field.
const SCALAR_LEN: usize = 32;

fn put_elem<G: CyclicGroup>(
    buf: &mut impl BufMut,
    group: &G,
    elem: &G::Elem,
) -> Result<(), WireError> {
    wire::put_bytes(buf, &group.serialize(elem))
}

fn get_elem<G: CyclicGroup>(buf: &mut impl Buf, group: &G) -> Result<G::Elem, WireError> {
    group
        .deserialize(&wire::get_bytes(buf)?)
        .ok_or(WireError::InvalidValue)
}

fn put_scalar(buf: &mut impl BufMut, s: &Scalar) {
    let bytes = s.to_uint().to_be_bytes();
    debug_assert_eq!(bytes.len(), SCALAR_LEN);
    buf.put_slice(&bytes);
}

/// Strict scalar parse: fixed width, canonical (below the group order).
fn get_scalar<G: CyclicGroup>(buf: &mut impl Buf, group: &G) -> Result<Scalar, WireError> {
    let bytes = wire::get_fixed::<SCALAR_LEN>(buf)?;
    let uint = pbcd_math::U256::from_be_bytes(&bytes).ok_or(WireError::InvalidValue)?;
    if uint >= *group.order() {
        return Err(WireError::InvalidValue);
    }
    Ok(group.scalar_ctx().from_uint(&uint))
}

fn put_condition(buf: &mut impl BufMut, cond: &AttributeCondition) -> Result<(), WireError> {
    wire::put_str(buf, &cond.attribute)?;
    buf.put_u8(op_code(cond.op));
    buf.put_u64(cond.threshold);
    Ok(())
}

fn get_condition(buf: &mut impl Buf) -> Result<AttributeCondition, WireError> {
    let attribute = wire::get_str(buf)?;
    let op = op_from_code(wire::get_u8(buf)?)?;
    let threshold = wire::get_u64(buf)?;
    Ok(AttributeCondition {
        attribute,
        op,
        threshold,
    })
}

fn op_code(op: ComparisonOp) -> u8 {
    match op {
        ComparisonOp::Eq => 0,
        ComparisonOp::Neq => 1,
        ComparisonOp::Gt => 2,
        ComparisonOp::Ge => 3,
        ComparisonOp::Lt => 4,
        ComparisonOp::Le => 5,
    }
}

fn op_from_code(code: u8) -> Result<ComparisonOp, WireError> {
    Ok(match code {
        0 => ComparisonOp::Eq,
        1 => ComparisonOp::Neq,
        2 => ComparisonOp::Gt,
        3 => ComparisonOp::Ge,
        4 => ComparisonOp::Lt,
        5 => ComparisonOp::Le,
        _ => return Err(WireError::InvalidValue),
    })
}

fn put_token<G: CyclicGroup>(
    buf: &mut impl BufMut,
    group: &G,
    token: &IdentityToken<G>,
) -> Result<(), WireError> {
    wire::put_str(buf, &token.nym)?;
    wire::put_str(buf, &token.id_tag)?;
    put_elem(buf, group, token.commitment.element())?;
    // (R, s) Schnorr signature: nonce-commitment point plus response scalar.
    put_elem(buf, group, &token.signature.big_r)?;
    put_scalar(buf, &token.signature.s);
    Ok(())
}

fn get_token<G: CyclicGroup>(buf: &mut impl Buf, group: &G) -> Result<IdentityToken<G>, WireError> {
    let nym = wire::get_str(buf)?;
    let id_tag = wire::get_str(buf)?;
    let commitment = Commitment::from_element(get_elem(buf, group)?);
    let big_r = get_elem(buf, group)?;
    let s = get_scalar(buf, group)?;
    Ok(IdentityToken {
        nym,
        id_tag,
        commitment,
        signature: Signature { big_r, s },
    })
}

fn put_opening(buf: &mut impl BufMut, opening: &Opening) {
    put_scalar(buf, &opening.value);
    put_scalar(buf, &opening.randomness);
}

fn get_opening<G: CyclicGroup>(buf: &mut impl Buf, group: &G) -> Result<Opening, WireError> {
    let value = get_scalar(buf, group)?;
    let randomness = get_scalar(buf, group)?;
    Ok(Opening { value, randomness })
}

fn put_bit_proof<G: CyclicGroup>(
    buf: &mut impl BufMut,
    group: &G,
    proof: &BitProof<G>,
) -> Result<(), WireError> {
    buf.put_u32(proof.commitments.len() as u32);
    for c in &proof.commitments {
        put_elem(buf, group, c.element())?;
    }
    Ok(())
}

fn get_bit_proof<G: CyclicGroup>(buf: &mut impl Buf, group: &G) -> Result<BitProof<G>, WireError> {
    let count = wire::get_u32(buf)? as usize;
    // Every commitment costs ≥ 4 bytes (its length prefix) on the wire.
    if count > buf.remaining() / 4 + 1 {
        return Err(WireError::Truncated);
    }
    let mut commitments = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        commitments.push(Commitment::from_element(get_elem(buf, group)?));
    }
    Ok(BitProof { commitments })
}

fn put_proof<G: CyclicGroup>(
    buf: &mut impl BufMut,
    group: &G,
    proof: &ProofMessage<G>,
) -> Result<(), WireError> {
    match proof {
        ProofMessage::Empty => buf.put_u8(0),
        ProofMessage::Bits(p) => {
            buf.put_u8(1);
            put_bit_proof(buf, group, p)?;
        }
        ProofMessage::Dual { ge, le } => {
            buf.put_u8(2);
            buf.put_u8(presence_flags(ge.is_some(), le.is_some()));
            if let Some(p) = ge {
                put_bit_proof(buf, group, p)?;
            }
            if let Some(p) = le {
                put_bit_proof(buf, group, p)?;
            }
        }
    }
    Ok(())
}

fn get_proof<G: CyclicGroup>(buf: &mut impl Buf, group: &G) -> Result<ProofMessage<G>, WireError> {
    match wire::get_u8(buf)? {
        0 => Ok(ProofMessage::Empty),
        1 => Ok(ProofMessage::Bits(get_bit_proof(buf, group)?)),
        2 => {
            let (has_ge, has_le) = parse_presence_flags(wire::get_u8(buf)?)?;
            let ge = if has_ge {
                Some(get_bit_proof(buf, group)?)
            } else {
                None
            };
            let le = if has_le {
                Some(get_bit_proof(buf, group)?)
            } else {
                None
            };
            Ok(ProofMessage::Dual { ge, le })
        }
        _ => Err(WireError::InvalidValue),
    }
}

fn presence_flags(ge: bool, le: bool) -> u8 {
    (ge as u8) | ((le as u8) << 1)
}

fn parse_presence_flags(flags: u8) -> Result<(bool, bool), WireError> {
    if flags > 3 {
        return Err(WireError::InvalidValue);
    }
    Ok((flags & 1 != 0, flags & 2 != 0))
}

fn put_bitwise_envelope<G: CyclicGroup>(
    buf: &mut impl BufMut,
    group: &G,
    env: &BitwiseEnvelope<G>,
) -> Result<(), WireError> {
    put_elem(buf, group, &env.eta)?;
    buf.put_u32(env.shares.len() as u32);
    for [s0, s1] in &env.shares {
        buf.put_slice(s0);
        buf.put_slice(s1);
    }
    wire::put_bytes(buf, &env.ciphertext)
}

fn get_bitwise_envelope<G: CyclicGroup>(
    buf: &mut impl Buf,
    group: &G,
) -> Result<BitwiseEnvelope<G>, WireError> {
    let eta = get_elem(buf, group)?;
    let count = wire::get_u32(buf)? as usize;
    // Each share is exactly 64 bytes on the wire.
    if count > buf.remaining() / 64 + 1 {
        return Err(WireError::Truncated);
    }
    let mut shares = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let s0 = wire::get_fixed::<32>(buf)?;
        let s1 = wire::get_fixed::<32>(buf)?;
        shares.push([s0, s1]);
    }
    let ciphertext = wire::get_bytes(buf)?;
    Ok(BitwiseEnvelope {
        eta,
        shares,
        ciphertext,
    })
}

fn put_envelope<G: CyclicGroup>(
    buf: &mut impl BufMut,
    group: &G,
    env: &Envelope<G>,
) -> Result<(), WireError> {
    match env {
        Envelope::Eq(e) => {
            buf.put_u8(0);
            put_elem(buf, group, &e.eta)?;
            wire::put_bytes(buf, &e.ciphertext)?;
        }
        Envelope::Ge(e) => {
            buf.put_u8(1);
            put_bitwise_envelope(buf, group, e)?;
        }
        Envelope::Le(e) => {
            buf.put_u8(2);
            put_bitwise_envelope(buf, group, e)?;
        }
        Envelope::Dual { ge, le } => {
            buf.put_u8(3);
            buf.put_u8(presence_flags(ge.is_some(), le.is_some()));
            if let Some(e) = ge {
                put_bitwise_envelope(buf, group, e)?;
            }
            if let Some(e) = le {
                put_bitwise_envelope(buf, group, e)?;
            }
        }
    }
    Ok(())
}

fn get_envelope<G: CyclicGroup>(buf: &mut impl Buf, group: &G) -> Result<Envelope<G>, WireError> {
    match wire::get_u8(buf)? {
        0 => {
            let eta = get_elem(buf, group)?;
            let ciphertext = wire::get_bytes(buf)?;
            Ok(Envelope::Eq(EqEnvelope { eta, ciphertext }))
        }
        1 => Ok(Envelope::Ge(get_bitwise_envelope(buf, group)?)),
        2 => Ok(Envelope::Le(get_bitwise_envelope(buf, group)?)),
        3 => {
            let (has_ge, has_le) = parse_presence_flags(wire::get_u8(buf)?)?;
            let ge = if has_ge {
                Some(get_bitwise_envelope(buf, group)?)
            } else {
                None
            };
            let le = if has_le {
                Some(get_bitwise_envelope(buf, group)?)
            } else {
                None
            };
            Ok(Envelope::Dual { ge, le })
        }
        _ => Err(WireError::InvalidValue),
    }
}

fn put_register_item<G: CyclicGroup>(
    buf: &mut impl BufMut,
    group: &G,
    item: &RegisterRequest<G>,
) -> Result<(), WireError> {
    put_token(buf, group, &item.token)?;
    put_condition(buf, &item.cond)?;
    put_proof(buf, group, &item.proof)
}

fn get_register_item<G: CyclicGroup>(
    buf: &mut impl Buf,
    group: &G,
) -> Result<RegisterRequest<G>, WireError> {
    let token = get_token(buf, group)?;
    let cond = get_condition(buf)?;
    let proof = get_proof(buf, group)?;
    Ok(RegisterRequest { token, cond, proof })
}

/// Strict batch count: `u16`, at most [`MAX_BATCH_ITEMS`].
fn get_batch_count(buf: &mut impl Buf) -> Result<usize, WireError> {
    if buf.remaining() < 2 {
        return Err(WireError::Truncated);
    }
    let count = buf.get_u16() as usize;
    if count > MAX_BATCH_ITEMS {
        return Err(WireError::FieldTooLong(count));
    }
    Ok(count)
}

fn put_batch_count(buf: &mut impl BufMut, count: usize) -> Result<(), WireError> {
    if count > MAX_BATCH_ITEMS {
        return Err(WireError::FieldTooLong(count));
    }
    buf.put_u16(count as u16);
    Ok(())
}

fn put_error(buf: &mut impl BufMut, e: &ErrorResponse) -> Result<(), WireError> {
    buf.put_u8(e.code.code());
    wire::put_str(buf, &e.message)
}

fn get_error(buf: &mut impl Buf) -> Result<ErrorResponse, WireError> {
    let code = ErrorCode::from_code(wire::get_u8(buf)?)?;
    let message = wire::get_str(buf)?;
    Ok(ErrorResponse { code, message })
}

/// One batch-response item: tag byte `0` = success payload, `1` = typed
/// per-item error.
fn put_batch_result<T>(
    buf: &mut Vec<u8>,
    result: &Result<T, ErrorResponse>,
    put_ok: impl FnOnce(&mut Vec<u8>, &T) -> Result<(), WireError>,
) -> Result<(), WireError> {
    match result {
        Ok(v) => {
            buf.put_u8(0);
            put_ok(buf, v)
        }
        Err(e) => {
            buf.put_u8(1);
            put_error(buf, e)
        }
    }
}

fn get_batch_result<T>(
    buf: &mut &[u8],
    get_ok: impl FnOnce(&mut &[u8]) -> Result<T, WireError>,
) -> Result<Result<T, ErrorResponse>, WireError> {
    match wire::get_u8(buf)? {
        0 => Ok(Ok(get_ok(buf)?)),
        1 => Ok(Err(get_error(buf)?)),
        _ => Err(WireError::InvalidValue),
    }
}

// ---------------------------------------------------------------------------
// Message codecs
// ---------------------------------------------------------------------------

fn header(kind: u8) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(PROTO_MAGIC);
    buf.push(PROTO_VERSION);
    buf.push(kind);
    buf
}

/// Strips and validates the message header, returning the kind byte and
/// the payload slice.
fn open_header(data: &[u8]) -> Result<(u8, &[u8]), WireError> {
    if data.len() > MAX_MESSAGE_LEN {
        return Err(WireError::FieldTooLong(data.len()));
    }
    if data.len() < 4 {
        return Err(WireError::Truncated);
    }
    if &data[..2] != PROTO_MAGIC || data[2] != PROTO_VERSION {
        return Err(WireError::BadHeader);
    }
    Ok((data[3], &data[4..]))
}

fn finish(buf: &[u8]) -> Result<(), WireError> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(WireError::BadHeader)
    }
}

impl<G: CyclicGroup> Request<G> {
    /// Serializes the request. Fails — instead of panicking — on oversized
    /// fields.
    pub fn encode(&self, group: &G) -> Result<Vec<u8>, WireError> {
        let mut buf;
        match self {
            Self::ConditionsQuery { attribute } => {
                buf = header(KIND_CONDITIONS_QUERY);
                match attribute {
                    Some(a) => {
                        buf.put_u8(1);
                        wire::put_str(&mut buf, a)?;
                    }
                    None => buf.put_u8(0),
                }
            }
            Self::Register(r) => {
                buf = header(KIND_REGISTER_REQUEST);
                put_register_item(&mut buf, group, r)?;
            }
            Self::RegisterBatch(items) => {
                buf = header(KIND_REGISTER_BATCH_REQUEST);
                put_batch_count(&mut buf, items.len())?;
                for item in items {
                    put_register_item(&mut buf, group, item)?;
                }
            }
            Self::Issue(r) => {
                buf = header(KIND_ISSUE_REQUEST);
                wire::put_str(&mut buf, &r.subject)?;
                wire::put_str(&mut buf, &r.attribute)?;
                buf.put_u64(r.value);
            }
            Self::IssueBatch(items) => {
                buf = header(KIND_ISSUE_BATCH_REQUEST);
                put_batch_count(&mut buf, items.len())?;
                for item in items {
                    wire::put_str(&mut buf, &item.subject)?;
                    wire::put_str(&mut buf, &item.attribute)?;
                    buf.put_u64(item.value);
                }
            }
            Self::Stats => {
                buf = header(KIND_STATS_QUERY);
            }
        }
        Ok(buf)
    }

    /// Strict, total parse of a request. Any deviation — bad magic or
    /// version, unknown kind, truncation, trailing bytes, non-canonical
    /// values — is a [`WireError`], never a panic.
    pub fn decode(group: &G, data: &[u8]) -> Result<Self, WireError> {
        let (kind, payload) = open_header(data)?;
        let mut buf = payload;
        let req = match kind {
            KIND_CONDITIONS_QUERY => {
                let attribute = match wire::get_u8(&mut buf)? {
                    0 => None,
                    1 => Some(wire::get_str(&mut buf)?),
                    _ => return Err(WireError::InvalidValue),
                };
                Self::ConditionsQuery { attribute }
            }
            KIND_REGISTER_REQUEST => Self::Register(get_register_item(&mut buf, group)?),
            KIND_REGISTER_BATCH_REQUEST => {
                let count = get_batch_count(&mut buf)?;
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(get_register_item(&mut buf, group)?);
                }
                Self::RegisterBatch(items)
            }
            KIND_ISSUE_REQUEST => {
                let subject = wire::get_str(&mut buf)?;
                let attribute = wire::get_str(&mut buf)?;
                let value = wire::get_u64(&mut buf)?;
                Self::Issue(IssueRequest {
                    subject,
                    attribute,
                    value,
                })
            }
            KIND_ISSUE_BATCH_REQUEST => {
                let count = get_batch_count(&mut buf)?;
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    let subject = wire::get_str(&mut buf)?;
                    let attribute = wire::get_str(&mut buf)?;
                    let value = wire::get_u64(&mut buf)?;
                    items.push(IssueRequest {
                        subject,
                        attribute,
                        value,
                    });
                }
                Self::IssueBatch(items)
            }
            KIND_STATS_QUERY => Self::Stats,
            _ => return Err(WireError::BadHeader),
        };
        finish(buf)?;
        Ok(req)
    }
}

impl<G: CyclicGroup> Response<G> {
    /// Serializes the response. Fails — instead of panicking — on
    /// oversized fields.
    pub fn encode(&self, group: &G) -> Result<Vec<u8>, WireError> {
        let mut buf;
        match self {
            Self::Conditions(info) => {
                buf = header(KIND_CONDITIONS);
                buf.put_u32(info.ell);
                buf.put_u32(info.kappa_bits);
                buf.put_u32(info.conditions.len() as u32);
                for c in &info.conditions {
                    put_condition(&mut buf, c)?;
                }
            }
            Self::Register(r) => {
                buf = header(KIND_REGISTER_RESPONSE);
                put_envelope(&mut buf, group, &r.envelope)?;
            }
            Self::RegisterBatch(results) => {
                buf = header(KIND_REGISTER_BATCH_RESPONSE);
                put_batch_count(&mut buf, results.len())?;
                for result in results {
                    put_batch_result(&mut buf, result, |buf, r| {
                        put_envelope(buf, group, &r.envelope)
                    })?;
                }
            }
            Self::Issue(r) => {
                buf = header(KIND_ISSUE_RESPONSE);
                put_token(&mut buf, group, &r.token)?;
                put_opening(&mut buf, &r.opening);
            }
            Self::IssueBatch(results) => {
                buf = header(KIND_ISSUE_BATCH_RESPONSE);
                put_batch_count(&mut buf, results.len())?;
                for result in results {
                    put_batch_result(&mut buf, result, |buf, r| {
                        put_token(buf, group, &r.token)?;
                        put_opening(buf, &r.opening);
                        Ok(())
                    })?;
                }
            }
            Self::Stats { text } => {
                buf = header(KIND_STATS);
                wire::put_str(&mut buf, text)?;
            }
            Self::Error(e) => {
                buf = header(KIND_ERROR);
                buf.put_u8(e.code.code());
                wire::put_str(&mut buf, &e.message)?;
            }
        }
        Ok(buf)
    }

    /// Strict, total parse of a response (same contract as
    /// [`Request::decode`]).
    pub fn decode(group: &G, data: &[u8]) -> Result<Self, WireError> {
        let (kind, payload) = open_header(data)?;
        let mut buf = payload;
        let resp = match kind {
            KIND_CONDITIONS => {
                let ell = wire::get_u32(&mut buf)?;
                let kappa_bits = wire::get_u32(&mut buf)?;
                let count = wire::get_u32(&mut buf)? as usize;
                // Each condition costs ≥ 13 bytes on the wire.
                if count > buf.remaining() / 13 + 1 {
                    return Err(WireError::Truncated);
                }
                let mut conditions = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    conditions.push(get_condition(&mut buf)?);
                }
                Self::Conditions(ConditionsInfo {
                    ell,
                    kappa_bits,
                    conditions,
                })
            }
            KIND_REGISTER_RESPONSE => Self::Register(RegisterResponse {
                envelope: get_envelope(&mut buf, group)?,
            }),
            KIND_REGISTER_BATCH_RESPONSE => {
                let count = get_batch_count(&mut buf)?;
                let mut results = Vec::with_capacity(count);
                for _ in 0..count {
                    results.push(get_batch_result(&mut buf, |buf| {
                        Ok(RegisterResponse {
                            envelope: get_envelope(buf, group)?,
                        })
                    })?);
                }
                Self::RegisterBatch(results)
            }
            KIND_ISSUE_RESPONSE => {
                let token = get_token(&mut buf, group)?;
                let opening = get_opening(&mut buf, group)?;
                Self::Issue(IssueResponse { token, opening })
            }
            KIND_ISSUE_BATCH_RESPONSE => {
                let count = get_batch_count(&mut buf)?;
                let mut results = Vec::with_capacity(count);
                for _ in 0..count {
                    results.push(get_batch_result(&mut buf, |buf| {
                        let token = get_token(buf, group)?;
                        let opening = get_opening(buf, group)?;
                        Ok(IssueResponse { token, opening })
                    })?);
                }
                Self::IssueBatch(results)
            }
            KIND_STATS => Self::Stats {
                text: wire::get_str(&mut buf)?,
            },
            KIND_ERROR => {
                let code = ErrorCode::from_code(wire::get_u8(&mut buf)?)?;
                let message = wire::get_str(&mut buf)?;
                Self::Error(ErrorResponse { code, message })
            }
            _ => return Err(WireError::BadHeader),
        };
        finish(buf)?;
        Ok(resp)
    }
}

/// True iff `data` carries a well-formed header with the error-response
/// kind — a cheap classifier for stats and tests that does not need the
/// group to decode the payload.
pub fn is_error_response(data: &[u8]) -> bool {
    matches!(open_header(data), Ok((KIND_ERROR, _)))
}

/// True iff `data` carries a well-formed header with the
/// registration-request kind — single or batch (payload not inspected).
pub fn is_register_request(data: &[u8]) -> bool {
    matches!(
        open_header(data),
        Ok((KIND_REGISTER_REQUEST | KIND_REGISTER_BATCH_REQUEST, _))
    )
}

/// True iff `data` is a well-formed **full** conditions query
/// (`attribute: None`) — byte-exact, so the network layer can answer the
/// read-mostly query from a pre-encoded snapshot without decoding or
/// consulting the publisher service. Attribute-filtered queries return
/// `false` and take the normal service path.
pub fn is_full_conditions_query(data: &[u8]) -> bool {
    matches!(open_header(data), Ok((KIND_CONDITIONS_QUERY, payload)) if payload == [0])
}

/// True iff `data` is a well-formed stats query (empty payload) — a cheap
/// classifier so services can answer from their registry before any
/// group-dependent decode.
pub fn is_stats_query(data: &[u8]) -> bool {
    matches!(open_header(data), Ok((KIND_STATS_QUERY, payload)) if payload.is_empty())
}

/// Short label for a request's kind byte — the `kind` label on the
/// services' per-request-kind latency histograms. Malformed headers (which
/// still cost a decode attempt and an error response) classify as
/// `"malformed"`.
pub fn request_kind_label(data: &[u8]) -> &'static str {
    match open_header(data) {
        Ok((KIND_CONDITIONS_QUERY, _)) => "conditions",
        Ok((KIND_REGISTER_REQUEST, _)) => "register",
        Ok((KIND_REGISTER_BATCH_REQUEST, _)) => "register_batch",
        Ok((KIND_ISSUE_REQUEST, _)) => "issue",
        Ok((KIND_ISSUE_BATCH_REQUEST, _)) => "issue_batch",
        Ok((KIND_STATS_QUERY, _)) => "stats",
        _ => "malformed",
    }
}

/// The OCBE envelope flavour inside an encoded register *response*
/// (`"eq"`, `"ge"`, `"le"`, `"dual"`), read from the payload discriminant
/// without a group context. `None` for anything that is not a well-formed
/// register response — the label source for `ocbe_envelopes_total`.
pub fn register_envelope_kind(data: &[u8]) -> Option<&'static str> {
    match open_header(data) {
        Ok((KIND_REGISTER_RESPONSE, payload)) => match payload.first()? {
            0 => Some("eq"),
            1 => Some("ge"),
            2 => Some("le"),
            3 => Some("dual"),
            _ => None,
        },
        _ => None,
    }
}

impl<G: CyclicGroup> core::fmt::Debug for Request<G> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::ConditionsQuery { attribute } => {
                write!(f, "ConditionsQuery(attribute={attribute:?})")
            }
            Self::Register(r) => write!(
                f,
                "Register(token={:?}, cond={}, proof={:?})",
                r.token, r.cond, r.proof
            ),
            Self::RegisterBatch(items) => write!(f, "RegisterBatch({} items)", items.len()),
            Self::Issue(r) => write!(f, "Issue({}/{})", r.subject, r.attribute),
            Self::IssueBatch(items) => write!(f, "IssueBatch({} items)", items.len()),
            Self::Stats => write!(f, "Stats"),
        }
    }
}

impl<G: CyclicGroup> core::fmt::Debug for Response<G> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Conditions(info) => write!(
                f,
                "Conditions(ell={}, kappa={}, {} conditions)",
                info.ell,
                info.kappa_bits,
                info.conditions.len()
            ),
            Self::Register(r) => write!(f, "Register({:?})", r.envelope),
            Self::RegisterBatch(results) => write!(
                f,
                "RegisterBatch({} ok / {} items)",
                results.iter().filter(|r| r.is_ok()).count(),
                results.len()
            ),
            Self::Issue(r) => write!(f, "Issue({:?})", r.token),
            Self::IssueBatch(results) => write!(
                f,
                "IssueBatch({} ok / {} items)",
                results.iter().filter(|r| r.is_ok()).count(),
                results.len()
            ),
            Self::Stats { text } => write!(f, "Stats({} bytes)", text.len()),
            Self::Error(e) => write!(f, "Error({:?}: {})", e.code, e.message),
        }
    }
}
