//! Session-typed subscriber-side registration: the receiver half of the
//! [`crate::proto`] protocol, with the state machine enforced by the type
//! system.
//!
//! [`RegistrationSession::start`] consumes the session and yields the
//! encoded request plus a [`PendingRegistration`]; only that pending value
//! can complete the exchange, and [`PendingRegistration::complete`]
//! consumes it. Two whole classes of misuse are therefore compile-time
//! errors: completing a registration that was never prepared, and reusing
//! one registration's [`pbcd_ocbe::ProofSecrets`] for another response.
//!
//! The session owns its own [`OcbeSystem`], rebuilt from the *public*
//! deployment parameters (group, ℓ) a publisher reports in
//! [`crate::proto::ConditionsInfo`] — no handle is ever shared with the
//! publisher, so the same code drives in-process byte exchanges and real
//! sockets ([`register_all_via`]).

use crate::error::PbcdError;
use crate::proto::{ConditionsInfo, IssueRequest, RegisterRequest, Request, Response};
use crate::subscriber::Subscriber;
use pbcd_gkm::BroadcastGkm;
use pbcd_group::CyclicGroup;
use pbcd_net::direct::RegistrationClient;
use pbcd_ocbe::{OcbeSystem, ProofSecrets};
use pbcd_policy::AttributeCondition;
use rand::RngCore;
use std::net::ToSocketAddrs;

/// A not-yet-started registration for one subscriber, bound to the
/// publisher's public OCBE parameters.
pub struct RegistrationSession<'s, G: CyclicGroup, K: BroadcastGkm> {
    subscriber: &'s mut Subscriber<G, K>,
    ocbe: OcbeSystem<G>,
}

impl<'s, G: CyclicGroup, K: BroadcastGkm> RegistrationSession<'s, G, K> {
    /// Opens a session from the publisher's published parameters. `ell`
    /// must be in `1..=63` (validate untrusted input with
    /// [`valid_ell`] first — this constructor asserts).
    pub fn new(subscriber: &'s mut Subscriber<G, K>, group: G, ell: u32) -> Self {
        Self {
            subscriber,
            ocbe: OcbeSystem::new(group, ell),
        }
    }

    /// Phase 1: builds the OCBE proof for `cond` and returns the encoded
    /// [`RegisterRequest`] plus the pending half of the exchange. Errors if
    /// the subscriber holds no token for the condition's attribute.
    pub fn start<R: RngCore + ?Sized>(
        self,
        cond: &AttributeCondition,
        rng: &mut R,
    ) -> Result<(Vec<u8>, PendingRegistration<'s, G, K>), PbcdError> {
        let token = self
            .subscriber
            .token_for(&cond.attribute)
            .cloned()
            .ok_or_else(|| PbcdError::MissingToken(cond.attribute.clone()))?;
        let (proof, secrets) = self
            .subscriber
            .prepare_registration(&self.ocbe, cond, rng)?;
        let request = Request::Register(RegisterRequest {
            token,
            cond: cond.clone(),
            proof,
        })
        .encode(self.ocbe.group())?;
        Ok((
            request,
            PendingRegistration {
                subscriber: self.subscriber,
                ocbe: self.ocbe,
                cond: cond.clone(),
                secrets,
            },
        ))
    }
}

/// An in-flight registration: the only value that can accept the
/// publisher's response, and only once.
pub struct PendingRegistration<'s, G: CyclicGroup, K: BroadcastGkm> {
    subscriber: &'s mut Subscriber<G, K>,
    ocbe: OcbeSystem<G>,
    cond: AttributeCondition,
    secrets: ProofSecrets,
}

impl<G: CyclicGroup, K: BroadcastGkm> PendingRegistration<'_, G, K> {
    /// The condition this exchange registers for.
    pub fn condition(&self) -> &AttributeCondition {
        &self.cond
    }

    /// Phase 2: decodes the response and tries to open the envelope,
    /// storing the CSS on success. Returns whether the CSS was extracted —
    /// information only the subscriber ever has. Consumes `self`, so the
    /// proof secrets can never be replayed against a second response.
    pub fn complete(self, response: &[u8]) -> Result<bool, PbcdError> {
        match Response::decode(self.ocbe.group(), response)? {
            Response::Register(r) => Ok(self.subscriber.complete_registration(
                &self.ocbe,
                &self.cond,
                &r.envelope,
                &self.secrets,
            )),
            Response::Error(e) => Err(PbcdError::ErrorResponse {
                code: e.code,
                message: e.message,
            }),
            _ => Err(PbcdError::UnexpectedResponse),
        }
    }
}

/// A not-yet-started *batch* registration: one request frame carrying a
/// [`RegisterRequest`] per condition, so the publisher can verify every
/// enclosed token in a single batched Schnorr check and the subscriber
/// pays one socket round-trip for the whole cohort.
pub struct BatchRegistrationSession<'s, G: CyclicGroup, K: BroadcastGkm> {
    subscriber: &'s mut Subscriber<G, K>,
    ocbe: OcbeSystem<G>,
}

impl<'s, G: CyclicGroup, K: BroadcastGkm> BatchRegistrationSession<'s, G, K> {
    /// Opens a batch session from the publisher's published parameters
    /// (same contract as [`RegistrationSession::new`]).
    pub fn new(subscriber: &'s mut Subscriber<G, K>, group: G, ell: u32) -> Self {
        Self {
            subscriber,
            ocbe: OcbeSystem::new(group, ell),
        }
    }

    /// Phase 1: builds one OCBE proof per condition and returns the encoded
    /// [`Request::RegisterBatch`] plus the pending half. Errors if any
    /// condition lacks a matching token, or if `conds` is empty or exceeds
    /// [`crate::proto::MAX_BATCH_ITEMS`].
    pub fn start<R: RngCore + ?Sized>(
        self,
        conds: &[AttributeCondition],
        rng: &mut R,
    ) -> Result<(Vec<u8>, PendingBatchRegistration<'s, G, K>), PbcdError> {
        if conds.is_empty() || conds.len() > crate::proto::MAX_BATCH_ITEMS {
            return Err(PbcdError::Wire(pbcd_docs::WireError::InvalidValue));
        }
        let mut items = Vec::with_capacity(conds.len());
        let mut pending = Vec::with_capacity(conds.len());
        for cond in conds {
            let token = self
                .subscriber
                .token_for(&cond.attribute)
                .cloned()
                .ok_or_else(|| PbcdError::MissingToken(cond.attribute.clone()))?;
            let (proof, secrets) = self
                .subscriber
                .prepare_registration(&self.ocbe, cond, rng)?;
            items.push(RegisterRequest {
                token,
                cond: cond.clone(),
                proof,
            });
            pending.push((cond.clone(), secrets));
        }
        let request = Request::RegisterBatch(items).encode(self.ocbe.group())?;
        Ok((
            request,
            PendingBatchRegistration {
                subscriber: self.subscriber,
                ocbe: self.ocbe,
                pending,
            },
        ))
    }
}

/// An in-flight batch registration; completes against exactly one
/// [`Response::RegisterBatch`] of matching arity.
pub struct PendingBatchRegistration<'s, G: CyclicGroup, K: BroadcastGkm> {
    subscriber: &'s mut Subscriber<G, K>,
    ocbe: OcbeSystem<G>,
    pending: Vec<(AttributeCondition, ProofSecrets)>,
}

impl<G: CyclicGroup, K: BroadcastGkm> PendingBatchRegistration<'_, G, K> {
    /// Phase 2: per-item envelope opening, in request order. `Ok(true)`
    /// means the CSS was extracted (known only to the subscriber);
    /// `Err(..)` carries the publisher's typed per-item error. A
    /// whole-response error or an arity mismatch fails the call itself.
    pub fn complete(self, response: &[u8]) -> Result<Vec<Result<bool, PbcdError>>, PbcdError> {
        let Self {
            subscriber,
            ocbe,
            pending,
        } = self;
        match Response::decode(ocbe.group(), response)? {
            Response::RegisterBatch(results) => {
                if results.len() != pending.len() {
                    return Err(PbcdError::UnexpectedResponse);
                }
                Ok(pending
                    .into_iter()
                    .zip(results)
                    .map(|((cond, secrets), result)| match result {
                        Ok(r) => Ok(subscriber.complete_registration(
                            &ocbe,
                            &cond,
                            &r.envelope,
                            &secrets,
                        )),
                        Err(e) => Err(PbcdError::ErrorResponse {
                            code: e.code,
                            message: e.message,
                        }),
                    })
                    .collect())
            }
            Response::Error(e) => Err(PbcdError::ErrorResponse {
                code: e.code,
                message: e.message,
            }),
            _ => Err(PbcdError::UnexpectedResponse),
        }
    }
}

/// Whether a peer-reported ℓ is a legal OCBE width (untrusted inputs must
/// pass this before reaching [`RegistrationSession::new`]).
pub fn valid_ell(ell: u32) -> bool {
    (1..=63).contains(&ell)
}

fn expect_conditions<G: CyclicGroup>(
    group: &G,
    response: &[u8],
) -> Result<ConditionsInfo, PbcdError> {
    match Response::decode(group, response)? {
        Response::Conditions(info) => Ok(info),
        Response::Error(e) => Err(PbcdError::ErrorResponse {
            code: e.code,
            message: e.message,
        }),
        _ => Err(PbcdError::UnexpectedResponse),
    }
}

/// Queries a publisher endpoint for its deployment parameters and
/// registrable conditions.
pub fn fetch_conditions<G: CyclicGroup>(
    group: &G,
    client: &mut RegistrationClient,
) -> Result<ConditionsInfo, PbcdError> {
    let request = Request::<G>::ConditionsQuery { attribute: None }.encode(group)?;
    let response = client.call(&request)?;
    let info = expect_conditions(group, &response)?;
    if !valid_ell(info.ell) {
        return Err(PbcdError::Wire(pbcd_docs::WireError::InvalidValue));
    }
    Ok(info)
}

/// Runs the full oblivious registration against a publisher's TCP
/// registration endpoint: queries the conditions, then registers for
/// **every** condition whose attribute matches a held token (the paper's
/// inference-resistant behaviour). Returns how many CSSs were extracted —
/// a count the publisher never learns.
pub fn register_all_via<G: CyclicGroup, K: BroadcastGkm, R: RngCore + ?Sized>(
    subscriber: &mut Subscriber<G, K>,
    group: &G,
    addr: impl ToSocketAddrs,
    rng: &mut R,
) -> Result<usize, PbcdError> {
    let mut client = RegistrationClient::connect(addr)?;
    let info = fetch_conditions(group, &mut client)?;
    let mut extracted = 0;
    for cond in &info.conditions {
        if subscriber.token_for(&cond.attribute).is_none() {
            continue;
        }
        let session = RegistrationSession::new(subscriber, group.clone(), info.ell);
        let (request, pending) = session.start(cond, rng)?;
        let response = client.call(&request)?;
        if pending.complete(&response)? {
            extracted += 1;
        }
    }
    client.close()?;
    Ok(extracted)
}

/// Like [`register_all_via`], but ships the whole cohort of registrations
/// as [`Request::RegisterBatch`] frames (chunked at
/// [`crate::proto::MAX_BATCH_ITEMS`]): one round-trip and one batched
/// token-signature check per chunk instead of per condition. Returns how
/// many CSSs were extracted — a count the publisher never learns.
pub fn register_all_batched_via<G: CyclicGroup, K: BroadcastGkm, R: RngCore + ?Sized>(
    subscriber: &mut Subscriber<G, K>,
    group: &G,
    addr: impl ToSocketAddrs,
    rng: &mut R,
) -> Result<usize, PbcdError> {
    let mut client = RegistrationClient::connect(addr)?;
    let info = fetch_conditions(group, &mut client)?;
    let eligible: Vec<AttributeCondition> = info
        .conditions
        .into_iter()
        .filter(|c| subscriber.token_for(&c.attribute).is_some())
        .collect();
    let mut extracted = 0;
    for chunk in eligible.chunks(crate::proto::MAX_BATCH_ITEMS) {
        let session = BatchRegistrationSession::new(subscriber, group.clone(), info.ell);
        let (request, pending) = session.start(chunk, rng)?;
        let response = client.call(&request)?;
        for opened in pending.complete(&response)? {
            if opened? {
                extracted += 1;
            }
        }
    }
    client.close()?;
    Ok(extracted)
}

/// Requests a signed identity token for every attribute the subscriber
/// holds from an issuer endpoint ([`crate::service::IssuerService`] behind
/// a [`pbcd_net::direct::RegistrationServer`]) and installs them. Returns
/// the number of tokens installed.
pub fn fetch_tokens_via<G: CyclicGroup, K: BroadcastGkm>(
    subscriber: &mut Subscriber<G, K>,
    group: &G,
    addr: impl ToSocketAddrs,
    subject: &str,
) -> Result<usize, PbcdError> {
    let mut client = RegistrationClient::connect(addr)?;
    let attrs: Vec<(String, u64)> = subscriber
        .attributes()
        .iter()
        .map(|(n, v)| (n.to_string(), v))
        .collect();
    let mut installed = 0;
    for (attribute, value) in attrs {
        let request = Request::<G>::Issue(IssueRequest {
            subject: subject.to_string(),
            attribute,
            value,
        })
        .encode(group)?;
        let response = client.call(&request)?;
        match Response::decode(group, &response)? {
            Response::Issue(r) => {
                subscriber.install_token(r.token, r.opening)?;
                installed += 1;
            }
            Response::Error(e) => {
                return Err(PbcdError::ErrorResponse {
                    code: e.code,
                    message: e.message,
                })
            }
            _ => return Err(PbcdError::UnexpectedResponse),
        }
    }
    client.close()?;
    Ok(installed)
}
