//! Session-typed subscriber-side registration: the receiver half of the
//! [`crate::proto`] protocol, with the state machine enforced by the type
//! system.
//!
//! [`RegistrationSession::start`] consumes the session and yields the
//! encoded request plus a [`PendingRegistration`]; only that pending value
//! can complete the exchange, and [`PendingRegistration::complete`]
//! consumes it. Two whole classes of misuse are therefore compile-time
//! errors: completing a registration that was never prepared, and reusing
//! one registration's [`pbcd_ocbe::ProofSecrets`] for another response.
//!
//! The session owns its own [`OcbeSystem`], rebuilt from the *public*
//! deployment parameters (group, ℓ) a publisher reports in
//! [`crate::proto::ConditionsInfo`] — no handle is ever shared with the
//! publisher, so the same code drives in-process byte exchanges and real
//! sockets ([`register_all_via`]).

use crate::error::PbcdError;
use crate::proto::{ConditionsInfo, IssueRequest, RegisterRequest, Request, Response};
use crate::subscriber::Subscriber;
use pbcd_gkm::BroadcastGkm;
use pbcd_group::CyclicGroup;
use pbcd_net::direct::RegistrationClient;
use pbcd_ocbe::{OcbeSystem, ProofSecrets};
use pbcd_policy::AttributeCondition;
use rand::RngCore;
use std::net::ToSocketAddrs;

/// A not-yet-started registration for one subscriber, bound to the
/// publisher's public OCBE parameters.
pub struct RegistrationSession<'s, G: CyclicGroup, K: BroadcastGkm> {
    subscriber: &'s mut Subscriber<G, K>,
    ocbe: OcbeSystem<G>,
}

impl<'s, G: CyclicGroup, K: BroadcastGkm> RegistrationSession<'s, G, K> {
    /// Opens a session from the publisher's published parameters. `ell`
    /// must be in `1..=63` (validate untrusted input with
    /// [`valid_ell`] first — this constructor asserts).
    pub fn new(subscriber: &'s mut Subscriber<G, K>, group: G, ell: u32) -> Self {
        Self {
            subscriber,
            ocbe: OcbeSystem::new(group, ell),
        }
    }

    /// Phase 1: builds the OCBE proof for `cond` and returns the encoded
    /// [`RegisterRequest`] plus the pending half of the exchange. Errors if
    /// the subscriber holds no token for the condition's attribute.
    pub fn start<R: RngCore + ?Sized>(
        self,
        cond: &AttributeCondition,
        rng: &mut R,
    ) -> Result<(Vec<u8>, PendingRegistration<'s, G, K>), PbcdError> {
        let token = self
            .subscriber
            .token_for(&cond.attribute)
            .cloned()
            .ok_or_else(|| PbcdError::MissingToken(cond.attribute.clone()))?;
        let (proof, secrets) = self
            .subscriber
            .prepare_registration(&self.ocbe, cond, rng)?;
        let request = Request::Register(RegisterRequest {
            token,
            cond: cond.clone(),
            proof,
        })
        .encode(self.ocbe.group())?;
        Ok((
            request,
            PendingRegistration {
                subscriber: self.subscriber,
                ocbe: self.ocbe,
                cond: cond.clone(),
                secrets,
            },
        ))
    }
}

/// An in-flight registration: the only value that can accept the
/// publisher's response, and only once.
pub struct PendingRegistration<'s, G: CyclicGroup, K: BroadcastGkm> {
    subscriber: &'s mut Subscriber<G, K>,
    ocbe: OcbeSystem<G>,
    cond: AttributeCondition,
    secrets: ProofSecrets,
}

impl<G: CyclicGroup, K: BroadcastGkm> PendingRegistration<'_, G, K> {
    /// The condition this exchange registers for.
    pub fn condition(&self) -> &AttributeCondition {
        &self.cond
    }

    /// Phase 2: decodes the response and tries to open the envelope,
    /// storing the CSS on success. Returns whether the CSS was extracted —
    /// information only the subscriber ever has. Consumes `self`, so the
    /// proof secrets can never be replayed against a second response.
    pub fn complete(self, response: &[u8]) -> Result<bool, PbcdError> {
        match Response::decode(self.ocbe.group(), response)? {
            Response::Register(r) => Ok(self.subscriber.complete_registration(
                &self.ocbe,
                &self.cond,
                &r.envelope,
                &self.secrets,
            )),
            Response::Error(e) => Err(PbcdError::ErrorResponse {
                code: e.code,
                message: e.message,
            }),
            _ => Err(PbcdError::UnexpectedResponse),
        }
    }
}

/// Whether a peer-reported ℓ is a legal OCBE width (untrusted inputs must
/// pass this before reaching [`RegistrationSession::new`]).
pub fn valid_ell(ell: u32) -> bool {
    (1..=63).contains(&ell)
}

fn expect_conditions<G: CyclicGroup>(
    group: &G,
    response: &[u8],
) -> Result<ConditionsInfo, PbcdError> {
    match Response::decode(group, response)? {
        Response::Conditions(info) => Ok(info),
        Response::Error(e) => Err(PbcdError::ErrorResponse {
            code: e.code,
            message: e.message,
        }),
        _ => Err(PbcdError::UnexpectedResponse),
    }
}

/// Queries a publisher endpoint for its deployment parameters and
/// registrable conditions.
pub fn fetch_conditions<G: CyclicGroup>(
    group: &G,
    client: &mut RegistrationClient,
) -> Result<ConditionsInfo, PbcdError> {
    let request = Request::<G>::ConditionsQuery { attribute: None }.encode(group)?;
    let response = client.call(&request)?;
    let info = expect_conditions(group, &response)?;
    if !valid_ell(info.ell) {
        return Err(PbcdError::Wire(pbcd_docs::WireError::InvalidValue));
    }
    Ok(info)
}

/// Runs the full oblivious registration against a publisher's TCP
/// registration endpoint: queries the conditions, then registers for
/// **every** condition whose attribute matches a held token (the paper's
/// inference-resistant behaviour). Returns how many CSSs were extracted —
/// a count the publisher never learns.
pub fn register_all_via<G: CyclicGroup, K: BroadcastGkm, R: RngCore + ?Sized>(
    subscriber: &mut Subscriber<G, K>,
    group: &G,
    addr: impl ToSocketAddrs,
    rng: &mut R,
) -> Result<usize, PbcdError> {
    let mut client = RegistrationClient::connect(addr)?;
    let info = fetch_conditions(group, &mut client)?;
    let mut extracted = 0;
    for cond in &info.conditions {
        if subscriber.token_for(&cond.attribute).is_none() {
            continue;
        }
        let session = RegistrationSession::new(subscriber, group.clone(), info.ell);
        let (request, pending) = session.start(cond, rng)?;
        let response = client.call(&request)?;
        if pending.complete(&response)? {
            extracted += 1;
        }
    }
    client.close()?;
    Ok(extracted)
}

/// Requests a signed identity token for every attribute the subscriber
/// holds from an issuer endpoint ([`crate::service::IssuerService`] behind
/// a [`pbcd_net::direct::RegistrationServer`]) and installs them. Returns
/// the number of tokens installed.
pub fn fetch_tokens_via<G: CyclicGroup, K: BroadcastGkm>(
    subscriber: &mut Subscriber<G, K>,
    group: &G,
    addr: impl ToSocketAddrs,
    subject: &str,
) -> Result<usize, PbcdError> {
    let mut client = RegistrationClient::connect(addr)?;
    let attrs: Vec<(String, u64)> = subscriber
        .attributes()
        .iter()
        .map(|(n, v)| (n.to_string(), v))
        .collect();
    let mut installed = 0;
    for (attribute, value) in attrs {
        let request = Request::<G>::Issue(IssueRequest {
            subject: subject.to_string(),
            attribute,
            value,
        })
        .encode(group)?;
        let response = client.call(&request)?;
        match Response::decode(group, &response)? {
            Response::Issue(r) => {
                subscriber.install_token(r.token, r.opening)?;
                installed += 1;
            }
            Response::Error(e) => {
                return Err(PbcdError::ErrorResponse {
                    code: e.code,
                    message: e.message,
                })
            }
            _ => return Err(PbcdError::UnexpectedResponse),
        }
    }
    client.close()?;
    Ok(installed)
}
