//! Unified error type for the end-to-end system.

use pbcd_docs::{WireError, XmlError};
use pbcd_net::NetError;
use pbcd_ocbe::OcbeError;

/// Errors surfaced by the PBCD system layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PbcdError {
    /// An identity token's signature did not verify against the IdMgr key.
    BadTokenSignature,
    /// An identity-provider assertion's signature did not verify.
    BadAssertionSignature,
    /// The token's id-tag does not match the condition's attribute name.
    TagMismatch {
        /// The token's id-tag.
        token_tag: String,
        /// The condition's attribute name.
        condition_attribute: String,
    },
    /// The referenced attribute condition is not part of any policy.
    UnknownCondition,
    /// The subscriber holds no identity token for the requested attribute.
    MissingToken(String),
    /// An OCBE protocol error.
    Ocbe(OcbeError),
    /// Broadcast container or key-info bytes failed to parse.
    Wire(WireError),
    /// Document XML failed to parse.
    Xml(XmlError),
    /// Key material in a broadcast was malformed.
    MalformedKeyInfo,
    /// The subscriber is not registered / unknown pseudonym.
    UnknownSubscriber,
    /// A broker connection failed (adapters in [`crate::net`]).
    Net(NetError),
    /// The broker refused a publish with a typed reason — bad or unknown
    /// signing key, a stale/replayed epoch, or a retention cap. The broker
    /// connection stays usable; the publisher can correct and retry.
    PublishRejected {
        /// The machine-readable refusal reason.
        reason: pbcd_net::RejectReason,
        /// Human-readable detail from the broker.
        detail: String,
    },
    /// A token's pseudonym does not match the subscriber's established
    /// nym — installing it would silently corrupt the CSS store.
    NymMismatch {
        /// The nym every prior token of this subscriber carries.
        expected: String,
        /// The nym on the rejected token.
        got: String,
    },
    /// The peer answered a protocol exchange with a typed error response.
    ErrorResponse {
        /// The typed error code.
        code: crate::proto::ErrorCode,
        /// Human-readable detail from the peer.
        message: String,
    },
    /// The peer answered with a well-formed response of the wrong kind for
    /// the request that was sent.
    UnexpectedResponse,
}

impl core::fmt::Display for PbcdError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadTokenSignature => write!(f, "identity token signature invalid"),
            Self::BadAssertionSignature => write!(f, "identity assertion signature invalid"),
            Self::TagMismatch {
                token_tag,
                condition_attribute,
            } => write!(
                f,
                "token id-tag '{token_tag}' does not match condition attribute '{condition_attribute}'"
            ),
            Self::UnknownCondition => write!(f, "condition not present in any policy"),
            Self::MissingToken(tag) => write!(f, "no identity token for attribute '{tag}'"),
            Self::Ocbe(e) => write!(f, "OCBE: {e}"),
            Self::Wire(e) => write!(f, "wire: {e}"),
            Self::Xml(e) => write!(f, "xml: {e}"),
            Self::MalformedKeyInfo => write!(f, "malformed GKM key info"),
            Self::UnknownSubscriber => write!(f, "unknown subscriber"),
            Self::Net(e) => write!(f, "net: {e}"),
            Self::PublishRejected { reason, detail } => {
                write!(f, "broker rejected publish ({reason}): {detail}")
            }
            Self::NymMismatch { expected, got } => write!(
                f,
                "token nym '{got}' does not match the subscriber's nym '{expected}'"
            ),
            Self::ErrorResponse { code, message } => {
                write!(f, "peer error response ({code}): {message}")
            }
            Self::UnexpectedResponse => write!(f, "peer sent a response of the wrong kind"),
        }
    }
}

impl std::error::Error for PbcdError {}

impl From<OcbeError> for PbcdError {
    fn from(e: OcbeError) -> Self {
        Self::Ocbe(e)
    }
}

impl From<WireError> for PbcdError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

impl From<XmlError> for PbcdError {
    fn from(e: XmlError) -> Self {
        Self::Xml(e)
    }
}

impl From<NetError> for PbcdError {
    fn from(e: NetError) -> Self {
        match e {
            NetError::Rejected { reason, detail } => Self::PublishRejected { reason, detail },
            other => Self::Net(other),
        }
    }
}
