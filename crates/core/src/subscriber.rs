//! The Subscriber (paper §III): holds identity tokens and openings, runs
//! the receiver side of registration, and decrypts broadcasts with keys
//! derived from its CSSs — no key ever arrives on a channel.

use crate::error::PbcdError;
use crate::token::IdentityToken;
use pbcd_commit::Opening;
use pbcd_crypto::AuthKey;
use pbcd_docs::{parse, reassemble, BroadcastContainer, Element};
use pbcd_gkm::{AcvBgkm, BroadcastGkm};
use pbcd_group::CyclicGroup;
use pbcd_ocbe::{Envelope, OcbeSystem, ProofMessage, ProofSecrets};
use pbcd_policy::{AttributeCondition, AttributeSet, PolicySet};
use rand::RngCore;
use std::collections::BTreeMap;

/// The Subscriber, generic over the broadcast GKM scheme (default: the
/// paper's ACV-BGKM). The scheme must match the publisher's.
pub struct Subscriber<G: CyclicGroup, K: BroadcastGkm = AcvBgkm> {
    nym: Option<String>,
    /// The subscriber's private attribute values (never sent anywhere).
    attributes: AttributeSet,
    /// id-tag → (token, opening).
    tokens: BTreeMap<String, (IdentityToken<G>, Opening)>,
    /// Conditions whose CSS was successfully extracted.
    css_store: BTreeMap<AttributeCondition, Vec<u8>>,
    gkm: K,
}

impl<G: CyclicGroup> Subscriber<G> {
    /// Creates an ACV-BGKM subscriber with its private attribute set.
    pub fn new(attributes: AttributeSet) -> Self {
        Self::with_gkm(attributes, AcvBgkm::default())
    }
}

impl<G: CyclicGroup, K: BroadcastGkm> Subscriber<G, K> {
    /// Creates a subscriber deriving keys with an explicit GKM scheme.
    pub fn with_gkm(attributes: AttributeSet, gkm: K) -> Self {
        Self {
            nym: None,
            attributes,
            tokens: BTreeMap::new(),
            css_store: BTreeMap::new(),
            gkm,
        }
    }

    /// The subscriber's pseudonym, once a token has been installed.
    pub fn nym(&self) -> Option<&str> {
        self.nym.as_deref()
    }

    /// The private attribute set.
    pub fn attributes(&self) -> &AttributeSet {
        &self.attributes
    }

    /// Installs an identity token received from the IdMgr.
    ///
    /// All of a subscriber's tokens must carry the same pseudonym; a
    /// mismatched-nym token is rejected with [`PbcdError::NymMismatch`]
    /// (in release builds it would otherwise silently corrupt the CSS
    /// store, since stored CSSs are keyed by the first-installed nym).
    pub fn install_token(
        &mut self,
        token: IdentityToken<G>,
        opening: Opening,
    ) -> Result<(), PbcdError> {
        match &self.nym {
            Some(n) if *n != token.nym => {
                return Err(PbcdError::NymMismatch {
                    expected: n.clone(),
                    got: token.nym.clone(),
                })
            }
            Some(_) => {}
            None => self.nym = Some(token.nym.clone()),
        }
        self.tokens.insert(token.id_tag.clone(), (token, opening));
        Ok(())
    }

    /// Installs a §VI-A decoy token for an attribute this subscriber does
    /// not actually hold, letting it register for conditions on that
    /// attribute (hiding which attributes it possesses) without ever being
    /// able to open the envelopes.
    pub fn install_decoy_token(
        &mut self,
        token: IdentityToken<G>,
        opening: Opening,
        decoy_value: u64,
    ) -> Result<(), PbcdError> {
        let tag = token.id_tag.clone();
        self.install_token(token, opening)?;
        self.attributes.set(&tag, decoy_value);
        Ok(())
    }

    /// The token for an attribute, if any.
    pub fn token_for(&self, attribute: &str) -> Option<&IdentityToken<G>> {
        self.tokens.get(attribute).map(|(t, _)| t)
    }

    /// Number of CSSs successfully extracted so far.
    pub fn css_count(&self) -> usize {
        self.css_store.len()
    }

    /// True iff the CSS for `cond` was extracted.
    pub fn has_css(&self, cond: &AttributeCondition) -> bool {
        self.css_store.contains_key(cond)
    }

    /// Receiver phase 1 of registration for one condition: build the OCBE
    /// proof message from the matching token.
    ///
    /// Low-level primitive: prefer [`crate::session::RegistrationSession`],
    /// which pairs this with [`Self::complete_registration`] through the
    /// type system and speaks the byte-level [`crate::proto`] messages.
    pub fn prepare_registration<R: RngCore + ?Sized>(
        &self,
        ocbe: &OcbeSystem<G>,
        cond: &AttributeCondition,
        rng: &mut R,
    ) -> Result<(ProofMessage<G>, ProofSecrets), PbcdError> {
        let (_, opening) = self
            .tokens
            .get(&cond.attribute)
            .ok_or_else(|| PbcdError::MissingToken(cond.attribute.clone()))?;
        let x = self
            .attributes
            .get(&cond.attribute)
            .ok_or_else(|| PbcdError::MissingToken(cond.attribute.clone()))?;
        Ok(ocbe.receiver_prepare(x, opening, &cond.predicate(), rng)?)
    }

    /// Receiver phase 2: try to open the envelope; store the CSS on
    /// success. Returns whether the CSS was extracted — information only
    /// the subscriber ever has.
    ///
    /// Low-level primitive: prefer [`crate::session::PendingRegistration`],
    /// which makes completing an unstarted registration (or reusing proof
    /// secrets) a compile-time error.
    pub fn complete_registration(
        &mut self,
        ocbe: &OcbeSystem<G>,
        cond: &AttributeCondition,
        envelope: &Envelope<G>,
        secrets: &ProofSecrets,
    ) -> bool {
        let Some((_, opening)) = self.tokens.get(&cond.attribute) else {
            return false;
        };
        match ocbe.receiver_open(envelope, opening, secrets) {
            Some(css) => {
                self.css_store.insert(cond.clone(), css);
                true
            }
            None => false,
        }
    }

    /// Directly installs a CSS (test hook for adversarial scenarios).
    pub fn inject_css(&mut self, cond: &AttributeCondition, css: Vec<u8>) {
        self.css_store.insert(cond.clone(), css);
    }

    /// A copy of the stored CSS for `cond` (test hook for collusion
    /// scenarios — a real subscriber has no reason to export secrets).
    pub fn css_snapshot(&self, cond: &AttributeCondition) -> Option<Vec<u8>> {
        self.css_store.get(cond).cloned()
    }

    /// Updates a private attribute value (e.g. a promotion); the subscriber
    /// must then obtain a fresh token and re-register to act on it.
    pub fn update_attribute(&mut self, name: &str, value: u64) {
        self.attributes.set(name, value);
    }

    /// The CSS concatenation for an ACP's condition list, if fully held.
    fn css_concat(&self, conds: &[AttributeCondition]) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        for c in conds {
            out.extend_from_slice(self.css_store.get(c)?);
        }
        Some(out)
    }

    /// Decrypts everything this subscriber can from a broadcast and
    /// reassembles the document, redacting the rest.
    ///
    /// For each encrypted group the subscriber identifies the policy
    /// configuration from the (public) segment tags, picks an ACP whose
    /// CSSs it holds, derives the key and decrypts — exactly the paper's
    /// "Decryption Key Derivation" procedure.
    pub fn decrypt_broadcast(
        &self,
        container: &BroadcastContainer,
        policies: &PolicySet,
    ) -> Result<Element, PbcdError> {
        let skeleton = parse(&container.skeleton_xml)?;
        let mut recovered: BTreeMap<u32, Element> = BTreeMap::new();
        for group in &container.groups {
            if group.key_info.is_empty() || group.segments.is_empty() {
                continue;
            }
            // Undecodable key info fails closed: the group stays redacted
            // (like the empty-configuration case above) rather than one
            // corrupted group — e.g. from a hostile broker — erroring out
            // the decryptable remainder of the broadcast.
            let Some(info) = self.gkm.decode_info(&group.key_info) else {
                continue;
            };
            let nym = self.nym.as_deref().unwrap_or("");
            let pc = policies.configuration_of(&group.segments[0].tag);
            // Try each member ACP whose CSSs we hold until one key checks out.
            for acp_id in pc.acp_ids() {
                let Some(acp) = policies.get(acp_id) else {
                    continue;
                };
                let Some(css_concat) = self.css_concat(&acp.conditions) else {
                    continue;
                };
                let Some(key_bytes) = self.gkm.derive_key(&info, nym, &css_concat) else {
                    continue;
                };
                let key = AuthKey::from_master(&key_bytes);
                let mut ok = true;
                let mut decrypted = Vec::with_capacity(group.segments.len());
                for seg in &group.segments {
                    match key.decrypt(&seg.ciphertext) {
                        Ok(plain) => {
                            let xml = String::from_utf8(plain)
                                .map_err(|_| PbcdError::MalformedKeyInfo)?;
                            decrypted.push((seg.segment_id, parse(&xml)?));
                        }
                        Err(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    recovered.extend(decrypted);
                    break;
                }
            }
        }
        Ok(reassemble(&skeleton, &recovered))
    }

    /// Which segment tags of a broadcast this subscriber could decrypt
    /// (diagnostic helper for examples and tests).
    pub fn accessible_tags(
        &self,
        container: &BroadcastContainer,
        policies: &PolicySet,
    ) -> Vec<String> {
        let Ok(doc) = self.decrypt_broadcast(container, policies) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for group in &container.groups {
            for seg in &group.segments {
                if doc.find(&seg.tag).is_some() {
                    out.push(seg.tag.clone());
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}
