//! Identity Providers (paper §III): issue certified identity attributes.
//!
//! An IdP vouches that a subject holds an attribute value (e.g. the DMV
//! vouching for a birthdate). Assertions are shown to the Identity Manager
//! — never to the publisher — during token issuance.

use pbcd_group::{CyclicGroup, Signature, SigningKey, VerifyingKey};
use rand::RngCore;

/// A signed statement "`subject`'s `attribute` has `value`".
pub struct AttributeAssertion<G: CyclicGroup> {
    /// The real-world subject identifier (only the IdMgr sees this).
    pub subject: String,
    /// Attribute name.
    pub attribute: String,
    /// Attribute value (integer-encoded).
    pub value: u64,
    /// IdP signature.
    pub signature: Signature<G>,
}

// Manual impls: a derive would wrongly require `G: Clone + Debug` even
// though only the signature's element type matters.
impl<G: CyclicGroup> Clone for AttributeAssertion<G> {
    fn clone(&self) -> Self {
        Self {
            subject: self.subject.clone(),
            attribute: self.attribute.clone(),
            value: self.value,
            signature: self.signature.clone(),
        }
    }
}

impl<G: CyclicGroup> core::fmt::Debug for AttributeAssertion<G> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "AttributeAssertion(subject={}, attribute={}, value={})",
            self.subject, self.attribute, self.value
        )
    }
}

/// An identity provider with a Schnorr signing key.
pub struct IdentityProvider<G: CyclicGroup> {
    group: G,
    name: String,
    key: SigningKey<G>,
}

impl<G: CyclicGroup> IdentityProvider<G> {
    /// Creates a provider with a fresh key pair.
    pub fn new<R: RngCore + ?Sized>(group: G, name: &str, rng: &mut R) -> Self {
        Self {
            key: SigningKey::generate(&group, rng),
            group,
            name: name.to_string(),
        }
    }

    /// The provider's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The provider's verification key (distributed to IdMgrs out of band).
    pub fn verifying_key(&self) -> VerifyingKey<G> {
        self.key.verifying_key()
    }

    /// Issues a signed attribute assertion.
    pub fn assert_attribute<R: RngCore + ?Sized>(
        &self,
        subject: &str,
        attribute: &str,
        value: u64,
        rng: &mut R,
    ) -> AttributeAssertion<G> {
        let payload = assertion_payload(subject, attribute, value);
        AttributeAssertion {
            subject: subject.to_string(),
            attribute: attribute.to_string(),
            value,
            signature: self.key.sign(&self.group, rng, &payload),
        }
    }
}

/// Canonical byte string the IdP signs.
pub fn assertion_payload(subject: &str, attribute: &str, value: u64) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(b"pbcd-attribute-assertion-v1\0");
    payload.extend_from_slice(&(subject.len() as u32).to_be_bytes());
    payload.extend_from_slice(subject.as_bytes());
    payload.extend_from_slice(&(attribute.len() as u32).to_be_bytes());
    payload.extend_from_slice(attribute.as_bytes());
    payload.extend_from_slice(&value.to_be_bytes());
    payload
}

impl<G: CyclicGroup> AttributeAssertion<G> {
    /// Verifies against the issuing IdP's key.
    pub fn verify(&self, group: &G, idp_key: &VerifyingKey<G>) -> bool {
        let payload = assertion_payload(&self.subject, &self.attribute, self.value);
        idp_key.verify(group, &payload, &self.signature)
    }
}
