//! Property-based tests for the group backends: abelian-group laws,
//! exponent homomorphisms and serialization, driven by random scalars.

use pbcd_group::{CyclicGroup, P256Group, SigningKey};
use proptest::prelude::*;
use rand::SeedableRng;

fn p256() -> P256Group {
    P256Group::new()
}

proptest! {
    // EC scalar multiplications are ~100 µs each; keep case counts small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn group_laws_hold(seed in any::<u64>()) {
        let g = p256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = g.exp_g(&g.random_scalar(&mut rng));
        let b = g.exp_g(&g.random_scalar(&mut rng));
        let c = g.exp_g(&g.random_scalar(&mut rng));
        prop_assert_eq!(g.op(&a, &b), g.op(&b, &a));
        prop_assert_eq!(g.op(&g.op(&a, &b), &c), g.op(&a, &g.op(&b, &c)));
        prop_assert_eq!(g.op(&a, &g.identity()), a.clone());
        prop_assert_eq!(g.op(&a, &g.inv(&a)), g.identity());
        prop_assert_eq!(g.inv(&g.inv(&a)), a);
    }

    #[test]
    fn exponentiation_is_homomorphic(seed in any::<u64>()) {
        let g = p256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = g.random_scalar(&mut rng);
        let y = g.random_scalar(&mut rng);
        // g^(x+y) = g^x · g^y
        prop_assert_eq!(g.exp_g(&(&x + &y)), g.op(&g.exp_g(&x), &g.exp_g(&y)));
        // (g^x)^y = g^(x·y)
        prop_assert_eq!(g.exp(&g.exp_g(&x), &y), g.exp_g(&(&x * &y)));
        // g^(-x) = (g^x)^{-1}
        prop_assert_eq!(g.exp_g(&-&x), g.inv(&g.exp_g(&x)));
    }

    #[test]
    fn serialization_roundtrips(seed in any::<u64>()) {
        let g = p256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = g.exp_g(&g.random_scalar(&mut rng));
        prop_assert_eq!(g.deserialize(&g.serialize(&p)), Some(p));
    }

    #[test]
    fn corrupted_points_rejected(seed in any::<u64>(), byte in 1usize..64, flip in 1u8..=255) {
        let g = p256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = g.exp_g(&g.random_scalar(&mut rng));
        let mut enc = g.serialize(&p);
        enc[byte] ^= flip;
        // Either rejected, or (vanishingly unlikely) another valid point —
        // never the original.
        if let Some(q) = g.deserialize(&enc) {
            prop_assert_ne!(q, p);
        }
    }

    #[test]
    fn hash_to_group_separates_inputs(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let g = p256();
        let pa = g.hash_to_group("prop", &a.to_be_bytes());
        let pb = g.hash_to_group("prop", &b.to_be_bytes());
        prop_assert_ne!(pa, pb);
    }

    #[test]
    fn signatures_verify_and_bind_messages(seed in any::<u64>(), m1 in any::<[u8; 16]>(), m2 in any::<[u8; 16]>()) {
        let g = p256();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let key = SigningKey::generate(&g, &mut rng);
        let vk = key.verifying_key();
        let sig = key.sign(&g, &mut rng, &m1);
        prop_assert!(vk.verify(&g, &m1, &sig));
        if m1 != m2 {
            prop_assert!(!vk.verify(&g, &m2, &sig));
        }
    }
}
