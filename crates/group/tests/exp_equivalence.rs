//! Equivalence suite for the fast exponentiation paths: every optimized
//! route (sliding-window/wNAF `exp`, fixed-base `exp_g`/`exp_h`, Straus
//! `exp2`, `pedersen_gh`, `prod_pow2`) must agree **bit-identically** with
//! the naive double-and-add reference ladder, on both backends, for
//! random scalars and the edge exponents `0, 1, 2, q−1`. Also pins down
//! table-rebuild behaviour across clones/fresh instances and
//! cross-instance serialization stability.

use pbcd_group::{CyclicGroup, ModpGroup, P256Group, Scalar};
use pbcd_math::U256;
use proptest::prelude::*;
use rand::SeedableRng;

/// The naive reference ladder, dispatched per backend.
trait NaiveExp: CyclicGroup {
    fn reference_exp(&self, base: &Self::Elem, k: &U256) -> Self::Elem;
}

impl NaiveExp for P256Group {
    fn reference_exp(&self, base: &Self::Elem, k: &U256) -> Self::Elem {
        self.exp_naive(base, k)
    }
}

impl NaiveExp for ModpGroup {
    fn reference_exp(&self, base: &Self::Elem, k: &U256) -> Self::Elem {
        self.exp_naive(base, k)
    }
}

/// Random scalars plus the protocol-relevant edges.
fn scalar_cases<G: CyclicGroup>(group: &G, seed: u64, random: usize) -> Vec<Scalar> {
    let sc = group.scalar_ctx().clone();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = vec![
        sc.zero(),
        sc.one(),
        sc.from_u64(2),
        sc.from_uint(&group.order().wrapping_sub(&U256::one())), // q − 1
    ];
    out.extend((0..random).map(|_| group.random_scalar(&mut rng)));
    out
}

fn check_all_paths<G: NaiveExp>(group: &G, seed: u64, random: usize) {
    let g = group.generator();
    let h = group.pedersen_h();
    let cases = scalar_cases(group, seed, random);
    for x in &cases {
        let xu = x.to_uint();
        // Fixed-base paths against the naive ladder.
        assert_eq!(group.exp_g(x), group.reference_exp(&g, &xu), "exp_g");
        assert_eq!(group.exp_h(x), group.reference_exp(&h, &xu), "exp_h");
        // Variable-base wNAF/sliding-window against the naive ladder,
        // including a non-generator base.
        let base = group.reference_exp(&h, &U256::from_u64(3));
        assert_eq!(group.exp(&base, x), group.reference_exp(&base, &xu), "exp");
        assert_eq!(
            group.exp_uint(&base, &xu),
            group.reference_exp(&base, &xu),
            "exp_uint"
        );
    }
    // Two-scalar paths over the case cross-product (bounded).
    for (i, x) in cases.iter().enumerate() {
        let y = &cases[(i + 3) % cases.len()];
        let a = group.reference_exp(&g, &U256::from_u64(5));
        let b = group.reference_exp(&h, &U256::from_u64(7));
        let naive2 = group.op(
            &group.reference_exp(&a, &x.to_uint()),
            &group.reference_exp(&b, &y.to_uint()),
        );
        assert_eq!(group.exp2(&a, x, &b, y), naive2, "exp2");
        let naive_gh = group.op(
            &group.reference_exp(&g, &x.to_uint()),
            &group.reference_exp(&h, &y.to_uint()),
        );
        assert_eq!(group.pedersen_gh(x, y), naive_gh, "pedersen_gh");
    }
}

#[test]
fn p256_all_paths_match_reference() {
    check_all_paths(&P256Group::new(), 0xA11CE, 12);
}

#[test]
fn modp_all_paths_match_reference() {
    check_all_paths(&ModpGroup::new(), 0xB0B, 6);
}

fn check_prod_pow2<G: NaiveExp>(group: &G, seed: u64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for len in [0usize, 1, 2, 7, 48] {
        let elems: Vec<G::Elem> = (0..len)
            .map(|i| {
                if i == 2 {
                    group.identity() // exercise identity operands mid-chain
                } else {
                    group.exp_g(&group.random_scalar(&mut rng))
                }
            })
            .collect();
        // Naive Horner fold with plain ops.
        let mut expect = group.identity();
        for e in elems.iter().rev() {
            expect = group.op(&group.op(&expect, &expect), e);
        }
        assert_eq!(group.prod_pow2(&elems), expect, "len={len}");
    }
}

#[test]
fn p256_prod_pow2_matches_naive_fold() {
    check_prod_pow2(&P256Group::new(), 0x9A9A);
}

#[test]
fn modp_prod_pow2_matches_naive_fold() {
    check_prod_pow2(&ModpGroup::new(), 0x9B9B);
}

/// Pippenger `msm` against per-term naive exponentiation: the width edges
/// (0, 1, 2, ℓ=48 and a 256-wide batch crossing the window-choice
/// boundary), zero scalars sprinkled mid-batch, and the q−1 edge.
fn check_msm<G: NaiveExp>(group: &G, seed: u64) {
    let sc = group.scalar_ctx().clone();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for len in [0usize, 1, 2, 48, 256] {
        let terms: Vec<(G::Elem, Scalar)> = (0..len)
            .map(|i| {
                let base = group.exp_g(&group.random_scalar(&mut rng));
                let k = match i % 5 {
                    0 => sc.zero(),
                    1 => sc.from_uint(&group.order().wrapping_sub(&U256::one())), // q − 1
                    _ => group.random_scalar(&mut rng),
                };
                (base, k)
            })
            .collect();
        let mut expect = group.identity();
        for (base, k) in &terms {
            expect = group.op(&expect, &group.reference_exp(base, &k.to_uint()));
        }
        assert_eq!(group.msm(&terms), expect, "msm len={len}");
    }
}

#[test]
fn p256_msm_matches_naive_composition() {
    check_msm(&P256Group::new(), 0x3531);
}

#[test]
fn modp_msm_matches_naive_composition() {
    check_msm(&ModpGroup::new(), 0x3532);
}

/// Batch Schnorr verification: all-valid accepts, one forged member
/// rejects the whole batch, the empty batch is vacuously true — on both
/// backends, against signatures produced by the ordinary signing path.
fn check_verify_batch<G: CyclicGroup>(group: &G, seed: u64) {
    use pbcd_group::{verify_batch, SigningKey};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let keys: Vec<SigningKey<G>> = (0..5)
        .map(|_| SigningKey::generate(group, &mut rng))
        .collect();
    let msgs: Vec<Vec<u8>> = (0..5)
        .map(|i| format!("batch item {i}").into_bytes())
        .collect();
    let sigs: Vec<_> = keys
        .iter()
        .zip(&msgs)
        .map(|(k, m)| k.sign(group, &mut rng, m))
        .collect();
    let vks: Vec<_> = keys.iter().map(|k| k.verifying_key()).collect();
    let batch: Vec<(
        &pbcd_group::VerifyingKey<G>,
        &[u8],
        &pbcd_group::Signature<G>,
    )> = vks
        .iter()
        .zip(&msgs)
        .zip(&sigs)
        .map(|((vk, m), s)| (vk, m.as_slice(), s))
        .collect();
    assert!(verify_batch(group, &batch), "all-valid batch accepts");
    assert!(
        verify_batch::<G>(group, &[]),
        "empty batch is vacuously true"
    );
    assert!(verify_batch(group, &batch[..1]), "singleton accepts");
    // Forge member 2: a signature from the wrong key over the same message.
    let forged = keys[0].sign(group, &mut rng, &msgs[2]);
    let mut bad = batch.clone();
    bad[2] = (bad[2].0, bad[2].1, &forged);
    assert!(
        !verify_batch(group, &bad),
        "one forged member rejects the batch"
    );
    // Tampered message under a genuine signature also rejects.
    let mut tampered = batch.clone();
    tampered[4] = (tampered[4].0, b"not what was signed", tampered[4].2);
    assert!(!verify_batch(group, &tampered), "tampered message rejects");
}

#[test]
fn p256_verify_batch_soundness() {
    check_verify_batch(&P256Group::new(), 0x5161);
}

#[test]
fn modp_verify_batch_soundness() {
    check_verify_batch(&ModpGroup::new(), 0x5162);
}

/// Known-answer pins for the dedicated P-256 field kernel: the Montgomery
/// representation must round-trip the curve constants, and the kernel's
/// mul/sqr/inv agree with an independent [`pbcd_math::MontCtx`] over the
/// same prime.
#[test]
fn p256_field_kernel_pins() {
    use pbcd_group::p256_field as fk;
    use pbcd_math::U256;
    // p = 2^256 − 2^224 + 2^192 + 2^96 − 1 (NIST P-256 field prime).
    let p = U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
        .expect("p parses");
    assert_eq!(U256::from_limbs(fk::P), p, "kernel P constant");
    // R = 2^256 mod p; the kernel's ONE is R (Montgomery form of 1).
    // 0 − p wraps to 2^256 − p, and p > 2^255 makes that already reduced.
    let r_mod_p = U256::from_u64(0).wrapping_sub(&p);
    assert_eq!(U256::from_limbs(fk::ONE), r_mod_p, "kernel ONE is R mod p");
    assert_eq!(fk::one(), U256::from_limbs(fk::ONE));
}

/// Clones share the lazily built tables through the same `Arc`; fresh
/// instances rebuild them from scratch. Either way the results — and the
/// canonical encodings — must be identical.
#[test]
fn tables_survive_clone_and_rebuild_identically() {
    fn check<G: NaiveExp>(mk: impl Fn() -> G) {
        let original = mk();
        let sc = original.scalar_ctx().clone();
        let k = sc.from_u64(0xDECA_FBAD);
        // Populate the tables on the original, then exp through a clone.
        let via_original = original.exp_g(&k);
        let clone = original.clone();
        assert_eq!(clone.exp_g(&k), via_original);
        assert_eq!(clone.exp_h(&k), original.exp_h(&k));
        // A fresh instance rebuilds its own tables; same results, and the
        // serialized forms agree byte-for-byte across instances.
        let fresh = mk();
        let via_fresh = fresh.exp_g(&k);
        assert_eq!(via_fresh, via_original);
        assert_eq!(
            fresh.serialize(&via_fresh),
            original.serialize(&via_original)
        );
        assert_eq!(
            original.deserialize(&fresh.serialize(&via_fresh)),
            Some(via_original)
        );
    }
    check(P256Group::new);
    check(ModpGroup::new);
}

/// The encodings of fixed small multiples of `g` must never drift across
/// backends or optimizations — registration tokens, proofs and envelopes
/// are all serialized group elements.
#[test]
fn serialization_stability_pins() {
    let p256 = P256Group::new();
    let sc = p256.scalar_ctx().clone();
    // 2·G on P-256 (SEC1 uncompressed) — an independently known constant.
    let two_g = p256.serialize(&p256.exp_g(&sc.from_u64(2)));
    assert_eq!(two_g.len(), 65);
    assert_eq!(
        two_g[..5],
        [0x04, 0x7c, 0xf2, 0x7b, 0x18],
        "2G x-coordinate prefix"
    );
    let modp = ModpGroup::new();
    let msc = modp.scalar_ctx().clone();
    let enc = modp.serialize(&modp.exp_g(&msc.from_u64(2)));
    assert_eq!(enc.len(), 128);
    // g² must equal g·g through the completely separate op path.
    let g = modp.generator();
    assert_eq!(enc, modp.serialize(&modp.op(&g, &g)));
}

proptest! {
    // EC scalar multiplications are ~100 µs each; keep case counts small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn p256_random_scalar_equivalence(seed in any::<u64>()) {
        let g = P256Group::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = g.random_scalar(&mut rng);
        let y = g.random_scalar(&mut rng);
        let gen = g.generator();
        prop_assert_eq!(g.exp_g(&x), g.exp_naive(&gen, &x.to_uint()));
        let base = g.exp_g(&y);
        prop_assert_eq!(g.exp(&base, &x), g.exp_naive(&base, &x.to_uint()));
        let naive2 = g.op(
            &g.exp_naive(&gen, &x.to_uint()),
            &g.exp_naive(&base, &y.to_uint()),
        );
        prop_assert_eq!(g.exp2(&gen, &x, &base, &y), naive2);
    }

    /// The dedicated field kernel's lazy Montgomery reduction must agree
    /// limb-for-limb with the generic [`pbcd_math::MontCtx`] over the same
    /// prime, on every exported operation, for random residues.
    #[test]
    fn p256_field_kernel_matches_montctx(seed in any::<u64>()) {
        use pbcd_group::p256_field as fk;
        use pbcd_math::MontCtx;
        use rand::RngCore;
        let p = U256::from_limbs(fk::P);
        let ctx = MontCtx::new(p);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rand_elem = || {
            let mut limbs = [0u64; 4];
            for l in &mut limbs {
                *l = rng.next_u64();
            }
            U256::from_limbs(limbs).div_rem(&p).1
        };
        let a = rand_elem();
        let b = rand_elem();
        prop_assert_eq!(fk::mul(&a, &b), ctx.mont_mul(&a, &b));
        prop_assert_eq!(fk::sqr(&a), ctx.mont_sqr(&a));
        prop_assert_eq!(fk::add(&a, &b), ctx.add(&a, &b));
        prop_assert_eq!(fk::sub(&a, &b), ctx.sub(&a, &b));
        prop_assert_eq!(fk::neg(&a), ctx.neg(&a));
        prop_assert_eq!(fk::dbl(&a), ctx.double(&a));
        if a != U256::from_u64(0) {
            prop_assert_eq!(fk::inv(&a), ctx.inv(&a));
            prop_assert_eq!(fk::inv_vartime(&a), ctx.inv(&a));
        }
        // Interpreting inputs as Montgomery forms: stripping the R factor
        // from the kernel product recovers the plain modular product.
        prop_assert_eq!(
            ctx.from_mont(&fk::mul(&ctx.to_mont(&a), &ctx.to_mont(&b))),
            a.mul_mod(&b, &p)
        );
    }

    #[test]
    fn modp_random_scalar_equivalence(seed in any::<u64>()) {
        let g = ModpGroup::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = g.random_scalar(&mut rng);
        let y = g.random_scalar(&mut rng);
        let gen = g.generator();
        prop_assert_eq!(g.exp_g(&x), g.exp_naive(&gen, &x.to_uint()));
        let base = g.exp_h(&y);
        prop_assert_eq!(g.exp(&base, &x), g.exp_naive(&base, &x.to_uint()));
        prop_assert_eq!(
            g.pedersen_gh(&x, &y),
            g.op(&g.exp_naive(&gen, &x.to_uint()), &g.exp_naive(&g.pedersen_h(), &y.to_uint()))
        );
    }
}
