//! Schnorr signatures over any [`CyclicGroup`] backend.
//!
//! The Identity Manager signs identity tokens (`σ` in the paper's
//! `IT = (nym, id-tag, c, σ)`); the publisher verifies them during
//! registration. The scheme is the standard Fiat–Shamir Schnorr signature
//! in its **nonce-commitment form**: `R = g^k`, `e = H(R ‖ m)`,
//! `s = k + e·sk`, signature `(R, s)`.
//!
//! Transmitting `R` (rather than the challenge `e`) makes the verification
//! equation `g^s = R · pk^e` *linear* in the signature, which is what
//! enables [`verify_batch`]: a random linear combination of `n` such
//! equations collapses to a single multi-scalar multiplication of width
//! `2n + 1` ([`CyclicGroup::msm`]) instead of `n` double exponentiations.

use crate::traits::{CyclicGroup, Scalar};
use pbcd_crypto::Sha256;
use rand::RngCore;

/// A Schnorr signing/verification key pair.
#[derive(Clone)]
pub struct SigningKey<G: CyclicGroup> {
    sk: Scalar,
    pk: G::Elem,
}

/// The public half of a [`SigningKey`].
pub struct VerifyingKey<G: CyclicGroup> {
    pk: G::Elem,
}

// Manual impls avoid requiring `G: PartialEq`/`Debug` — only the element
// (always comparable per the trait bounds) matters.
impl<G: CyclicGroup> Clone for VerifyingKey<G> {
    fn clone(&self) -> Self {
        Self {
            pk: self.pk.clone(),
        }
    }
}

impl<G: CyclicGroup> PartialEq for VerifyingKey<G> {
    fn eq(&self, other: &Self) -> bool {
        self.pk == other.pk
    }
}

impl<G: CyclicGroup> Eq for VerifyingKey<G> {}

impl<G: CyclicGroup> core::fmt::Debug for VerifyingKey<G> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "VerifyingKey({:?})", self.pk)
    }
}

/// A Schnorr signature `(R, s)`: the nonce commitment `R = g^k` and the
/// response scalar `s`.
pub struct Signature<G: CyclicGroup> {
    /// Nonce commitment `R = g^k`.
    pub big_r: G::Elem,
    /// Response scalar `s = k + e·sk`.
    pub s: Scalar,
}

impl<G: CyclicGroup> Clone for Signature<G> {
    fn clone(&self) -> Self {
        Self {
            big_r: self.big_r.clone(),
            s: self.s.clone(),
        }
    }
}

impl<G: CyclicGroup> PartialEq for Signature<G> {
    fn eq(&self, other: &Self) -> bool {
        self.big_r == other.big_r && self.s == other.s
    }
}

impl<G: CyclicGroup> Eq for Signature<G> {}

impl<G: CyclicGroup> core::fmt::Debug for Signature<G> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Signature(R={:?}, s={:?})", self.big_r, self.s)
    }
}

impl<G: CyclicGroup> SigningKey<G> {
    /// Generates a fresh key pair.
    pub fn generate<R: RngCore + ?Sized>(group: &G, rng: &mut R) -> Self {
        let sk = group.random_nonzero_scalar(rng);
        let pk = group.exp_g(&sk);
        Self { sk, pk }
    }

    /// The verification key.
    pub fn verifying_key(&self) -> VerifyingKey<G> {
        VerifyingKey {
            pk: self.pk.clone(),
        }
    }

    /// Signs a message.
    pub fn sign<R: RngCore + ?Sized>(&self, group: &G, rng: &mut R, msg: &[u8]) -> Signature<G> {
        let k = group.random_nonzero_scalar(rng);
        let big_r = group.exp_g(&k);
        let e = challenge(group, &big_r, msg);
        let s = &k + &(&e * &self.sk);
        Signature { big_r, s }
    }
}

impl<G: CyclicGroup> VerifyingKey<G> {
    /// Wraps a raw public key element.
    pub fn from_element(pk: G::Elem) -> Self {
        Self { pk }
    }

    /// The raw public key element.
    pub fn element(&self) -> &G::Elem {
        &self.pk
    }

    /// Canonical encoding of the public key.
    pub fn serialize(&self, group: &G) -> Vec<u8> {
        group.serialize(&self.pk)
    }

    /// Parses and validates an encoded public key.
    pub fn deserialize(group: &G, bytes: &[u8]) -> Option<Self> {
        group.deserialize(bytes).map(|pk| Self { pk })
    }

    /// Verifies a signature: recompute the challenge from the transmitted
    /// nonce commitment and check `g^s · pk^{−e} = R`. The double
    /// exponentiation runs as one Straus/Shamir chain
    /// ([`CyclicGroup::exp2`]) rather than two independent ladders.
    pub fn verify(&self, group: &G, msg: &[u8], sig: &Signature<G>) -> bool {
        let e = challenge(group, &sig.big_r, msg);
        group.exp2(&group.generator(), &sig.s, &self.pk, &(-&e)) == sig.big_r
    }
}

/// The Fiat–Shamir challenge `e = H(tag ‖ backend ‖ R ‖ m)`, reduced into
/// the scalar field. Public so that batch callers and tests can recompute
/// the per-item challenges a verifier would derive.
pub fn challenge<G: CyclicGroup>(group: &G, big_r: &G::Elem, msg: &[u8]) -> Scalar {
    let mut h = Sha256::new();
    h.update(b"pbcd-schnorr-v1:");
    h.update(group.name().as_bytes());
    h.update(&group.serialize(big_r));
    h.update(msg);
    group.scalar_ctx().from_be_bytes_reduced(&h.finalize())
}

/// Batch verification of `(pk, msg, sig)` triples with one
/// random-linear-combination check.
///
/// Every valid signature satisfies `g^{sᵢ} · Rᵢ^{−1} · pkᵢ^{−eᵢ} = 1`.
/// Call the left-hand side `δᵢ`; the batch check verifies
/// `Π δᵢ^{zᵢ} = 1` for coefficients `zᵢ` derived by hashing the *entire
/// batch transcript* (every key, message and signature) — so an adversary
/// must commit to all signatures before learning any coefficient, and
/// slipping in a forged signature (`δⱼ ≠ 1`) passes only if `zⱼ` happens
/// to hit the discrete log of `Π_{i≠j} δᵢ^{−zᵢ}` base `δⱼ` — probability
/// `1/q` over the coefficient space, i.e. negligible. Rearranged, the
/// whole check is a single width-`2n + 1` multi-scalar multiplication:
///
/// ```text
/// Π Rᵢ^{zᵢ} · Π pkᵢ^{zᵢ·eᵢ} · g^{−Σ zᵢ·sᵢ} == identity
/// ```
///
/// An empty batch is vacuously valid. A `false` result only says *some*
/// signature in the batch is invalid; callers that need to attribute the
/// failure re-verify items individually ([`VerifyingKey::verify`]).
pub fn verify_batch<G: CyclicGroup>(
    group: &G,
    items: &[(&VerifyingKey<G>, &[u8], &Signature<G>)],
) -> bool {
    if items.is_empty() {
        return true;
    }
    // One item: the RLC degenerates to scaling a single verification
    // equation, so check it directly.
    if let [(vk, msg, sig)] = items {
        return vk.verify(group, msg, sig);
    }
    let sc = group.scalar_ctx();
    // Bind the coefficients to the full transcript.
    let mut t = Sha256::new();
    t.update(b"pbcd-schnorr-batch-v1:");
    t.update(group.name().as_bytes());
    for (vk, msg, sig) in items {
        t.update(&group.serialize(&vk.pk));
        t.update(&(msg.len() as u64).to_be_bytes());
        t.update(msg);
        t.update(&group.serialize(&sig.big_r));
        t.update(&sig.s.to_be_bytes());
    }
    let transcript = t.finalize();

    let mut terms = Vec::with_capacity(2 * items.len() + 1);
    let mut s_acc = sc.zero();
    for (i, (vk, msg, sig)) in items.iter().enumerate() {
        let mut h = Sha256::new();
        h.update(b"pbcd-schnorr-batch-coef:");
        h.update(&transcript);
        h.update(&(i as u64).to_be_bytes());
        let z = sc.from_be_bytes_reduced(&h.finalize());
        if z.is_zero() {
            // Probability 1/q; a zero coefficient would let item i skate.
            return items
                .iter()
                .all(|(vk, msg, sig)| vk.verify(group, msg, sig));
        }
        let e = challenge(group, &sig.big_r, msg);
        s_acc = &s_acc + &(&z * &sig.s);
        terms.push((sig.big_r.clone(), z.clone()));
        terms.push((vk.pk.clone(), &z * &e));
    }
    terms.push((group.generator(), -&s_acc));
    group.is_identity(&group.msm(&terms))
}

impl<G: CyclicGroup> Signature<G> {
    /// Canonical encoding: the group encoding of `R` followed by the
    /// 32-byte big-endian `s` (97 bytes total on P-256).
    pub fn to_bytes(&self, group: &G) -> Vec<u8> {
        let mut out = group.serialize(&self.big_r);
        out.extend_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses the layout produced by [`Signature::to_bytes`], validating
    /// that `R` is a group element and `s` a canonical scalar.
    pub fn from_bytes(group: &G, bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 33 {
            return None;
        }
        let (r_bytes, s_bytes) = bytes.split_at(bytes.len() - 32);
        let big_r = group.deserialize(r_bytes)?;
        let ctx = group.scalar_ctx();
        let s = pbcd_math::U256::from_be_bytes(s_bytes)?;
        if &s >= ctx.modulus() {
            return None;
        }
        Some(Self {
            big_r,
            s: ctx.from_uint(&s),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modp::ModpGroup;
    use crate::p256::P256Group;
    use rand::SeedableRng;

    fn check_backend<G: CyclicGroup>(group: G) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        let key = SigningKey::generate(&group, &mut rng);
        let vk = key.verifying_key();
        let msg = b"identity token: nym=pn-1492 tag=age c=...";
        let sig = key.sign(&group, &mut rng, msg);
        assert!(vk.verify(&group, msg, &sig));
        // Wrong message.
        assert!(!vk.verify(&group, b"different message", &sig));
        // Wrong key.
        let other = SigningKey::generate(&group, &mut rng).verifying_key();
        assert!(!other.verify(&group, msg, &sig));
        // Tampered signature.
        let bad = Signature {
            big_r: sig.big_r.clone(),
            s: &sig.s + &group.scalar_ctx().one(),
        };
        assert!(!vk.verify(&group, msg, &bad));
        // Serialization roundtrip.
        let enc = sig.to_bytes(&group);
        let dec = Signature::from_bytes(&group, &enc).unwrap();
        assert!(vk.verify(&group, msg, &dec));
        assert_eq!(Signature::from_bytes(&group, &enc[..enc.len() - 1]), None);
        // Public key roundtrip.
        let vk2 = VerifyingKey::<G>::deserialize(&group, &vk.serialize(&group)).unwrap();
        assert!(vk2.verify(&group, msg, &sig));
    }

    fn check_batch_backend<G: CyclicGroup>(group: G) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(57);
        let keys: Vec<_> = (0..5)
            .map(|_| SigningKey::generate(&group, &mut rng))
            .collect();
        let msgs: Vec<Vec<u8>> = (0..5).map(|i| format!("msg-{i}").into_bytes()).collect();
        let sigs: Vec<_> = keys
            .iter()
            .zip(&msgs)
            .map(|(k, m)| k.sign(&group, &mut rng, m))
            .collect();
        let vks: Vec<_> = keys.iter().map(SigningKey::verifying_key).collect();
        let items: Vec<(&VerifyingKey<G>, &[u8], &Signature<G>)> = vks
            .iter()
            .zip(&msgs)
            .zip(&sigs)
            .map(|((vk, m), s)| (vk, m.as_slice(), s))
            .collect();
        assert!(verify_batch(&group, &items));
        assert!(verify_batch::<G>(&group, &[]), "empty batch is valid");
        assert!(verify_batch(&group, &items[..1]), "singleton batch");

        // One forged signature poisons the whole batch.
        let mut forged = sigs.clone();
        forged[3].s = &forged[3].s + &group.scalar_ctx().one();
        let bad_items: Vec<(&VerifyingKey<G>, &[u8], &Signature<G>)> = vks
            .iter()
            .zip(&msgs)
            .zip(&forged)
            .map(|((vk, m), s)| (vk, m.as_slice(), s))
            .collect();
        assert!(!verify_batch(&group, &bad_items));

        // A signature transplanted onto the wrong message also fails.
        let mut swapped_msgs = msgs.clone();
        swapped_msgs.swap(0, 1);
        let swapped: Vec<(&VerifyingKey<G>, &[u8], &Signature<G>)> = vks
            .iter()
            .zip(&swapped_msgs)
            .zip(&sigs)
            .map(|((vk, m), s)| (vk, m.as_slice(), s))
            .collect();
        assert!(!verify_batch(&group, &swapped));
    }

    #[test]
    fn p256_signatures() {
        check_backend(P256Group::new());
    }

    #[test]
    fn modp_signatures() {
        check_backend(ModpGroup::new());
    }

    #[test]
    fn p256_batch_verification() {
        check_batch_backend(P256Group::new());
    }

    #[test]
    fn modp_batch_verification() {
        check_batch_backend(ModpGroup::new());
    }

    #[test]
    fn signatures_are_randomized_but_stable() {
        let group = P256Group::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(56);
        let key = SigningKey::generate(&group, &mut rng);
        let s1 = key.sign(&group, &mut rng, b"m");
        let s2 = key.sign(&group, &mut rng, b"m");
        assert_ne!(s1, s2, "fresh nonce each signature");
        assert!(key.verifying_key().verify(&group, b"m", &s1));
        assert!(key.verifying_key().verify(&group, b"m", &s2));
    }
}
