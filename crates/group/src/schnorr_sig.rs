//! Schnorr signatures over any [`CyclicGroup`] backend.
//!
//! The Identity Manager signs identity tokens (`σ` in the paper's
//! `IT = (nym, id-tag, c, σ)`); the publisher verifies them during
//! registration. The scheme is the standard Fiat–Shamir Schnorr signature:
//! `R = g^k`, `e = H(R ‖ m)`, `s = k + e·sk`, signature `(e, s)`.

use crate::traits::{CyclicGroup, Scalar};
use pbcd_crypto::Sha256;
use rand::RngCore;

/// A Schnorr signing/verification key pair.
#[derive(Clone)]
pub struct SigningKey<G: CyclicGroup> {
    sk: Scalar,
    pk: G::Elem,
}

/// The public half of a [`SigningKey`].
pub struct VerifyingKey<G: CyclicGroup> {
    pk: G::Elem,
}

// Manual impls avoid requiring `G: PartialEq`/`Debug` — only the element
// (always comparable per the trait bounds) matters.
impl<G: CyclicGroup> Clone for VerifyingKey<G> {
    fn clone(&self) -> Self {
        Self {
            pk: self.pk.clone(),
        }
    }
}

impl<G: CyclicGroup> PartialEq for VerifyingKey<G> {
    fn eq(&self, other: &Self) -> bool {
        self.pk == other.pk
    }
}

impl<G: CyclicGroup> Eq for VerifyingKey<G> {}

impl<G: CyclicGroup> core::fmt::Debug for VerifyingKey<G> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "VerifyingKey({:?})", self.pk)
    }
}

/// A Schnorr signature `(e, s)` with both components in the scalar field.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Signature {
    /// Fiat–Shamir challenge.
    pub e: Scalar,
    /// Response scalar.
    pub s: Scalar,
}

impl<G: CyclicGroup> SigningKey<G> {
    /// Generates a fresh key pair.
    pub fn generate<R: RngCore + ?Sized>(group: &G, rng: &mut R) -> Self {
        let sk = group.random_nonzero_scalar(rng);
        let pk = group.exp_g(&sk);
        Self { sk, pk }
    }

    /// The verification key.
    pub fn verifying_key(&self) -> VerifyingKey<G> {
        VerifyingKey {
            pk: self.pk.clone(),
        }
    }

    /// Signs a message.
    pub fn sign<R: RngCore + ?Sized>(&self, group: &G, rng: &mut R, msg: &[u8]) -> Signature {
        let k = group.random_nonzero_scalar(rng);
        let big_r = group.exp_g(&k);
        let e = challenge(group, &big_r, msg);
        let s = &k + &(&e * &self.sk);
        Signature { e, s }
    }
}

impl<G: CyclicGroup> VerifyingKey<G> {
    /// Wraps a raw public key element.
    pub fn from_element(pk: G::Elem) -> Self {
        Self { pk }
    }

    /// The raw public key element.
    pub fn element(&self) -> &G::Elem {
        &self.pk
    }

    /// Canonical encoding of the public key.
    pub fn serialize(&self, group: &G) -> Vec<u8> {
        group.serialize(&self.pk)
    }

    /// Parses and validates an encoded public key.
    pub fn deserialize(group: &G, bytes: &[u8]) -> Option<Self> {
        group.deserialize(bytes).map(|pk| Self { pk })
    }

    /// Verifies a signature: recompute `R' = g^s · pk^{−e}` and check that
    /// the challenge matches. The double exponentiation runs as one
    /// Straus/Shamir chain ([`CyclicGroup::exp2`]) rather than two
    /// independent ladders.
    pub fn verify(&self, group: &G, msg: &[u8], sig: &Signature) -> bool {
        let big_r = group.exp2(&group.generator(), &sig.s, &self.pk, &(-&sig.e));
        challenge(group, &big_r, msg) == sig.e
    }
}

fn challenge<G: CyclicGroup>(group: &G, big_r: &G::Elem, msg: &[u8]) -> Scalar {
    let mut h = Sha256::new();
    h.update(b"pbcd-schnorr-v1:");
    h.update(group.name().as_bytes());
    h.update(&group.serialize(big_r));
    h.update(msg);
    group.scalar_ctx().from_be_bytes_reduced(&h.finalize())
}

impl Signature {
    /// Fixed-layout encoding: 32-byte `e` ‖ 32-byte `s`.
    pub fn to_bytes<G: CyclicGroup>(&self) -> Vec<u8> {
        let mut out = self.e.to_be_bytes();
        out.extend_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses the fixed layout produced by [`Signature::to_bytes`].
    pub fn from_bytes<G: CyclicGroup>(group: &G, bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 64 {
            return None;
        }
        let ctx = group.scalar_ctx();
        let e = pbcd_math::U256::from_be_bytes(&bytes[..32])?;
        let s = pbcd_math::U256::from_be_bytes(&bytes[32..])?;
        if &e >= ctx.modulus() || &s >= ctx.modulus() {
            return None;
        }
        Some(Self {
            e: ctx.from_uint(&e),
            s: ctx.from_uint(&s),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modp::ModpGroup;
    use crate::p256::P256Group;
    use rand::SeedableRng;

    fn check_backend<G: CyclicGroup>(group: G) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        let key = SigningKey::generate(&group, &mut rng);
        let vk = key.verifying_key();
        let msg = b"identity token: nym=pn-1492 tag=age c=...";
        let sig = key.sign(&group, &mut rng, msg);
        assert!(vk.verify(&group, msg, &sig));
        // Wrong message.
        assert!(!vk.verify(&group, b"different message", &sig));
        // Wrong key.
        let other = SigningKey::generate(&group, &mut rng).verifying_key();
        assert!(!other.verify(&group, msg, &sig));
        // Tampered signature.
        let bad = Signature {
            e: sig.e.clone(),
            s: &sig.s + &group.scalar_ctx().one(),
        };
        assert!(!vk.verify(&group, msg, &bad));
        // Serialization roundtrip.
        let enc = sig.to_bytes::<G>();
        let dec = Signature::from_bytes(&group, &enc).unwrap();
        assert!(vk.verify(&group, msg, &dec));
        assert_eq!(Signature::from_bytes(&group, &enc[..63]), None);
        // Public key roundtrip.
        let vk2 = VerifyingKey::<G>::deserialize(&group, &vk.serialize(&group)).unwrap();
        assert!(vk2.verify(&group, msg, &sig));
    }

    #[test]
    fn p256_signatures() {
        check_backend(P256Group::new());
    }

    #[test]
    fn modp_signatures() {
        check_backend(ModpGroup::new());
    }

    #[test]
    fn signatures_are_randomized_but_stable() {
        let group = P256Group::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(56);
        let key = SigningKey::generate(&group, &mut rng);
        let s1 = key.sign(&group, &mut rng, b"m");
        let s2 = key.sign(&group, &mut rng, b"m");
        assert_ne!(s1, s2, "fresh nonce each signature");
        assert!(key.verifying_key().verify(&group, b"m", &s1));
        assert!(key.verifying_key().verify(&group, b"m", &s2));
    }
}
