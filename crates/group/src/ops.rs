//! Process-wide tally of group exponentiations.
//!
//! Exponentiations dominate the cost of every protocol in this workspace
//! (Pedersen commits, Schnorr verification, OCBE compose/open, ACV rekey),
//! so both backends bump these counters at their exponentiation entry
//! points: one tick per single-base exponentiation (a fixed-base comb
//! lookup counts the same as a generic double-and-add — the tally counts
//! *logical* exponentiations, not doublings), and one tick per Straus
//! double exponentiation. The telemetry plane in `pbcd_core` mirrors the
//! totals into its metrics registry at snapshot time.
//!
//! The counters are global (one pair per process, all backends summed) and
//! monotone; each tick is a single relaxed atomic add, invisible next to
//! the ~10⁵ ns an exponentiation costs. Tests must therefore only assert
//! *deltas*, never absolute values.

use std::sync::atomic::{AtomicU64, Ordering};

static EXP: AtomicU64 = AtomicU64::new(0);
static EXP2: AtomicU64 = AtomicU64::new(0);

/// Records `n` single-base exponentiations.
#[inline]
pub fn count_exp(n: u64) {
    EXP.fetch_add(n, Ordering::Relaxed);
}

/// Records one simultaneous double exponentiation (`a^x · b^y`).
#[inline]
pub fn count_exp2() {
    EXP2.fetch_add(1, Ordering::Relaxed);
}

/// Total single-base exponentiations performed by this process.
pub fn exp_total() -> u64 {
    EXP.load(Ordering::Relaxed)
}

/// Total double exponentiations performed by this process.
pub fn exp2_total() -> u64 {
    EXP2.load(Ordering::Relaxed)
}
