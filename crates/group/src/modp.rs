//! RFC 5114 §2.1 modp Schnorr group: the order-`q` (160-bit) subgroup of
//! `Z_p^*` for a 1024-bit prime `p`.
//!
//! This backend mirrors the "classic DL group" setting and serves as the
//! ablation counterpart to [`crate::p256::P256Group`] — same abstract
//! interface, very different exponentiation cost profile (1024-bit modular
//! arithmetic vs 256-bit curve arithmetic).
//!
//! Exponentiation is **variable-time** (see `docs/ARCHITECTURE.md`,
//! "Group arithmetic"): variable bases use the sliding-window
//! [`MontCtx::pow`], the fixed bases `g` and `h` use lazily built
//! radix-16 [`FixedBaseTable`]s (40 windows × 15 residues ≈ 75 KiB per
//! base over the 1024-bit modulus), and `a^x · b^y` runs as one
//! Straus/Shamir chain via [`MontCtx::pow2`].

use crate::traits::{CyclicGroup, Scalar, ScalarCtx};
use pbcd_crypto::sha256_concat;
use pbcd_math::{FixedBaseTable, FpCtx, MontCtx, U1024, U256};
use std::sync::{Arc, OnceLock};

// RFC 5114 section 2.1 constants (1024-bit MODP group, 160-bit subgroup).
const P_HEX: &str = concat!(
    "B10B8F96A080E01DDE92DE5EAE5D54EC52C99FBCFB06A3C69A6A9DCA52D23B61",
    "6073E28675A23D189838EF1E2EE652C013ECB4AEA906112324975C3CD49B83BF",
    "ACCBDD7D90C4BD7098488E9C219A73724EFFD6FAE5644738FAA31A4FF55BCCC0",
    "A151AF5F0DC8B4BD45BF37DF365C1A65E68CFDA76D4DA708DF1FB2BC2E4A4371"
);
const G_HEX: &str = concat!(
    "A4D1CBD5C3FD34126765A442EFB99905F8104DD258AC507FD6406CFF14266D31",
    "266FEA1E5C41564B777E690F5504F213160217B4B01B886A5E91547F9E2749F4",
    "D7FBD7D3B9A92EE1909D0D2263F80A76A6A24C087A091F531DBF0A0169B6A28A",
    "D662A4D18E73AFA32D779D5918D08BC8858F4DCEF97C2A24855E6EEB22B3B2E5"
);
const Q_HEX: &str = "F518AA8781A8DF278ABA4E7D64B7CB9D49462353";

/// A subgroup element, stored in Montgomery form modulo `p`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ModpElem(U1024);

/// The RFC 5114 modp group backend.
#[derive(Clone)]
pub struct ModpGroup {
    inner: Arc<ModpInner>,
}

struct ModpInner {
    field: MontCtx<16>,
    scalar: ScalarCtx,
    order: U256,
    order_wide: U1024,
    /// (p − 1) / q — the cofactor exponent used by hash-to-group.
    cofactor: U1024,
    gen: ModpElem,
    h: ModpElem,
    /// Lazily built fixed-base tables, shared by every clone of the
    /// group handle.
    g_table: OnceLock<FixedBaseTable<16>>,
    h_table: OnceLock<FixedBaseTable<16>>,
}

impl Default for ModpGroup {
    fn default() -> Self {
        Self::new()
    }
}

impl ModpGroup {
    /// Constructs the RFC 5114 backend with a hashed-in Pedersen `h`.
    pub fn new() -> Self {
        let p = U1024::from_hex(P_HEX).expect("static constant");
        let g = U1024::from_hex(G_HEX).expect("static constant");
        let q = U256::from_hex(Q_HEX).expect("static constant");
        let field = MontCtx::new(p);
        let scalar = FpCtx::new(q);
        let order_wide: U1024 = q.widen();
        let pm1 = p.wrapping_sub(&U1024::one());
        let (cofactor, rem) = pm1.div_rem(&order_wide);
        assert!(rem.is_zero(), "q must divide p-1");
        let gen = ModpElem(field.to_mont(&g));
        let mut group = Self {
            inner: Arc::new(ModpInner {
                field,
                scalar,
                order: q,
                order_wide,
                cofactor,
                gen,
                h: ModpElem(U1024::ZERO), // patched below
                g_table: OnceLock::new(),
                h_table: OnceLock::new(),
            }),
        };
        let h = group.hash_to_group("pbcd-modp-pedersen-h", b"v1");
        Arc::get_mut(&mut group.inner)
            .expect("sole owner during construction")
            .h = h;
        group
    }

    fn f(&self) -> &MontCtx<16> {
        &self.inner.field
    }

    /// Subgroup membership: `x^q == 1` (and `x != 0`).
    fn in_subgroup(&self, x_mont: &U1024) -> bool {
        if x_mont.is_zero() {
            return false;
        }
        self.f().pow(x_mont, &self.inner.order_wide) == self.f().one()
    }

    /// Window width of the fixed-base tables for `g` and `h`.
    const FIXED_WINDOW: u32 = 4;

    fn g_table(&self) -> &FixedBaseTable<16> {
        self.inner.g_table.get_or_init(|| {
            FixedBaseTable::new(
                self.f(),
                &self.inner.gen.0,
                self.inner.order.bits(),
                Self::FIXED_WINDOW,
            )
        })
    }

    fn h_table(&self) -> &FixedBaseTable<16> {
        self.inner.h_table.get_or_init(|| {
            FixedBaseTable::new(
                self.f(),
                &self.inner.h.0,
                self.inner.order.bits(),
                Self::FIXED_WINDOW,
            )
        })
    }

    /// Naive square-and-multiply exponentiation — the pre-optimization
    /// reference ladder, exposed for the equivalence test-suite and the
    /// speedup-tracking benches. Semantically identical to
    /// [`CyclicGroup::exp_uint`], just slower.
    pub fn exp_naive(&self, base: &ModpElem, k: &U256) -> ModpElem {
        let k = if k < self.order() {
            *k
        } else {
            k.rem(self.order())
        };
        let f = self.f();
        let mut acc = f.one();
        for i in (0..k.bits()).rev() {
            acc = f.mont_sqr(&acc);
            if k.bit(i) {
                acc = f.mont_mul(&acc, &base.0);
            }
        }
        ModpElem(acc)
    }
}

impl CyclicGroup for ModpGroup {
    type Elem = ModpElem;

    fn name(&self) -> &'static str {
        "modp-rfc5114"
    }

    fn order(&self) -> &U256 {
        &self.inner.order
    }

    fn scalar_ctx(&self) -> &ScalarCtx {
        &self.inner.scalar
    }

    fn identity(&self) -> ModpElem {
        ModpElem(self.f().one())
    }

    fn generator(&self) -> ModpElem {
        self.inner.gen.clone()
    }

    fn pedersen_h(&self) -> ModpElem {
        self.inner.h.clone()
    }

    fn op(&self, a: &ModpElem, b: &ModpElem) -> ModpElem {
        ModpElem(self.f().mont_mul(&a.0, &b.0))
    }

    fn inv(&self, a: &ModpElem) -> ModpElem {
        ModpElem(self.f().inv(&a.0).expect("group elements are nonzero"))
    }

    fn exp_uint(&self, base: &ModpElem, k: &U256) -> ModpElem {
        crate::ops::count_exp(1);
        let k = if k < self.order() {
            *k
        } else {
            k.rem(self.order())
        };
        ModpElem(self.f().pow(&base.0, &k))
    }

    fn warm_up(&self) {
        self.g_table();
        self.h_table();
    }

    fn exp_g(&self, k: &Scalar) -> ModpElem {
        crate::ops::count_exp(1);
        ModpElem(self.g_table().pow(self.f(), &k.to_uint()))
    }

    fn exp_h(&self, k: &Scalar) -> ModpElem {
        crate::ops::count_exp(1);
        ModpElem(self.h_table().pow(self.f(), &k.to_uint()))
    }

    fn exp2(&self, a: &ModpElem, x: &Scalar, b: &ModpElem, y: &Scalar) -> ModpElem {
        crate::ops::count_exp2();
        ModpElem(self.f().pow2(&a.0, &x.to_uint(), &b.0, &y.to_uint()))
    }

    fn pedersen_gh(&self, m: &Scalar, r: &Scalar) -> ModpElem {
        crate::ops::count_exp(2);
        let gm = self.g_table().pow(self.f(), &m.to_uint());
        let hr = self.h_table().pow(self.f(), &r.to_uint());
        ModpElem(self.f().mont_mul(&gm, &hr))
    }

    fn serialize(&self, a: &ModpElem) -> Vec<u8> {
        self.f().from_mont(&a.0).to_be_bytes()
    }

    fn deserialize(&self, bytes: &[u8]) -> Option<ModpElem> {
        if bytes.len() != 128 {
            return None;
        }
        let x = U1024::from_be_bytes(bytes)?;
        if x.is_zero() || &x >= self.f().modulus() {
            return None;
        }
        let xm = self.f().to_mont(&x);
        if self.in_subgroup(&xm) {
            Some(ModpElem(xm))
        } else {
            None
        }
    }

    fn hash_to_group(&self, domain: &str, data: &[u8]) -> ModpElem {
        // Map a hash-derived residue u into the subgroup via u^((p-1)/q);
        // the result's discrete log relative to g is unknown.
        for counter in 0u32..=u32::MAX {
            let mut wide = Vec::with_capacity(160);
            // Stretch the digest to cover the 1024-bit field width.
            for block in 0u8..5 {
                wide.extend_from_slice(&sha256_concat(&[
                    b"pbcd-h2g-modp:",
                    domain.as_bytes(),
                    b":",
                    data,
                    &counter.to_be_bytes(),
                    &[block],
                ]));
            }
            let u = U1024::from_be_bytes(&wide[..128])
                .expect("128 bytes fits")
                .rem(self.f().modulus());
            if u.is_zero() {
                continue;
            }
            let um = self.f().to_mont(&u);
            let candidate = self.f().pow(&um, &self.inner.cofactor);
            if candidate != self.f().one() {
                return ModpElem(candidate);
            }
        }
        unreachable!("hash-to-group failed for 2^32 counters")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbcd_math::miller_rabin;
    use rand::SeedableRng;

    fn grp() -> ModpGroup {
        ModpGroup::new()
    }

    #[test]
    fn rfc5114_parameters_are_consistent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let p = U1024::from_hex(P_HEX).unwrap();
        let q = U256::from_hex(Q_HEX).unwrap();
        assert_eq!(p.bits(), 1024);
        assert_eq!(q.bits(), 160);
        assert!(miller_rabin(&q, 20, &mut rng));
        // p primality is slower; a handful of rounds suffices for a fixed
        // published constant.
        assert!(miller_rabin(&p, 4, &mut rng));
    }

    #[test]
    fn generator_has_order_q() {
        let g = grp();
        let gen = g.generator();
        assert!(g.in_subgroup(&gen.0));
        assert_eq!(g.exp_uint(&gen, g.order()), g.identity());
        assert_ne!(gen, g.identity());
    }

    #[test]
    fn group_laws_and_homomorphism() {
        let g = grp();
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let sc = g.scalar_ctx().clone();
        for _ in 0..5 {
            let x = sc.random(&mut rng);
            let y = sc.random(&mut rng);
            let a = g.exp_g(&x);
            let b = g.exp_g(&y);
            assert_eq!(g.op(&a, &b), g.op(&b, &a));
            assert_eq!(g.op(&a, &g.inv(&a)), g.identity());
            assert_eq!(g.op(&a, &b), g.exp_g(&(&x + &y)));
            assert_eq!(g.exp(&a, &y), g.exp_g(&(&x * &y)));
        }
    }

    #[test]
    fn serialization_roundtrip_and_validation() {
        let g = grp();
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let p = g.exp_g(&g.random_scalar(&mut rng));
        let enc = g.serialize(&p);
        assert_eq!(enc.len(), 128);
        assert_eq!(g.deserialize(&enc), Some(p));
        // Random residues are almost surely outside the subgroup.
        let junk = vec![2u8; 128];
        assert_eq!(g.deserialize(&junk), None);
        assert_eq!(g.deserialize(&[]), None);
    }

    #[test]
    fn hash_to_group_lands_in_subgroup() {
        let g = grp();
        let e = g.hash_to_group("test", b"data");
        assert!(g.in_subgroup(&e.0));
        assert_eq!(g.exp_uint(&e, g.order()), g.identity());
        assert_ne!(g.pedersen_h(), g.generator());
    }
}
