//! The prime-order cyclic group abstraction.
//!
//! Everything the paper's protocols need from "the group" is captured here:
//! a CDH-hard prime-order cyclic group with two generators whose relative
//! discrete logarithm is unknown (Pedersen's `g` and `h`), exponentiation,
//! and canonical serialization. The paper instantiated this with the
//! Jacobian of a genus-2 curve (G2HEC); this workspace substitutes NIST
//! P-256 ([`crate::p256::P256Group`], default) and an RFC 5114 modp Schnorr
//! group ([`crate::modp::ModpGroup`]) — see DESIGN.md §3 for why the
//! substitution preserves the paper's behaviour.

use pbcd_math::{Fp, FpCtx, U256};
use rand::RngCore;
use std::fmt::Debug;
use std::sync::Arc;

/// Scalars for every group backend live in a 256-bit-capable prime field
/// whose modulus is the group order (P-256: 256 bits; RFC 5114: 160 bits).
pub type Scalar = Fp<4>;
/// Context for [`Scalar`] arithmetic.
pub type ScalarCtx = Arc<FpCtx<4>>;

/// A prime-order cyclic group suitable for Pedersen commitments and OCBE.
///
/// Implementations must guarantee:
/// * the group has prime order `q = self.order()`;
/// * `generator()` generates the whole group;
/// * `pedersen_h()` is a second generator whose discrete log with respect to
///   `generator()` is unknown to everyone (derived by hashing into the
///   group);
/// * `exp` is the group exponentiation `base^k` (written multiplicatively,
///   matching the paper).
pub trait CyclicGroup: Clone + Send + Sync + 'static {
    /// Group element representation.
    type Elem: Clone + PartialEq + Eq + Debug + Send + Sync;

    /// Human-readable backend name (used by benches and reports).
    fn name(&self) -> &'static str;

    /// The prime group order `q`.
    fn order(&self) -> &U256;

    /// Field context for scalar (exponent) arithmetic modulo the order.
    fn scalar_ctx(&self) -> &ScalarCtx;

    /// The identity element.
    fn identity(&self) -> Self::Elem;

    /// The fixed generator `g`.
    fn generator(&self) -> Self::Elem;

    /// A second generator `h` with unknown discrete log w.r.t. `g`
    /// (the Pedersen commitment base).
    fn pedersen_h(&self) -> Self::Elem;

    /// Group operation `a · b`.
    fn op(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// Group inverse `a^{-1}`.
    fn inv(&self, a: &Self::Elem) -> Self::Elem;

    /// Exponentiation `base^k` for a canonical scalar `k < order`.
    fn exp_uint(&self, base: &Self::Elem, k: &U256) -> Self::Elem;

    /// Canonical byte encoding.
    fn serialize(&self, a: &Self::Elem) -> Vec<u8>;

    /// Parses and validates an encoded element (subgroup membership
    /// included). Returns `None` for anything malformed.
    fn deserialize(&self, bytes: &[u8]) -> Option<Self::Elem>;

    /// Deterministically hashes arbitrary bytes to a group element with
    /// unknown discrete log.
    fn hash_to_group(&self, domain: &str, data: &[u8]) -> Self::Elem;

    /// Exponentiation by a scalar field element.
    fn exp(&self, base: &Self::Elem, k: &Scalar) -> Self::Elem {
        self.exp_uint(base, &k.to_uint())
    }

    /// `g^k` for a canonical scalar.
    ///
    /// Backends override this with fixed-base precomputation (`g` is known
    /// forever); the default just delegates to [`CyclicGroup::exp`].
    fn exp_g(&self, k: &Scalar) -> Self::Elem {
        self.exp(&self.generator(), k)
    }

    /// `h^k` for a canonical scalar — the Pedersen blinding base.
    ///
    /// Like [`CyclicGroup::exp_g`], backends override this with a cached
    /// fixed-base table; the naive default keeps third-party backends
    /// compiling unchanged.
    fn exp_h(&self, k: &Scalar) -> Self::Elem {
        self.exp(&self.pedersen_h(), k)
    }

    /// Simultaneous double exponentiation `a^x · b^y`.
    ///
    /// The workhorse of verification equations (Schnorr's
    /// `g^s · pk^{−e}`). Backends override this with Straus/Shamir
    /// interleaving — one shared doubling chain instead of two — while the
    /// default composes the two naive exponentiations.
    fn exp2(&self, a: &Self::Elem, x: &Scalar, b: &Self::Elem, y: &Scalar) -> Self::Elem {
        self.op(&self.exp(a, x), &self.exp(b, y))
    }

    /// The Pedersen commitment body `g^m · h^r`.
    ///
    /// Both bases are fixed, so backends serve this from two precomputed
    /// tables; the default composes [`CyclicGroup::exp_g`] and
    /// [`CyclicGroup::exp_h`].
    fn pedersen_gh(&self, m: &Scalar, r: &Scalar) -> Self::Elem {
        self.op(&self.exp_g(m), &self.exp_h(r))
    }

    /// Multi-scalar multiplication `Π basesᵢ^{kᵢ}` over (element, scalar)
    /// pairs.
    ///
    /// The workhorse of batched verification (one random-linear-combination
    /// Schnorr check over a whole cohort collapses to a single `msm` of
    /// width `2n + 1`). Backends override this with Pippenger's bucket
    /// method — asymptotically `O(n / log n)` group operations per term —
    /// while the default composes per-term exponentiations so third-party
    /// backends keep working unchanged.
    fn msm(&self, terms: &[(Self::Elem, Scalar)]) -> Self::Elem {
        let mut acc = self.identity();
        for (base, k) in terms {
            acc = self.op(&acc, &self.exp(base, k));
        }
        acc
    }

    /// Eagerly builds any lazily-initialized fixed-base acceleration
    /// material (the `g`/`h` comb tables) so the *first* real request
    /// served by a long-lived actor does not pay table-construction
    /// latency. Idempotent and cheap once warm; the default is a no-op
    /// for backends without precomputation.
    fn warm_up(&self) {}

    /// `Π elemsᵢ^(2^i)` — the power-of-two weighted product the bitwise
    /// OCBE sender uses to reassemble digit commitments, evaluated
    /// Horner-style (msb first).
    ///
    /// Backends with expensive per-`op` normalization (projective curves)
    /// override this to run the whole chain in projective coordinates
    /// with a single final normalization.
    fn prod_pow2(&self, elems: &[Self::Elem]) -> Self::Elem {
        let mut acc = self.identity();
        for e in elems.iter().rev() {
            acc = self.op(&self.op(&acc, &acc), e);
        }
        acc
    }

    /// A uniformly random scalar.
    fn random_scalar<R: RngCore + ?Sized>(&self, rng: &mut R) -> Scalar {
        self.scalar_ctx().random(rng)
    }

    /// A uniformly random *nonzero* scalar (exponents `y ∈ F_q^×` in OCBE).
    fn random_nonzero_scalar<R: RngCore + ?Sized>(&self, rng: &mut R) -> Scalar {
        self.scalar_ctx().random_nonzero(rng)
    }

    /// `a · b^{-1}`.
    fn div(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.op(a, &self.inv(b))
    }

    /// True iff `a` is the identity.
    fn is_identity(&self, a: &Self::Elem) -> bool {
        *a == self.identity()
    }
}
