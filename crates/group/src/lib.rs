//! # pbcd-group
//!
//! Prime-order cyclic groups for the PBCD workspace. The paper instantiated
//! its protocols over the Jacobian group of a genus-2 hyperelliptic curve;
//! this crate provides the same abstract interface ([`CyclicGroup`]) with
//! two from-scratch backends:
//!
//! * [`p256::P256Group`] — NIST P-256 elliptic curve (default),
//! * [`modp::ModpGroup`] — RFC 5114 1024/160 modp Schnorr group,
//!
//! plus [`schnorr_sig`] — Schnorr signatures used by the Identity Manager
//! to certify identity tokens.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod modp;
pub mod ops;
pub mod p256;
pub mod p256_field;
pub mod schnorr_sig;
pub mod traits;

pub use modp::{ModpElem, ModpGroup};
pub use p256::{P256Group, P256Point};
pub use schnorr_sig::{challenge, verify_batch, Signature, SigningKey, VerifyingKey};
pub use traits::{CyclicGroup, Scalar, ScalarCtx};
