//! NIST P-256 (secp256r1) — the workspace's default group backend.
//!
//! Short-Weierstrass curve `y² = x³ − 3x + b` over the 256-bit prime field,
//! prime group order (cofactor 1), Jacobian projective arithmetic in
//! Montgomery form. Scalar multiplication is a variable-time double-and-add;
//! adequate for a research reproduction, noted as such.

use crate::traits::{CyclicGroup, ScalarCtx};
use pbcd_crypto::sha256_concat;
use pbcd_math::{FpCtx, MontCtx, U256};
use std::sync::Arc;

const P_HEX: &str = "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff";
const N_HEX: &str = "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551";
const B_HEX: &str = "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b";
const GX_HEX: &str = "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296";
const GY_HEX: &str = "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5";

/// An affine P-256 point (coordinates in Montgomery form) or the identity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum P256Point {
    /// The point at infinity (group identity).
    Identity,
    /// An affine point with Montgomery-form coordinates.
    Affine {
        /// x-coordinate (Montgomery form).
        x: U256,
        /// y-coordinate (Montgomery form).
        y: U256,
    },
}

/// Jacobian-coordinate point used internally for arithmetic.
#[derive(Clone)]
struct Jacobian {
    x: U256,
    y: U256,
    z: U256, // z = 0 encodes the identity
}

/// The P-256 group backend.
#[derive(Clone)]
pub struct P256Group {
    inner: Arc<P256Inner>,
}

struct P256Inner {
    field: MontCtx<4>,
    scalar: ScalarCtx,
    order: U256,
    b: U256,     // Montgomery form
    three: U256, // Montgomery form of 3 (a = -3)
    gen: P256Point,
    h: P256Point,
}

impl Default for P256Group {
    fn default() -> Self {
        Self::new()
    }
}

impl P256Group {
    /// Constructs the standard P-256 backend. Parameters are fixed NIST
    /// constants; `h` is derived by hashing a domain-separation tag into the
    /// curve (nothing-up-my-sleeve second generator).
    pub fn new() -> Self {
        let p = U256::from_hex(P_HEX).expect("static constant");
        let n = U256::from_hex(N_HEX).expect("static constant");
        let field = MontCtx::new(p);
        let scalar = FpCtx::new(n);
        let b = field.to_mont(&U256::from_hex(B_HEX).expect("static constant"));
        let three = field.to_mont(&U256::from_u64(3));
        let gen = P256Point::Affine {
            x: field.to_mont(&U256::from_hex(GX_HEX).expect("static constant")),
            y: field.to_mont(&U256::from_hex(GY_HEX).expect("static constant")),
        };
        let mut group = Self {
            inner: Arc::new(P256Inner {
                field,
                scalar,
                order: n,
                b,
                three,
                gen,
                h: P256Point::Identity, // patched below
            }),
        };
        let h = group.hash_to_group("pbcd-p256-pedersen-h", b"v1");
        Arc::get_mut(&mut group.inner)
            .expect("sole owner during construction")
            .h = h;
        group
    }

    fn f(&self) -> &MontCtx<4> {
        &self.inner.field
    }

    /// Checks the affine equation `y² = x³ − 3x + b` (Montgomery form).
    fn is_on_curve(&self, x: &U256, y: &U256) -> bool {
        let f = self.f();
        let y2 = f.mont_sqr(y);
        let x3 = f.mont_mul(&f.mont_sqr(x), x);
        let ax = f.mont_mul(&self.inner.three, x);
        let rhs = f.add(&f.sub(&x3, &ax), &self.inner.b);
        y2 == rhs
    }

    fn to_jacobian(&self, p: &P256Point) -> Jacobian {
        match p {
            P256Point::Identity => Jacobian {
                x: self.f().one(),
                y: self.f().one(),
                z: U256::ZERO,
            },
            P256Point::Affine { x, y } => Jacobian {
                x: *x,
                y: *y,
                z: self.f().one(),
            },
        }
    }

    fn to_affine(&self, p: &Jacobian) -> P256Point {
        if p.z.is_zero() {
            return P256Point::Identity;
        }
        let f = self.f();
        let zinv = f.inv(&p.z).expect("nonzero z");
        let zinv2 = f.mont_sqr(&zinv);
        let zinv3 = f.mont_mul(&zinv2, &zinv);
        P256Point::Affine {
            x: f.mont_mul(&p.x, &zinv2),
            y: f.mont_mul(&p.y, &zinv3),
        }
    }

    /// Jacobian doubling, specialized for `a = −3` (dbl-2001-b).
    fn jac_double(&self, p: &Jacobian) -> Jacobian {
        if p.z.is_zero() || p.y.is_zero() {
            return Jacobian {
                x: self.f().one(),
                y: self.f().one(),
                z: U256::ZERO,
            };
        }
        let f = self.f();
        let delta = f.mont_sqr(&p.z);
        let gamma = f.mont_sqr(&p.y);
        let beta = f.mont_mul(&p.x, &gamma);
        // alpha = 3(x − delta)(x + delta)
        let alpha = {
            let t = f.mont_mul(&f.sub(&p.x, &delta), &f.add(&p.x, &delta));
            f.add(&f.double(&t), &t)
        };
        let eight_beta = {
            let four_beta = f.double(&f.double(&beta));
            f.double(&four_beta)
        };
        let x3 = f.sub(&f.mont_sqr(&alpha), &eight_beta);
        // z3 = (y + z)² − gamma − delta
        let z3 = f.sub(&f.sub(&f.mont_sqr(&f.add(&p.y, &p.z)), &gamma), &delta);
        // y3 = alpha(4beta − x3) − 8 gamma²
        let four_beta = f.double(&f.double(&beta));
        let eight_gamma2 = {
            let g2 = f.mont_sqr(&gamma);
            f.double(&f.double(&f.double(&g2)))
        };
        let y3 = f.sub(&f.mont_mul(&alpha, &f.sub(&four_beta, &x3)), &eight_gamma2);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian addition (add-2007-bl).
    fn jac_add(&self, p: &Jacobian, q: &Jacobian) -> Jacobian {
        if p.z.is_zero() {
            return q.clone();
        }
        if q.z.is_zero() {
            return p.clone();
        }
        let f = self.f();
        let z1z1 = f.mont_sqr(&p.z);
        let z2z2 = f.mont_sqr(&q.z);
        let u1 = f.mont_mul(&p.x, &z2z2);
        let u2 = f.mont_mul(&q.x, &z1z1);
        let s1 = f.mont_mul(&f.mont_mul(&p.y, &q.z), &z2z2);
        let s2 = f.mont_mul(&f.mont_mul(&q.y, &p.z), &z1z1);
        if u1 == u2 {
            return if s1 == s2 {
                self.jac_double(p)
            } else {
                // p + (−p) = identity
                Jacobian {
                    x: f.one(),
                    y: f.one(),
                    z: U256::ZERO,
                }
            };
        }
        let h = f.sub(&u2, &u1);
        let i = f.mont_sqr(&f.double(&h));
        let j = f.mont_mul(&h, &i);
        let r = f.double(&f.sub(&s2, &s1));
        let v = f.mont_mul(&u1, &i);
        let x3 = f.sub(&f.sub(&f.mont_sqr(&r), &j), &f.double(&v));
        let y3 = f.sub(
            &f.mont_mul(&r, &f.sub(&v, &x3)),
            &f.double(&f.mont_mul(&s1, &j)),
        );
        let z3 = f.mont_mul(
            &f.sub(&f.sub(&f.mont_sqr(&f.add(&p.z, &q.z)), &z1z1), &z2z2),
            &h,
        );
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    fn jac_mul(&self, p: &Jacobian, k: &U256) -> Jacobian {
        let mut acc = Jacobian {
            x: self.f().one(),
            y: self.f().one(),
            z: U256::ZERO,
        };
        for i in (0..k.bits()).rev() {
            acc = self.jac_double(&acc);
            if k.bit(i) {
                acc = self.jac_add(&acc, p);
            }
        }
        acc
    }

    /// Lifts a candidate x-coordinate (canonical form) onto the curve,
    /// choosing the y whose parity matches `y_parity`.
    fn lift_x(&self, x_canon: &U256, y_parity: bool) -> Option<P256Point> {
        if x_canon >= self.f().modulus() {
            return None;
        }
        let f = self.f();
        let x = f.to_mont(x_canon);
        let x3 = f.mont_mul(&f.mont_sqr(&x), &x);
        let ax = f.mont_mul(&self.inner.three, &x);
        let rhs = f.add(&f.sub(&x3, &ax), &self.inner.b);
        let y = f.sqrt_p3mod4(&rhs)?;
        let y_canon = f.from_mont(&y);
        let y = if y_canon.is_odd() == y_parity {
            y
        } else {
            f.neg(&y)
        };
        Some(P256Point::Affine { x, y })
    }
}

impl CyclicGroup for P256Group {
    type Elem = P256Point;

    fn name(&self) -> &'static str {
        "p256"
    }

    fn order(&self) -> &U256 {
        &self.inner.order
    }

    fn scalar_ctx(&self) -> &ScalarCtx {
        &self.inner.scalar
    }

    fn identity(&self) -> P256Point {
        P256Point::Identity
    }

    fn generator(&self) -> P256Point {
        self.inner.gen.clone()
    }

    fn pedersen_h(&self) -> P256Point {
        self.inner.h.clone()
    }

    fn op(&self, a: &P256Point, b: &P256Point) -> P256Point {
        // Fast paths avoid Jacobian conversions for identity operands.
        match (a, b) {
            (P256Point::Identity, _) => b.clone(),
            (_, P256Point::Identity) => a.clone(),
            _ => {
                let j = self.jac_add(&self.to_jacobian(a), &self.to_jacobian(b));
                self.to_affine(&j)
            }
        }
    }

    fn inv(&self, a: &P256Point) -> P256Point {
        match a {
            P256Point::Identity => P256Point::Identity,
            P256Point::Affine { x, y } => P256Point::Affine {
                x: *x,
                y: self.f().neg(y),
            },
        }
    }

    fn exp_uint(&self, base: &P256Point, k: &U256) -> P256Point {
        let k = if k < self.order() {
            *k
        } else {
            k.rem(self.order())
        };
        let j = self.jac_mul(&self.to_jacobian(base), &k);
        self.to_affine(&j)
    }

    fn serialize(&self, a: &P256Point) -> Vec<u8> {
        match a {
            P256Point::Identity => vec![0x00],
            P256Point::Affine { x, y } => {
                let f = self.f();
                let mut out = Vec::with_capacity(65);
                out.push(0x04);
                out.extend_from_slice(&f.from_mont(x).to_be_bytes());
                out.extend_from_slice(&f.from_mont(y).to_be_bytes());
                out
            }
        }
    }

    fn deserialize(&self, bytes: &[u8]) -> Option<P256Point> {
        match bytes {
            [0x00] => Some(P256Point::Identity),
            [0x04, rest @ ..] if rest.len() == 64 => {
                let xc = U256::from_be_bytes(&rest[..32])?;
                let yc = U256::from_be_bytes(&rest[32..])?;
                let f = self.f();
                if &xc >= f.modulus() || &yc >= f.modulus() {
                    return None;
                }
                let x = f.to_mont(&xc);
                let y = f.to_mont(&yc);
                if self.is_on_curve(&x, &y) {
                    Some(P256Point::Affine { x, y })
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn hash_to_group(&self, domain: &str, data: &[u8]) -> P256Point {
        // Try-and-increment: hash (domain ‖ data ‖ counter) to a candidate
        // x; succeed with probability ≈ 1/2 per attempt. Cofactor 1 means
        // any curve point already lies in the prime-order group.
        for counter in 0u32..=u32::MAX {
            let digest = sha256_concat(&[
                b"pbcd-h2c-p256:",
                domain.as_bytes(),
                b":",
                data,
                &counter.to_be_bytes(),
            ]);
            let xc = U256::from_be_bytes(&digest)
                .expect("32 bytes fits")
                .rem(self.f().modulus());
            let parity = digest[0] & 1 == 1;
            if let Some(p) = self.lift_x(&xc, parity) {
                return p;
            }
        }
        unreachable!("hash-to-curve failed for 2^32 counters")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn g() -> P256Group {
        P256Group::new()
    }

    fn pt(group: &P256Group, x_hex: &str, y_hex: &str) -> P256Point {
        let f = group.f();
        P256Point::Affine {
            x: f.to_mont(&U256::from_hex(x_hex).unwrap()),
            y: f.to_mont(&U256::from_hex(y_hex).unwrap()),
        }
    }

    #[test]
    fn generator_is_on_curve() {
        let grp = g();
        match grp.generator() {
            P256Point::Affine { x, y } => assert!(grp.is_on_curve(&x, &y)),
            _ => panic!("generator must be affine"),
        }
    }

    #[test]
    fn known_scalar_multiples() {
        // Independently computed with a reference implementation.
        let grp = g();
        let cases = [
            (
                U256::from_u64(2),
                "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978",
                "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1",
            ),
            (
                U256::from_u64(3),
                "5ecbe4d1a6330a44c8f7ef951d4bf165e6c6b721efada985fb41661bc6e7fd6c",
                "8734640c4998ff7e374b06ce1a64a2ecd82ab036384fb83d9a79b127a27d5032",
            ),
            (
                U256::from_u64(5),
                "51590b7a515140d2d784c85608668fdfef8c82fd1f5be52421554a0dc3d033ed",
                "e0c17da8904a727d8ae1bf36bf8a79260d012f00d4d80888d1d0bb44fda16da4",
            ),
            (
                U256::from_u64(112233445566778899),
                "339150844ec15234807fe862a86be77977dbfb3ae3d96f4c22795513aeaab82f",
                "b1c14ddfdc8ec1b2583f51e85a5eb3a155840f2034730e9b5ada38b674336a21",
            ),
        ];
        for (k, x, y) in cases {
            assert_eq!(grp.exp_uint(&grp.generator(), &k), pt(&grp, x, y));
        }
    }

    #[test]
    fn order_times_generator_is_identity() {
        let grp = g();
        let n = *grp.order();
        assert_eq!(grp.exp_uint(&grp.generator(), &n), P256Point::Identity);
        // (n-1)·G = −G.
        let nm1 = n.wrapping_sub(&U256::one());
        assert_eq!(
            grp.exp_uint(&grp.generator(), &nm1),
            grp.inv(&grp.generator())
        );
    }

    #[test]
    fn group_laws() {
        let grp = g();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..10 {
            let a = grp.exp_g(&grp.random_scalar(&mut rng));
            let b = grp.exp_g(&grp.random_scalar(&mut rng));
            let c = grp.exp_g(&grp.random_scalar(&mut rng));
            assert_eq!(grp.op(&a, &b), grp.op(&b, &a));
            assert_eq!(grp.op(&grp.op(&a, &b), &c), grp.op(&a, &grp.op(&b, &c)));
            assert_eq!(grp.op(&a, &grp.identity()), a);
            assert_eq!(grp.op(&a, &grp.inv(&a)), grp.identity());
        }
    }

    #[test]
    fn exponent_homomorphism() {
        let grp = g();
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let sc = grp.scalar_ctx().clone();
        for _ in 0..10 {
            let x = sc.random(&mut rng);
            let y = sc.random(&mut rng);
            // g^x · g^y = g^(x+y)
            let lhs = grp.op(&grp.exp_g(&x), &grp.exp_g(&y));
            let rhs = grp.exp_g(&(&x + &y));
            assert_eq!(lhs, rhs);
            // (g^x)^y = g^(xy)
            let lhs = grp.exp(&grp.exp_g(&x), &y);
            let rhs = grp.exp_g(&(&x * &y));
            assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let grp = g();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for _ in 0..10 {
            let p = grp.exp_g(&grp.random_scalar(&mut rng));
            let enc = grp.serialize(&p);
            assert_eq!(grp.deserialize(&enc), Some(p));
        }
        assert_eq!(
            grp.deserialize(&grp.serialize(&grp.identity())),
            Some(P256Point::Identity)
        );
    }

    #[test]
    fn deserialize_rejects_off_curve() {
        let grp = g();
        let mut enc = grp.serialize(&grp.generator());
        enc[64] ^= 1; // corrupt y
        assert_eq!(grp.deserialize(&enc), None);
        assert_eq!(grp.deserialize(&[]), None);
        assert_eq!(grp.deserialize(&[0x04, 0, 0]), None);
    }

    #[test]
    fn hash_to_group_deterministic_and_valid() {
        let grp = g();
        let p1 = grp.hash_to_group("test", b"hello");
        let p2 = grp.hash_to_group("test", b"hello");
        assert_eq!(p1, p2);
        let p3 = grp.hash_to_group("test", b"world");
        assert_ne!(p1, p3);
        match p1 {
            P256Point::Affine { x, y } => assert!(grp.is_on_curve(&x, &y)),
            _ => panic!("hash output should not be identity"),
        }
    }

    #[test]
    fn pedersen_h_differs_from_generator() {
        let grp = g();
        assert_ne!(grp.pedersen_h(), grp.generator());
        assert_ne!(grp.pedersen_h(), grp.identity());
    }

    #[test]
    fn double_of_two_torsion_free() {
        // Doubling the identity stays identity.
        let grp = g();
        assert_eq!(
            grp.op(&grp.identity(), &grp.identity()),
            P256Point::Identity
        );
        // a + a uses the doubling path through exp.
        let two = U256::from_u64(2);
        let gen = grp.generator();
        assert_eq!(grp.op(&gen, &gen), grp.exp_uint(&gen, &two));
    }
}
