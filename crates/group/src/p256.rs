//! NIST P-256 (secp256r1) — the workspace's default group backend.
//!
//! Short-Weierstrass curve `y² = x³ − 3x + b` over the 256-bit prime field,
//! prime group order (cofactor 1), Jacobian projective arithmetic in
//! Montgomery form.
//!
//! Scalar multiplication is **variable-time** (adequate for a research
//! reproduction, noted as such — see `docs/ARCHITECTURE.md`, "Group
//! arithmetic"):
//!
//! * variable bases use width-5 wNAF recoding with a batch-normalized
//!   table of odd affine multiples and mixed (Jacobian + affine) addition;
//! * the fixed bases `g` and `h` use lazily built radix-16 comb tables
//!   (64 windows × 15 affine points ≈ 60 KiB per base), reducing `g^k` to
//!   ~60 mixed additions with no doublings at all;
//! * `a^x · b^y` runs as a Straus interleaving with one shared doubling
//!   chain.

use crate::p256_field as pf;
use crate::traits::{CyclicGroup, Scalar, ScalarCtx};
use pbcd_crypto::sha256_concat;
use pbcd_math::{FpCtx, MontCtx, U256};
use std::sync::{Arc, OnceLock};

const P_HEX: &str = "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff";
const N_HEX: &str = "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551";
const B_HEX: &str = "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b";
const GX_HEX: &str = "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296";
const GY_HEX: &str = "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5";

/// An affine P-256 point (coordinates in Montgomery form) or the identity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum P256Point {
    /// The point at infinity (group identity).
    Identity,
    /// An affine point with Montgomery-form coordinates.
    Affine {
        /// x-coordinate (Montgomery form).
        x: U256,
        /// y-coordinate (Montgomery form).
        y: U256,
    },
}

/// Jacobian-coordinate point used internally for arithmetic.
#[derive(Clone, Copy)]
struct Jacobian {
    x: U256,
    y: U256,
    z: U256, // z = 0 encodes the identity
}

/// A nonzero affine point (Montgomery-form coordinates) used in
/// precomputed tables, where mixed addition makes `z = 1` operands pay.
#[derive(Clone, Copy)]
struct AffinePt {
    x: U256,
    y: U256,
}

/// Window width of the wNAF recoding for variable-base multiplication
/// (odd multiples `1P, 3P, …, 15P` — 8 table points).
const WNAF_WINDOW: u32 = 5;
/// Window width of the fixed-base comb tables for `g` and `h`.
const COMB_WINDOW: u32 = 4;

/// Fixed-base comb: `tables[i][d − 1] = (d · 2^(w·i)) · B` as affine
/// points, one row per `w`-bit window of the 256-bit scalar.
struct CombTable {
    tables: Vec<Vec<AffinePt>>,
}

/// The P-256 group backend.
#[derive(Clone)]
pub struct P256Group {
    inner: Arc<P256Inner>,
}

struct P256Inner {
    field: MontCtx<4>,
    scalar: ScalarCtx,
    order: U256,
    b: U256,     // Montgomery form
    three: U256, // Montgomery form of 3 (a = -3)
    gen: P256Point,
    h: P256Point,
    /// Lazily built fixed-base tables, shared by every clone of the
    /// group handle (they live behind the same `Arc`).
    g_comb: OnceLock<CombTable>,
    h_comb: OnceLock<CombTable>,
}

impl Default for P256Group {
    fn default() -> Self {
        Self::new()
    }
}

impl P256Group {
    /// Constructs the standard P-256 backend. Parameters are fixed NIST
    /// constants; `h` is derived by hashing a domain-separation tag into the
    /// curve (nothing-up-my-sleeve second generator).
    pub fn new() -> Self {
        let p = U256::from_hex(P_HEX).expect("static constant");
        let n = U256::from_hex(N_HEX).expect("static constant");
        let field = MontCtx::new(p);
        let scalar = FpCtx::new(n);
        let b = field.to_mont(&U256::from_hex(B_HEX).expect("static constant"));
        let three = field.to_mont(&U256::from_u64(3));
        let gen = P256Point::Affine {
            x: field.to_mont(&U256::from_hex(GX_HEX).expect("static constant")),
            y: field.to_mont(&U256::from_hex(GY_HEX).expect("static constant")),
        };
        let mut group = Self {
            inner: Arc::new(P256Inner {
                field,
                scalar,
                order: n,
                b,
                three,
                gen,
                h: P256Point::Identity, // patched below
                g_comb: OnceLock::new(),
                h_comb: OnceLock::new(),
            }),
        };
        let h = group.hash_to_group("pbcd-p256-pedersen-h", b"v1");
        Arc::get_mut(&mut group.inner)
            .expect("sole owner during construction")
            .h = h;
        group
    }

    fn f(&self) -> &MontCtx<4> {
        &self.inner.field
    }

    /// Checks the affine equation `y² = x³ − 3x + b` (Montgomery form).
    fn is_on_curve(&self, x: &U256, y: &U256) -> bool {
        let f = self.f();
        let y2 = f.mont_sqr(y);
        let x3 = f.mont_mul(&f.mont_sqr(x), x);
        let ax = f.mont_mul(&self.inner.three, x);
        let rhs = f.add(&f.sub(&x3, &ax), &self.inner.b);
        y2 == rhs
    }

    fn to_jacobian(&self, p: &P256Point) -> Jacobian {
        match p {
            P256Point::Identity => Jacobian {
                x: self.f().one(),
                y: self.f().one(),
                z: U256::ZERO,
            },
            P256Point::Affine { x, y } => Jacobian {
                x: *x,
                y: *y,
                z: self.f().one(),
            },
        }
    }

    fn to_affine(&self, p: &Jacobian) -> P256Point {
        if p.z.is_zero() {
            return P256Point::Identity;
        }
        let zinv = pf::inv_vartime(&p.z).expect("nonzero z");
        let zinv2 = pf::sqr(&zinv);
        let zinv3 = pf::mul(&zinv2, &zinv);
        P256Point::Affine {
            x: pf::mul(&p.x, &zinv2),
            y: pf::mul(&p.y, &zinv3),
        }
    }

    /// Jacobian doubling, specialized for `a = −3` (dbl-2001-b), on the
    /// dedicated field kernel ([`crate::p256_field`]).
    fn jac_double(&self, p: &Jacobian) -> Jacobian {
        if p.z.is_zero() || p.y.is_zero() {
            return self.jac_identity();
        }
        let delta = pf::sqr(&p.z);
        let gamma = pf::sqr(&p.y);
        let beta = pf::mul(&p.x, &gamma);
        // alpha = 3(x − delta)(x + delta)
        let alpha = {
            let t = pf::mul(&pf::sub(&p.x, &delta), &pf::add(&p.x, &delta));
            pf::add(&pf::dbl(&t), &t)
        };
        let four_beta = pf::dbl(&pf::dbl(&beta));
        let eight_beta = pf::dbl(&four_beta);
        let x3 = pf::sub(&pf::sqr(&alpha), &eight_beta);
        // z3 = 2·y·z — same value as the textbook (y + z)² − γ − δ but one
        // multiply instead of a square plus three additive ops, which is a
        // win when add/sub are not free relative to mul (this host).
        let z3 = pf::mul(&pf::dbl(&p.y), &p.z);
        // y3 = alpha(4beta − x3) − 8 gamma²
        let eight_gamma2 = {
            let g2 = pf::sqr(&gamma);
            pf::dbl(&pf::dbl(&pf::dbl(&g2)))
        };
        let y3 = pf::sub(&pf::mul(&alpha, &pf::sub(&four_beta, &x3)), &eight_gamma2);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian addition (add-2007-bl) on the dedicated kernel.
    fn jac_add(&self, p: &Jacobian, q: &Jacobian) -> Jacobian {
        if p.z.is_zero() {
            return *q;
        }
        if q.z.is_zero() {
            return *p;
        }
        let z1z1 = pf::sqr(&p.z);
        let z2z2 = pf::sqr(&q.z);
        let u1 = pf::mul(&p.x, &z2z2);
        let u2 = pf::mul(&q.x, &z1z1);
        let s1 = pf::mul(&pf::mul(&p.y, &q.z), &z2z2);
        let s2 = pf::mul(&pf::mul(&q.y, &p.z), &z1z1);
        if u1 == u2 {
            return if s1 == s2 {
                self.jac_double(p)
            } else {
                // p + (−p) = identity
                self.jac_identity()
            };
        }
        let h = pf::sub(&u2, &u1);
        let i = pf::sqr(&pf::dbl(&h));
        let j = pf::mul(&h, &i);
        let r = pf::dbl(&pf::sub(&s2, &s1));
        let v = pf::mul(&u1, &i);
        let x3 = pf::sub(&pf::sub(&pf::sqr(&r), &j), &pf::dbl(&v));
        let y3 = pf::sub(&pf::mul(&r, &pf::sub(&v, &x3)), &pf::dbl(&pf::mul(&s1, &j)));
        let z3 = pf::mul(
            &pf::sub(&pf::sub(&pf::sqr(&pf::add(&p.z, &q.z)), &z1z1), &z2z2),
            &h,
        );
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    fn jac_identity(&self) -> Jacobian {
        Jacobian {
            x: pf::one(),
            y: pf::one(),
            z: U256::ZERO,
        }
    }

    fn jac_from_affine(&self, q: &AffinePt) -> Jacobian {
        Jacobian {
            x: q.x,
            y: q.y,
            z: pf::one(),
        }
    }

    /// Mixed addition `p + q` with affine `q` (madd-2007-bl, `Z2 = 1`):
    /// 7M + 4S versus 11M + 5S for the general addition. Kernel field ops.
    fn jac_add_affine(&self, p: &Jacobian, q: &AffinePt) -> Jacobian {
        if p.z.is_zero() {
            return self.jac_from_affine(q);
        }
        let z1z1 = pf::sqr(&p.z);
        let u2 = pf::mul(&q.x, &z1z1);
        let s2 = pf::mul(&pf::mul(&q.y, &p.z), &z1z1);
        if p.x == u2 {
            return if p.y == s2 {
                self.jac_double(p)
            } else {
                self.jac_identity()
            };
        }
        let h = pf::sub(&u2, &p.x);
        let hh = pf::sqr(&h);
        let i = pf::dbl(&pf::dbl(&hh));
        let j = pf::mul(&h, &i);
        let r = pf::dbl(&pf::sub(&s2, &p.y));
        let v = pf::mul(&p.x, &i);
        let x3 = pf::sub(&pf::sub(&pf::sqr(&r), &j), &pf::dbl(&v));
        let y3 = pf::sub(
            &pf::mul(&r, &pf::sub(&v, &x3)),
            &pf::dbl(&pf::mul(&p.y, &j)),
        );
        let z3 = pf::sub(&pf::sub(&pf::sqr(&pf::add(&p.z, &h)), &z1z1), &hh);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// The generic-context twin of [`Self::jac_double`], kept for the naive
    /// reference ladder so `exp_naive` still measures the pre-kernel cost.
    fn jac_double_generic(&self, p: &Jacobian) -> Jacobian {
        if p.z.is_zero() || p.y.is_zero() {
            return self.jac_identity();
        }
        let f = self.f();
        let delta = f.mont_sqr(&p.z);
        let gamma = f.mont_sqr(&p.y);
        let beta = f.mont_mul(&p.x, &gamma);
        let alpha = {
            let t = f.mont_mul(&f.sub(&p.x, &delta), &f.add(&p.x, &delta));
            f.add(&f.double(&t), &t)
        };
        let four_beta = f.double(&f.double(&beta));
        let eight_beta = f.double(&four_beta);
        let x3 = f.sub(&f.mont_sqr(&alpha), &eight_beta);
        let z3 = f.sub(&f.sub(&f.mont_sqr(&f.add(&p.y, &p.z)), &gamma), &delta);
        let eight_gamma2 = {
            let g2 = f.mont_sqr(&gamma);
            f.double(&f.double(&f.double(&g2)))
        };
        let y3 = f.sub(&f.mont_mul(&alpha, &f.sub(&four_beta, &x3)), &eight_gamma2);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// The generic-context twin of [`Self::jac_add`] for the naive ladder.
    fn jac_add_generic(&self, p: &Jacobian, q: &Jacobian) -> Jacobian {
        if p.z.is_zero() {
            return *q;
        }
        if q.z.is_zero() {
            return *p;
        }
        let f = self.f();
        let z1z1 = f.mont_sqr(&p.z);
        let z2z2 = f.mont_sqr(&q.z);
        let u1 = f.mont_mul(&p.x, &z2z2);
        let u2 = f.mont_mul(&q.x, &z1z1);
        let s1 = f.mont_mul(&f.mont_mul(&p.y, &q.z), &z2z2);
        let s2 = f.mont_mul(&f.mont_mul(&q.y, &p.z), &z1z1);
        if u1 == u2 {
            return if s1 == s2 {
                self.jac_double_generic(p)
            } else {
                self.jac_identity()
            };
        }
        let h = f.sub(&u2, &u1);
        let i = f.mont_sqr(&f.double(&h));
        let j = f.mont_mul(&h, &i);
        let r = f.double(&f.sub(&s2, &s1));
        let v = f.mont_mul(&u1, &i);
        let x3 = f.sub(&f.sub(&f.mont_sqr(&r), &j), &f.double(&v));
        let y3 = f.sub(
            &f.mont_mul(&r, &f.sub(&v, &x3)),
            &f.double(&f.mont_mul(&s1, &j)),
        );
        let z3 = f.mont_mul(
            &f.sub(&f.sub(&f.mont_sqr(&f.add(&p.z, &q.z)), &z1z1), &z2z2),
            &h,
        );
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Normalizes a batch of *nonzero* Jacobian points to affine with one
    /// shared field inversion (Montgomery's trick on the kernel).
    fn batch_to_affine(&self, pts: &[Jacobian]) -> Vec<AffinePt> {
        if pts.is_empty() {
            return Vec::new();
        }
        // Prefix products of the z's, one inversion, then walk back.
        let mut prefix = Vec::with_capacity(pts.len());
        let mut acc = pf::one();
        for p in pts {
            prefix.push(acc);
            acc = pf::mul(&acc, &p.z);
        }
        let mut inv_acc = pf::inv_vartime(&acc).expect("table points are nonzero");
        let mut out = vec![
            AffinePt {
                x: pf::one(),
                y: pf::one(),
            };
            pts.len()
        ];
        for (i, p) in pts.iter().enumerate().rev() {
            let zinv = pf::mul(&inv_acc, &prefix[i]);
            inv_acc = pf::mul(&inv_acc, &p.z);
            let zinv2 = pf::sqr(&zinv);
            out[i] = AffinePt {
                x: pf::mul(&p.x, &zinv2),
                y: pf::mul(&p.y, &pf::mul(&zinv2, &zinv)),
            };
        }
        out
    }

    /// Allocation-free twin of [`Self::batch_to_affine`] for the small
    /// fixed-size tables on the `exp` hot path.
    fn batch_to_affine_n<const N: usize>(&self, pts: &[Jacobian; N]) -> [AffinePt; N] {
        let mut prefix = [pf::one(); N];
        let mut acc = pf::one();
        for (i, p) in pts.iter().enumerate() {
            prefix[i] = acc;
            acc = pf::mul(&acc, &p.z);
        }
        let mut inv_acc = pf::inv_vartime(&acc).expect("table points are nonzero");
        let mut out = [AffinePt {
            x: pf::one(),
            y: pf::one(),
        }; N];
        for (i, p) in pts.iter().enumerate().rev() {
            let zinv = pf::mul(&inv_acc, &prefix[i]);
            inv_acc = pf::mul(&inv_acc, &p.z);
            let zinv2 = pf::sqr(&zinv);
            out[i] = AffinePt {
                x: pf::mul(&p.x, &zinv2),
                y: pf::mul(&p.y, &pf::mul(&zinv2, &zinv)),
            };
        }
        out
    }

    /// Width-`w` NAF recoding into a caller-provided buffer: signed odd
    /// digits in `±{1, 3, …, 2^(w−1)−1}` with at least `w − 1` zeros
    /// between nonzero digits, lsb first. Returns the digit count.
    fn wnaf_into(k: &U256, w: u32, out: &mut [i8; 257]) -> usize {
        let mut k = *k;
        let mut len = 0;
        let mask = (1u64 << w) - 1;
        while !k.is_zero() {
            if k.is_odd() {
                let mut d = (k.limbs()[0] & mask) as i64;
                if d >= 1 << (w - 1) {
                    d -= 1 << w;
                }
                if d >= 0 {
                    k = k.wrapping_sub(&U256::from_u64(d as u64));
                } else {
                    k = k.wrapping_add(&U256::from_u64((-d) as u64));
                }
                out[len] = d as i8;
            } else {
                out[len] = 0;
            }
            len += 1;
            k = k.shr(1);
        }
        len
    }

    /// Builds the wNAF table of odd multiples `1P, 3P, …, (2N − 1)P` as
    /// batch-normalized affine points, allocation-free.
    fn wnaf_table<const N: usize>(&self, p: &Jacobian) -> [AffinePt; N] {
        let mut jac_table = [*p; N];
        let twop = self.jac_double(p);
        for i in 1..N {
            jac_table[i] = self.jac_add(&jac_table[i - 1], &twop);
        }
        self.batch_to_affine_n(&jac_table)
    }

    /// Variable-base scalar multiplication: wNAF over a batch-normalized
    /// table of odd affine multiples, with mixed additions in the main
    /// loop and no heap allocation. `k` must already be reduced modulo the
    /// order.
    fn jac_mul(&self, p: &Jacobian, k: &U256) -> Jacobian {
        if k.is_zero() || p.z.is_zero() {
            return self.jac_identity();
        }
        // Odd multiples 1P, 3P, …, (2^(w−1)−1)P.
        const TABLE_LEN: usize = 1 << (WNAF_WINDOW - 2);
        let table: [AffinePt; TABLE_LEN] = self.wnaf_table(p);
        let mut digits = [0i8; 257];
        let len = Self::wnaf_into(k, WNAF_WINDOW, &mut digits);
        let mut acc = self.jac_identity();
        for &d in digits[..len].iter().rev() {
            acc = self.jac_double(&acc);
            if d != 0 {
                let entry = table[(d.unsigned_abs() as usize) >> 1];
                let entry = if d > 0 {
                    entry
                } else {
                    AffinePt {
                        x: entry.x,
                        y: pf::neg(&entry.y),
                    }
                };
                acc = self.jac_add_affine(&acc, &entry);
            }
        }
        acc
    }

    /// The original MSB-first double-and-add ladder, kept as the reference
    /// implementation the equivalence tests and benches compare against.
    fn jac_mul_naive(&self, p: &Jacobian, k: &U256) -> Jacobian {
        let mut acc = self.jac_identity();
        for i in (0..k.bits()).rev() {
            acc = self.jac_double_generic(&acc);
            if k.bit(i) {
                acc = self.jac_add_generic(&acc, p);
            }
        }
        acc
    }

    /// Naive double-and-add exponentiation — the pre-optimization
    /// reference ladder, exposed for the equivalence test-suite and the
    /// speedup-tracking benches. Semantically identical to
    /// [`CyclicGroup::exp_uint`], just slower.
    pub fn exp_naive(&self, base: &P256Point, k: &U256) -> P256Point {
        let k = if k < self.order() {
            *k
        } else {
            k.rem(self.order())
        };
        let j = self.jac_mul_naive(&self.to_jacobian(base), &k);
        self.to_affine(&j)
    }

    /// Builds the fixed-base comb for `base`: for every `w`-bit window
    /// position, all 15 odd-and-even digit multiples as affine points,
    /// normalized with a single batched inversion.
    fn build_comb(&self, base: &P256Point) -> CombTable {
        let base = match base {
            P256Point::Affine { x, y } => AffinePt { x: *x, y: *y },
            P256Point::Identity => unreachable!("fixed bases are non-identity"),
        };
        let windows = 256u32.div_ceil(COMB_WINDOW) as usize;
        let row_len = (1usize << COMB_WINDOW) - 1;
        let mut all = Vec::with_capacity(windows * row_len);
        let mut window_base = self.jac_from_affine(&base);
        for _ in 0..windows {
            // d·B for d = 1..=15: repeated addition of B.
            all.push(window_base);
            for _ in 1..row_len {
                let next = self.jac_add(&all[all.len() - 1], &window_base);
                all.push(next);
            }
            // Next window base: 16·B = 15·B + B.
            window_base = self.jac_add(&all[all.len() - 1], &window_base);
        }
        let affine = self.batch_to_affine(&all);
        CombTable {
            tables: affine.chunks(row_len).map(<[AffinePt]>::to_vec).collect(),
        }
    }

    /// Fixed-base exponentiation from a comb table: one mixed addition per
    /// nonzero window digit, no doublings. `k` must be reduced.
    fn comb_mul(&self, comb: &CombTable, k: &U256) -> Jacobian {
        let mut acc = self.jac_identity();
        for (i, row) in comb.tables.iter().enumerate() {
            let base_bit = i as u32 * COMB_WINDOW;
            let mut d = 0usize;
            for b in (0..COMB_WINDOW).rev() {
                d = (d << 1) | k.bit(base_bit + b) as usize;
            }
            if d != 0 {
                acc = self.jac_add_affine(&acc, &row[d - 1]);
            }
        }
        acc
    }

    fn g_comb(&self) -> &CombTable {
        self.inner
            .g_comb
            .get_or_init(|| self.build_comb(&self.inner.gen))
    }

    fn h_comb(&self) -> &CombTable {
        self.inner
            .h_comb
            .get_or_init(|| self.build_comb(&self.inner.h))
    }

    /// Straus interleaving for `a^x · b^y`: width-4 wNAF tables for both
    /// bases and one shared doubling chain, allocation-free.
    fn straus2(&self, a: &Jacobian, x: &U256, b: &Jacobian, y: &U256) -> Jacobian {
        const W: u32 = 4;
        const TABLE_LEN: usize = 1 << (W - 2);
        if a.z.is_zero() || x.is_zero() {
            return self.jac_mul(b, y);
        }
        if b.z.is_zero() || y.is_zero() {
            return self.jac_mul(a, x);
        }
        // Both tables share one batched inversion.
        let mut jt = [*a; 2 * TABLE_LEN];
        for (start, p) in [(0, a), (TABLE_LEN, b)] {
            jt[start] = *p;
            let twop = self.jac_double(p);
            for i in 1..TABLE_LEN {
                jt[start + i] = self.jac_add(&jt[start + i - 1], &twop);
            }
        }
        let table = self.batch_to_affine_n(&jt);
        let (ta, tb) = table.split_at(TABLE_LEN);
        let mut da = [0i8; 257];
        let la = Self::wnaf_into(x, W, &mut da);
        let mut db = [0i8; 257];
        let lb = Self::wnaf_into(y, W, &mut db);
        let mut acc = self.jac_identity();
        for i in (0..la.max(lb)).rev() {
            acc = self.jac_double(&acc);
            for (digits, tbl) in [(&da, ta), (&db, tb)] {
                let d = digits[i];
                if d != 0 {
                    let entry = tbl[(d.unsigned_abs() as usize) >> 1];
                    let entry = if d > 0 {
                        entry
                    } else {
                        AffinePt {
                            x: entry.x,
                            y: pf::neg(&entry.y),
                        }
                    };
                    acc = self.jac_add_affine(&acc, &entry);
                }
            }
        }
        acc
    }

    /// Pippenger's bucket method over affine points with canonical scalars.
    ///
    /// The window width `c` is chosen at runtime to minimize the operation
    /// model `⌈256/c⌉ · (n + 2^(c+1))`: each of the `⌈256/c⌉` windows costs
    /// `n` bucket insertions plus two passes over the `2^c − 1` buckets for
    /// the running-sum reduction (all mixed or general additions), and the
    /// `c` doublings per window are folded into the constant. Small `n`
    /// picks small windows (degrading gracefully to near-wNAF behaviour),
    /// `n = 256` picks `c = 7–8`.
    fn pippenger(&self, pts: &[AffinePt], scalars: &[U256]) -> Jacobian {
        debug_assert_eq!(pts.len(), scalars.len());
        let n = pts.len();
        let c = (1u32..=15)
            .min_by_key(|&c| {
                let windows = 256u64.div_ceil(u64::from(c));
                windows * (n as u64 + (1u64 << (c + 1)))
            })
            .expect("non-empty range");
        let windows = 256u32.div_ceil(c);
        let num_buckets = (1usize << c) - 1;
        let mut buckets = vec![self.jac_identity(); num_buckets];
        let mut acc = self.jac_identity();
        for w in (0..windows).rev() {
            if !acc.z.is_zero() {
                for _ in 0..c {
                    acc = self.jac_double(&acc);
                }
            }
            for b in buckets.iter_mut() {
                *b = self.jac_identity();
            }
            let base_bit = w * c;
            for (p, k) in pts.iter().zip(scalars) {
                let mut d = 0usize;
                for b in (0..c).rev() {
                    let bit = base_bit + b;
                    d = (d << 1) | (bit < 256 && k.bit(bit)) as usize;
                }
                if d != 0 {
                    buckets[d - 1] = self.jac_add_affine(&buckets[d - 1], p);
                }
            }
            // Running-sum reduction: Σ d·bucket[d] with two addition passes.
            let mut running = self.jac_identity();
            let mut window_sum = self.jac_identity();
            for b in buckets.iter().rev() {
                running = self.jac_add(&running, b);
                window_sum = self.jac_add(&window_sum, &running);
            }
            acc = self.jac_add(&acc, &window_sum);
        }
        acc
    }

    /// Lifts a candidate x-coordinate (canonical form) onto the curve,
    /// choosing the y whose parity matches `y_parity`.
    fn lift_x(&self, x_canon: &U256, y_parity: bool) -> Option<P256Point> {
        if x_canon >= self.f().modulus() {
            return None;
        }
        let f = self.f();
        let x = f.to_mont(x_canon);
        let x3 = f.mont_mul(&f.mont_sqr(&x), &x);
        let ax = f.mont_mul(&self.inner.three, &x);
        let rhs = f.add(&f.sub(&x3, &ax), &self.inner.b);
        let y = f.sqrt_p3mod4(&rhs)?;
        let y_canon = f.from_mont(&y);
        let y = if y_canon.is_odd() == y_parity {
            y
        } else {
            f.neg(&y)
        };
        Some(P256Point::Affine { x, y })
    }
}

impl CyclicGroup for P256Group {
    type Elem = P256Point;

    fn name(&self) -> &'static str {
        "p256"
    }

    fn order(&self) -> &U256 {
        &self.inner.order
    }

    fn scalar_ctx(&self) -> &ScalarCtx {
        &self.inner.scalar
    }

    fn identity(&self) -> P256Point {
        P256Point::Identity
    }

    fn generator(&self) -> P256Point {
        self.inner.gen.clone()
    }

    fn pedersen_h(&self) -> P256Point {
        self.inner.h.clone()
    }

    fn op(&self, a: &P256Point, b: &P256Point) -> P256Point {
        // Fast paths avoid Jacobian conversions for identity operands.
        match (a, b) {
            (P256Point::Identity, _) => b.clone(),
            (_, P256Point::Identity) => a.clone(),
            _ => {
                let j = self.jac_add(&self.to_jacobian(a), &self.to_jacobian(b));
                self.to_affine(&j)
            }
        }
    }

    fn inv(&self, a: &P256Point) -> P256Point {
        match a {
            P256Point::Identity => P256Point::Identity,
            P256Point::Affine { x, y } => P256Point::Affine {
                x: *x,
                y: self.f().neg(y),
            },
        }
    }

    fn exp_uint(&self, base: &P256Point, k: &U256) -> P256Point {
        crate::ops::count_exp(1);
        let k = if k < self.order() {
            *k
        } else {
            k.rem(self.order())
        };
        let j = self.jac_mul(&self.to_jacobian(base), &k);
        self.to_affine(&j)
    }

    fn warm_up(&self) {
        self.g_comb();
        self.h_comb();
    }

    fn exp_g(&self, k: &Scalar) -> P256Point {
        crate::ops::count_exp(1);
        self.to_affine(&self.comb_mul(self.g_comb(), &k.to_uint()))
    }

    fn exp_h(&self, k: &Scalar) -> P256Point {
        crate::ops::count_exp(1);
        self.to_affine(&self.comb_mul(self.h_comb(), &k.to_uint()))
    }

    fn exp2(&self, a: &P256Point, x: &Scalar, b: &P256Point, y: &Scalar) -> P256Point {
        crate::ops::count_exp2();
        let j = self.straus2(
            &self.to_jacobian(a),
            &x.to_uint(),
            &self.to_jacobian(b),
            &y.to_uint(),
        );
        self.to_affine(&j)
    }

    fn pedersen_gh(&self, m: &Scalar, r: &Scalar) -> P256Point {
        crate::ops::count_exp(2);
        let gm = self.comb_mul(self.g_comb(), &m.to_uint());
        let hr = self.comb_mul(self.h_comb(), &r.to_uint());
        self.to_affine(&self.jac_add(&gm, &hr))
    }

    fn msm(&self, terms: &[(P256Point, Scalar)]) -> P256Point {
        // Identity bases and zero scalars contribute nothing; the bucket
        // method needs the survivors in affine form, which they already are.
        let mut pts = Vec::with_capacity(terms.len());
        let mut scalars = Vec::with_capacity(terms.len());
        for (base, k) in terms {
            if let P256Point::Affine { x, y } = base {
                let ku = k.to_uint();
                if !ku.is_zero() {
                    pts.push(AffinePt { x: *x, y: *y });
                    scalars.push(ku);
                }
            }
        }
        if pts.is_empty() {
            return P256Point::Identity;
        }
        crate::ops::count_exp(pts.len() as u64);
        self.to_affine(&self.pippenger(&pts, &scalars))
    }

    fn prod_pow2(&self, elems: &[P256Point]) -> P256Point {
        let mut acc = self.jac_identity();
        for e in elems.iter().rev() {
            acc = self.jac_double(&acc);
            match e {
                P256Point::Identity => {}
                P256Point::Affine { x, y } => {
                    acc = self.jac_add_affine(&acc, &AffinePt { x: *x, y: *y });
                }
            }
        }
        self.to_affine(&acc)
    }

    fn serialize(&self, a: &P256Point) -> Vec<u8> {
        match a {
            P256Point::Identity => vec![0x00],
            P256Point::Affine { x, y } => {
                let f = self.f();
                let mut out = Vec::with_capacity(65);
                out.push(0x04);
                out.extend_from_slice(&f.from_mont(x).to_be_bytes());
                out.extend_from_slice(&f.from_mont(y).to_be_bytes());
                out
            }
        }
    }

    fn deserialize(&self, bytes: &[u8]) -> Option<P256Point> {
        match bytes {
            [0x00] => Some(P256Point::Identity),
            [0x04, rest @ ..] if rest.len() == 64 => {
                let xc = U256::from_be_bytes(&rest[..32])?;
                let yc = U256::from_be_bytes(&rest[32..])?;
                let f = self.f();
                if &xc >= f.modulus() || &yc >= f.modulus() {
                    return None;
                }
                let x = f.to_mont(&xc);
                let y = f.to_mont(&yc);
                if self.is_on_curve(&x, &y) {
                    Some(P256Point::Affine { x, y })
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn hash_to_group(&self, domain: &str, data: &[u8]) -> P256Point {
        // Try-and-increment: hash (domain ‖ data ‖ counter) to a candidate
        // x; succeed with probability ≈ 1/2 per attempt. Cofactor 1 means
        // any curve point already lies in the prime-order group.
        for counter in 0u32..=u32::MAX {
            let digest = sha256_concat(&[
                b"pbcd-h2c-p256:",
                domain.as_bytes(),
                b":",
                data,
                &counter.to_be_bytes(),
            ]);
            let xc = U256::from_be_bytes(&digest)
                .expect("32 bytes fits")
                .rem(self.f().modulus());
            let parity = digest[0] & 1 == 1;
            if let Some(p) = self.lift_x(&xc, parity) {
                return p;
            }
        }
        unreachable!("hash-to-curve failed for 2^32 counters")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn g() -> P256Group {
        P256Group::new()
    }

    fn pt(group: &P256Group, x_hex: &str, y_hex: &str) -> P256Point {
        let f = group.f();
        P256Point::Affine {
            x: f.to_mont(&U256::from_hex(x_hex).unwrap()),
            y: f.to_mont(&U256::from_hex(y_hex).unwrap()),
        }
    }

    #[test]
    fn generator_is_on_curve() {
        let grp = g();
        match grp.generator() {
            P256Point::Affine { x, y } => assert!(grp.is_on_curve(&x, &y)),
            _ => panic!("generator must be affine"),
        }
    }

    #[test]
    fn known_scalar_multiples() {
        // Independently computed with a reference implementation.
        let grp = g();
        let cases = [
            (
                U256::from_u64(2),
                "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978",
                "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1",
            ),
            (
                U256::from_u64(3),
                "5ecbe4d1a6330a44c8f7ef951d4bf165e6c6b721efada985fb41661bc6e7fd6c",
                "8734640c4998ff7e374b06ce1a64a2ecd82ab036384fb83d9a79b127a27d5032",
            ),
            (
                U256::from_u64(5),
                "51590b7a515140d2d784c85608668fdfef8c82fd1f5be52421554a0dc3d033ed",
                "e0c17da8904a727d8ae1bf36bf8a79260d012f00d4d80888d1d0bb44fda16da4",
            ),
            (
                U256::from_u64(112233445566778899),
                "339150844ec15234807fe862a86be77977dbfb3ae3d96f4c22795513aeaab82f",
                "b1c14ddfdc8ec1b2583f51e85a5eb3a155840f2034730e9b5ada38b674336a21",
            ),
        ];
        for (k, x, y) in cases {
            assert_eq!(grp.exp_uint(&grp.generator(), &k), pt(&grp, x, y));
        }
    }

    #[test]
    fn order_times_generator_is_identity() {
        let grp = g();
        let n = *grp.order();
        assert_eq!(grp.exp_uint(&grp.generator(), &n), P256Point::Identity);
        // (n-1)·G = −G.
        let nm1 = n.wrapping_sub(&U256::one());
        assert_eq!(
            grp.exp_uint(&grp.generator(), &nm1),
            grp.inv(&grp.generator())
        );
    }

    #[test]
    fn group_laws() {
        let grp = g();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..10 {
            let a = grp.exp_g(&grp.random_scalar(&mut rng));
            let b = grp.exp_g(&grp.random_scalar(&mut rng));
            let c = grp.exp_g(&grp.random_scalar(&mut rng));
            assert_eq!(grp.op(&a, &b), grp.op(&b, &a));
            assert_eq!(grp.op(&grp.op(&a, &b), &c), grp.op(&a, &grp.op(&b, &c)));
            assert_eq!(grp.op(&a, &grp.identity()), a);
            assert_eq!(grp.op(&a, &grp.inv(&a)), grp.identity());
        }
    }

    #[test]
    fn exponent_homomorphism() {
        let grp = g();
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let sc = grp.scalar_ctx().clone();
        for _ in 0..10 {
            let x = sc.random(&mut rng);
            let y = sc.random(&mut rng);
            // g^x · g^y = g^(x+y)
            let lhs = grp.op(&grp.exp_g(&x), &grp.exp_g(&y));
            let rhs = grp.exp_g(&(&x + &y));
            assert_eq!(lhs, rhs);
            // (g^x)^y = g^(xy)
            let lhs = grp.exp(&grp.exp_g(&x), &y);
            let rhs = grp.exp_g(&(&x * &y));
            assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let grp = g();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for _ in 0..10 {
            let p = grp.exp_g(&grp.random_scalar(&mut rng));
            let enc = grp.serialize(&p);
            assert_eq!(grp.deserialize(&enc), Some(p));
        }
        assert_eq!(
            grp.deserialize(&grp.serialize(&grp.identity())),
            Some(P256Point::Identity)
        );
    }

    #[test]
    fn deserialize_rejects_off_curve() {
        let grp = g();
        let mut enc = grp.serialize(&grp.generator());
        enc[64] ^= 1; // corrupt y
        assert_eq!(grp.deserialize(&enc), None);
        assert_eq!(grp.deserialize(&[]), None);
        assert_eq!(grp.deserialize(&[0x04, 0, 0]), None);
    }

    #[test]
    fn hash_to_group_deterministic_and_valid() {
        let grp = g();
        let p1 = grp.hash_to_group("test", b"hello");
        let p2 = grp.hash_to_group("test", b"hello");
        assert_eq!(p1, p2);
        let p3 = grp.hash_to_group("test", b"world");
        assert_ne!(p1, p3);
        match p1 {
            P256Point::Affine { x, y } => assert!(grp.is_on_curve(&x, &y)),
            _ => panic!("hash output should not be identity"),
        }
    }

    #[test]
    fn pedersen_h_differs_from_generator() {
        let grp = g();
        assert_ne!(grp.pedersen_h(), grp.generator());
        assert_ne!(grp.pedersen_h(), grp.identity());
    }

    #[test]
    fn double_of_two_torsion_free() {
        // Doubling the identity stays identity.
        let grp = g();
        assert_eq!(
            grp.op(&grp.identity(), &grp.identity()),
            P256Point::Identity
        );
        // a + a uses the doubling path through exp.
        let two = U256::from_u64(2);
        let gen = grp.generator();
        assert_eq!(grp.op(&gen, &gen), grp.exp_uint(&gen, &two));
    }
}
