//! Dedicated P-256 field kernel: lazy-reduction Montgomery arithmetic on
//! fixed 4×64 limbs.
//!
//! The generic [`pbcd_math::MontCtx`] pays for its width-genericity on every
//! multiplication (a 66-limb scratch buffer, loop bounds that the compiler
//! cannot fully specialize). The doubling chain of a scalar multiplication
//! is nothing but field multiplications, so this module hard-codes the
//! NIST P-256 prime
//!
//! ```text
//! p = 2^256 − 2^224 + 2^192 + 2^96 − 1
//! ```
//!
//! and exploits its key structural property `−p⁻¹ ≡ 1 (mod 2^64)`: the
//! Montgomery reduction quotient digit is the accumulator limb itself, so
//! the whole reduction is four shifted multiply-adds by the sparse constant
//! limbs of `p` with no inverse multiplication at all.
//!
//! Values are **the same Montgomery residues** `a·2^256 mod p` that
//! `MontCtx::<4>` produces, always kept canonical (`< p`), so the kernel and
//! the generic context interoperate freely on the same `U256` words and
//! every result is bit-identical to the generic path (pinned by the
//! equivalence suite and in-module proptests). All paths are variable-time,
//! like the rest of the group layer (see `docs/ARCHITECTURE.md`).

use pbcd_math::U256;

/// The field prime `p`, little-endian limbs.
pub const P: [u64; 4] = [
    0xffff_ffff_ffff_ffff,
    0x0000_0000_ffff_ffff,
    0x0000_0000_0000_0000,
    0xffff_ffff_0000_0001,
];

/// `R mod p = 2^256 mod p` — the Montgomery representation of 1.
/// Since `2^255 < p < 2^256`, this is exactly `2^256 − p`.
pub const ONE: [u64; 4] = [
    0x0000_0000_0000_0001,
    0xffff_ffff_0000_0000,
    0xffff_ffff_ffff_ffff,
    0x0000_0000_ffff_fffe,
];

#[inline(always)]
fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

#[inline(always)]
fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128).wrapping_sub(b as u128 + borrow as u128);
    (t as u64, (t >> 127) as u64)
}

/// `z + a·b + carry` as a (low, high) pair — never overflows 128 bits.
#[inline(always)]
fn mac(z: u64, a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = z as u128 + (a as u128) * (b as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// `l − p`, returning the wrapped difference and the borrow.
#[inline(always)]
fn sub_p(l: &[u64; 4]) -> ([u64; 4], u64) {
    let (d0, b) = sbb(l[0], P[0], 0);
    let (d1, b) = sbb(l[1], P[1], b);
    let (d2, b) = sbb(l[2], P[2], b);
    let (d3, b) = sbb(l[3], P[3], b);
    ([d0, d1, d2, d3], b)
}

/// Canonicalizes a value `< 2p` given as `carry·2^256 + l`.
#[inline(always)]
fn reduce_once(l: [u64; 4], carry: u64) -> U256 {
    let (d, borrow) = sub_p(&l);
    if carry == 1 || borrow == 0 {
        U256::from_limbs(d)
    } else {
        U256::from_limbs(l)
    }
}

/// The Montgomery representation of 1.
#[inline]
pub fn one() -> U256 {
    U256::from_limbs(ONE)
}

/// `a + b mod p` (both canonical).
#[inline]
pub fn add(a: &U256, b: &U256) -> U256 {
    let a = a.limbs();
    let b = b.limbs();
    let (s0, c) = adc(a[0], b[0], 0);
    let (s1, c) = adc(a[1], b[1], c);
    let (s2, c) = adc(a[2], b[2], c);
    let (s3, c) = adc(a[3], b[3], c);
    reduce_once([s0, s1, s2, s3], c)
}

/// `2a mod p`.
#[inline]
pub fn dbl(a: &U256) -> U256 {
    add(a, a)
}

/// `a − b mod p`.
#[inline]
pub fn sub(a: &U256, b: &U256) -> U256 {
    let a = a.limbs();
    let b = b.limbs();
    let (d0, bo) = sbb(a[0], b[0], 0);
    let (d1, bo) = sbb(a[1], b[1], bo);
    let (d2, bo) = sbb(a[2], b[2], bo);
    let (d3, bo) = sbb(a[3], b[3], bo);
    if bo == 0 {
        return U256::from_limbs([d0, d1, d2, d3]);
    }
    let (r0, c) = adc(d0, P[0], 0);
    let (r1, c) = adc(d1, P[1], c);
    let (r2, c) = adc(d2, P[2], c);
    let (r3, _) = adc(d3, P[3], c);
    U256::from_limbs([r0, r1, r2, r3])
}

/// `−a mod p`.
#[inline]
pub fn neg(a: &U256) -> U256 {
    if a.is_zero() {
        return U256::ZERO;
    }
    let (d, _) = {
        let l = a.limbs();
        let (d0, b) = sbb(P[0], l[0], 0);
        let (d1, b) = sbb(P[1], l[1], b);
        let (d2, b) = sbb(P[2], l[2], b);
        let (d3, b) = sbb(P[3], l[3], b);
        ([d0, d1, d2, d3], b)
    };
    U256::from_limbs(d)
}

/// Montgomery reduction of an 8-limb product, fully unrolled for the
/// P-256 limbs. With `−p⁻¹ ≡ 1 (mod 2^64)` the quotient digit of each
/// step is the accumulator's low limb `m` itself, and the sparse prime
/// collapses the multiply-add row: `r + m·P[0] = m·2^64` (a free shift),
/// `P[2] = 0` turns one mac into a carry add.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn mont_reduce(r0: u64, r1: u64, r2: u64, r3: u64, r4: u64, r5: u64, r6: u64, r7: u64) -> U256 {
    let m = r0;
    let carry = m; // r0 + m·P[0] = m·2^64: low limb 0, carry m
    let (r1, carry) = mac(r1, m, P[1], carry);
    let (r2, carry) = adc(r2, 0, carry);
    let (r3, carry) = mac(r3, m, P[3], carry);
    let (r4, carry2) = adc(r4, carry, 0);

    let m = r1;
    let carry = m;
    let (r2, carry) = mac(r2, m, P[1], carry);
    let (r3, carry) = adc(r3, 0, carry);
    let (r4, carry) = mac(r4, m, P[3], carry);
    let (r5, carry2) = adc(r5, carry, carry2);

    let m = r2;
    let carry = m;
    let (r3, carry) = mac(r3, m, P[1], carry);
    let (r4, carry) = adc(r4, 0, carry);
    let (r5, carry) = mac(r5, m, P[3], carry);
    let (r6, carry2) = adc(r6, carry, carry2);

    let m = r3;
    let carry = m;
    let (r4, carry) = mac(r4, m, P[1], carry);
    let (r5, carry) = adc(r5, 0, carry);
    let (r6, carry) = mac(r6, m, P[3], carry);
    let (r7, carry2) = adc(r7, carry, carry2);

    reduce_once([r4, r5, r6, r7], carry2)
}

/// Montgomery product `a·b·2^−256 mod p` (both canonical Montgomery
/// residues; the result is too). Fully unrolled 4×4 schoolbook product
/// followed by the specialized reduction.
#[inline]
pub fn mul(a: &U256, b: &U256) -> U256 {
    let [a0, a1, a2, a3] = *a.limbs();
    let [b0, b1, b2, b3] = *b.limbs();

    let (r0, carry) = mac(0, a0, b0, 0);
    let (r1, carry) = mac(0, a0, b1, carry);
    let (r2, carry) = mac(0, a0, b2, carry);
    let (r3, r4) = mac(0, a0, b3, carry);

    let (r1, carry) = mac(r1, a1, b0, 0);
    let (r2, carry) = mac(r2, a1, b1, carry);
    let (r3, carry) = mac(r3, a1, b2, carry);
    let (r4, r5) = mac(r4, a1, b3, carry);

    let (r2, carry) = mac(r2, a2, b0, 0);
    let (r3, carry) = mac(r3, a2, b1, carry);
    let (r4, carry) = mac(r4, a2, b2, carry);
    let (r5, r6) = mac(r5, a2, b3, carry);

    let (r3, carry) = mac(r3, a3, b0, 0);
    let (r4, carry) = mac(r4, a3, b1, carry);
    let (r5, carry) = mac(r5, a3, b2, carry);
    let (r6, r7) = mac(r6, a3, b3, carry);

    mont_reduce(r0, r1, r2, r3, r4, r5, r6, r7)
}

/// Montgomery square `a²·2^−256 mod p`: cross products computed once and
/// doubled by shifting, then the diagonal terms — ~40% fewer limb
/// multiplications than `mul(a, a)`.
#[inline]
pub fn sqr(a: &U256) -> U256 {
    let [a0, a1, a2, a3] = *a.limbs();

    let (r1, carry) = mac(0, a0, a1, 0);
    let (r2, carry) = mac(0, a0, a2, carry);
    let (r3, r4) = mac(0, a0, a3, carry);
    let (r3, carry) = mac(r3, a1, a2, 0);
    let (r4, r5) = mac(r4, a1, a3, carry);
    let (r5, r6) = mac(r5, a2, a3, 0);

    let r7 = r6 >> 63;
    let r6 = (r6 << 1) | (r5 >> 63);
    let r5 = (r5 << 1) | (r4 >> 63);
    let r4 = (r4 << 1) | (r3 >> 63);
    let r3 = (r3 << 1) | (r2 >> 63);
    let r2 = (r2 << 1) | (r1 >> 63);
    let r1 = r1 << 1;

    let (r0, carry) = mac(0, a0, a0, 0);
    let (r1, carry) = adc(r1, 0, carry);
    let (r2, carry) = mac(r2, a1, a1, carry);
    let (r3, carry) = adc(r3, 0, carry);
    let (r4, carry) = mac(r4, a2, a2, carry);
    let (r5, carry) = adc(r5, 0, carry);
    let (r6, carry) = mac(r6, a3, a3, carry);
    let (r7, _) = adc(r7, 0, carry);

    mont_reduce(r0, r1, r2, r3, r4, r5, r6, r7)
}

/// `a^(2^n)` by repeated kernel squaring.
fn sqr_n(a: &U256, n: u32) -> U256 {
    let mut acc = *a;
    for _ in 0..n {
        acc = sqr(&acc);
    }
    acc
}

/// `R³ mod p` — domain-fixup constant for [`inv_vartime`]. The binary xgcd
/// inverts the raw words: given the Montgomery residue `a·R` it returns
/// `a⁻¹·R⁻¹ mod p`, and one Montgomery multiplication by `R³` restores the
/// Montgomery domain: `(a⁻¹·R⁻¹)·R³·R⁻¹ = a⁻¹·R`.
const R3: [u64; 4] = [
    0xffff_fffd_0000_000a,
    0xffff_ffed_ffff_fff7,
    0x0000_0005_ffff_fffc,
    0x0000_0018_0000_0001,
];

/// Multiplicative inverse of a Montgomery residue via variable-time binary
/// extended GCD; `None` for 0. Roughly 3–4× faster than the Fermat chain
/// [`inv`] on hosts where the carry-serialized multiplier is slow, because
/// it replaces ~300 field multiplications with word shifts and
/// subtractions. Variable-time, like every other path in this module.
pub fn inv_vartime(a: &U256) -> Option<U256> {
    if a.is_zero() {
        return None;
    }
    let p = U256::from_limbs(P);
    let mut u = *a;
    let mut v = p;
    let mut x1 = U256::one();
    let mut x2 = U256::ZERO;
    // Invariant: x1·a ≡ u and x2·a ≡ v (mod p); halving an odd x adds p
    // first, propagating the dropped carry into bit 255 (p < 2^256 keeps
    // the true sum below 2^257, so one bit suffices).
    let one = U256::one();
    let halve = |x: U256| {
        if x.is_even() {
            x.shr(1)
        } else {
            let (s, c) = x.overflowing_add(&p);
            let mut h = s.shr(1);
            if c {
                h.set_bit(255, true);
            }
            h
        }
    };
    while u != one && v != one {
        while u.is_even() {
            u = u.shr(1);
            x1 = halve(x1);
        }
        while v.is_even() {
            v = v.shr(1);
            x2 = halve(x2);
        }
        if u >= v {
            u = u.wrapping_sub(&v);
            x1 = if x1 >= x2 {
                x1.wrapping_sub(&x2)
            } else {
                x1.wrapping_add(&p).wrapping_sub(&x2)
            };
        } else {
            v = v.wrapping_sub(&u);
            x2 = if x2 >= x1 {
                x2.wrapping_sub(&x1)
            } else {
                x2.wrapping_add(&p).wrapping_sub(&x1)
            };
        }
    }
    let raw = if u == one { x1 } else { x2 };
    Some(mul(&raw, &U256::from_limbs(R3)))
}

/// Multiplicative inverse via Fermat (`a^(p−2)`) on a fixed addition
/// chain for the P-256 prime; `None` for 0. Exploits the run structure of
/// `p − 2 = 2^256 − 2^224 + 2^192 + 2^96 − 3`: build `a^(2^k − 1)` blocks
/// by ladder doubling, then stitch the exponent's bit runs together.
pub fn inv(a: &U256) -> Option<U256> {
    if a.is_zero() {
        return None;
    }
    // x_k = a^(2^k − 1).
    let x1 = *a;
    let x2 = mul(&sqr(&x1), &x1);
    let x3 = mul(&sqr(&x2), &x1);
    let x6 = mul(&sqr_n(&x3, 3), &x3);
    let x12 = mul(&sqr_n(&x6, 6), &x6);
    let x15 = mul(&sqr_n(&x12, 3), &x3);
    let x30 = mul(&sqr_n(&x15, 15), &x15);
    let x32 = mul(&sqr_n(&x30, 2), &x2);
    // The 94-one run, assembled as 64 + 30.
    let x64 = mul(&sqr_n(&x32, 32), &x32);
    let x94 = mul(&sqr_n(&x64, 30), &x30);
    // p − 2 = (2^32 − 1)·2^224 + 2^192 + (2^94 − 1)·2^2 + 1, consumed
    // MSB-first: 32 ones, 31 zeros, 1, 96 zeros, 94 ones, 0, 1.
    let mut acc = sqr_n(&x32, 32);
    acc = mul(&acc, a); // bit 192
    acc = sqr_n(&acc, 96); // bits 191..96 are zero
    acc = sqr_n(&acc, 94);
    acc = mul(&acc, &x94); // bits 95..2
    acc = sqr_n(&acc, 2);
    acc = mul(&acc, a); // bit 0
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbcd_math::MontCtx;
    use proptest::prelude::*;

    fn ctx() -> MontCtx<4> {
        MontCtx::new(U256::from_limbs(P))
    }

    fn arb_residue() -> impl Strategy<Value = U256> {
        proptest::array::uniform4(any::<u64>()).prop_map(|limbs| {
            let p = U256::from_limbs(P);
            U256::from_limbs(limbs).rem(&p)
        })
    }

    #[test]
    fn constants_match_generic_context() {
        let f = ctx();
        assert_eq!(f.modulus(), &U256::from_limbs(P));
        assert_eq!(f.one(), one());
    }

    proptest! {
        #[test]
        fn mul_matches_mont_ctx(a in arb_residue(), b in arb_residue()) {
            let f = ctx();
            prop_assert_eq!(mul(&a, &b), f.mont_mul(&a, &b));
        }

        #[test]
        fn sqr_matches_mont_ctx(a in arb_residue()) {
            let f = ctx();
            prop_assert_eq!(sqr(&a), f.mont_sqr(&a));
            prop_assert_eq!(sqr(&a), mul(&a, &a));
        }

        #[test]
        fn add_sub_neg_match_mont_ctx(a in arb_residue(), b in arb_residue()) {
            let f = ctx();
            prop_assert_eq!(add(&a, &b), f.add(&a, &b));
            prop_assert_eq!(sub(&a, &b), f.sub(&a, &b));
            prop_assert_eq!(dbl(&a), f.double(&a));
            prop_assert_eq!(neg(&a), f.neg(&a));
        }

        #[test]
        fn inv_matches_mont_ctx(a in arb_residue()) {
            let f = ctx();
            prop_assert_eq!(inv(&a), f.inv(&a));
            if !a.is_zero() {
                let i = inv(&a).unwrap();
                prop_assert_eq!(mul(&a, &i), one());
            }
        }

        #[test]
        fn inv_vartime_matches_fermat(a in arb_residue()) {
            prop_assert_eq!(inv_vartime(&a), inv(&a));
        }
    }

    #[test]
    fn edge_values() {
        let f = ctx();
        let p_minus_1 = U256::from_limbs(P).wrapping_sub(&U256::one());
        for v in [U256::ZERO, U256::one(), p_minus_1] {
            let m = f.to_mont(&v);
            assert_eq!(mul(&m, &m), f.mont_mul(&m, &m));
            assert_eq!(sqr(&m), f.mont_sqr(&m));
            assert_eq!(add(&m, &m), f.add(&m, &m));
            assert_eq!(neg(&m), f.neg(&m));
        }
        assert_eq!(inv(&U256::ZERO), None);
        assert_eq!(inv_vartime(&U256::ZERO), None);
        let m = f.to_mont(&p_minus_1);
        assert_eq!(inv_vartime(&m), inv(&m));
        assert_eq!(inv_vartime(&one()), Some(one()));
    }
}
