//! Property-based tests for the OCBE protocols: for arbitrary values,
//! thresholds and operators, the envelope opens **iff** the predicate holds
//! at the committed value.

use pbcd_group::P256Group;
use pbcd_ocbe::{ComparisonOp, OcbeSystem, Predicate};
use proptest::prelude::*;
use rand::SeedableRng;

fn run_flow(seed: u64, ell: u32, x: u64, pred: Predicate) -> Option<bool> {
    let sys = OcbeSystem::new(P256Group::new(), ell);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (c, opening) = sys.pedersen().commit_u64(x, &mut rng);
    let (proof, secrets) = sys.receiver_prepare(x, &opening, &pred, &mut rng).ok()?;
    let env = sys
        .sender_compose(&c, &pred, &proof, b"payload", &mut rng)
        .ok()?;
    Some(match sys.receiver_open(&env, &opening, &secrets) {
        Some(m) => {
            assert_eq!(m, b"payload");
            true
        }
        None => false,
    })
}

fn arb_op() -> impl Strategy<Value = ComparisonOp> {
    prop_oneof![
        Just(ComparisonOp::Eq),
        Just(ComparisonOp::Neq),
        Just(ComparisonOp::Gt),
        Just(ComparisonOp::Ge),
        Just(ComparisonOp::Lt),
        Just(ComparisonOp::Le),
    ]
}

proptest! {
    // Each case costs ~100 EC scalar muls; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn envelope_opens_iff_predicate_holds(
        seed in any::<u64>(),
        x in 0u64..256,
        threshold in 0u64..256,
        op in arb_op(),
    ) {
        let pred = Predicate::new(op, threshold);
        let ell = 8;
        if !pred.satisfiable(ell) {
            return Ok(());
        }
        let opened = run_flow(seed, ell, x, pred).expect("flow completes");
        prop_assert_eq!(opened, pred.eval(x), "x={} pred={}", x, pred);
    }

    #[test]
    fn boundary_values_behave(seed in any::<u64>(), x0 in 1u64..255) {
        // x exactly at, one below, and one above the threshold for ≥.
        for (x, expect) in [(x0 - 1, false), (x0, true), (x0 + 1, true)] {
            let pred = Predicate::new(ComparisonOp::Ge, x0);
            prop_assert_eq!(run_flow(seed, 8, x, pred).unwrap(), expect);
        }
    }

    #[test]
    fn payloads_survive_arbitrary_bytes(
        seed in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let sys = OcbeSystem::new(P256Group::new(), 8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (c, opening) = sys.pedersen().commit_u64(42, &mut rng);
        let pred = Predicate::new(ComparisonOp::Ge, 40);
        let (proof, secrets) = sys.receiver_prepare(42, &opening, &pred, &mut rng).unwrap();
        let env = sys.sender_compose(&c, &pred, &proof, &payload, &mut rng).unwrap();
        prop_assert_eq!(sys.receiver_open(&env, &opening, &secrets), Some(payload));
    }
}
