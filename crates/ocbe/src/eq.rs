//! EQ-OCBE (paper §IV-C): oblivious envelope for equality predicates.
//!
//! Sender: pick `y ∈ F_p^×`, compute `σ = (c·g^{−x₀})^y`, send
//! `⟨η = h^y, C = E_{H(σ)}[M]⟩`. Receiver: `σ′ = η^r`; if the committed
//! value equals `x₀` then `c·g^{−x₀} = h^r` so `σ = σ′` and the payload
//! decrypts. The sender learns nothing about the committed value — it never
//! even learns whether decryption succeeded.

use pbcd_commit::{Commitment, Pedersen};
use pbcd_crypto::AuthKey;
use pbcd_group::{CyclicGroup, Scalar};
use rand::RngCore;

/// An EQ-OCBE envelope: `⟨η, C⟩`.
pub struct EqEnvelope<G: CyclicGroup> {
    /// `η = h^y`.
    pub eta: G::Elem,
    /// Authenticated ciphertext of the payload under `H(σ)`.
    pub ciphertext: Vec<u8>,
}

impl<G: CyclicGroup> Clone for EqEnvelope<G> {
    fn clone(&self) -> Self {
        Self {
            eta: self.eta.clone(),
            ciphertext: self.ciphertext.clone(),
        }
    }
}

impl<G: CyclicGroup> core::fmt::Debug for EqEnvelope<G> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "EqEnvelope(|C|={})", self.ciphertext.len())
    }
}

/// Sender side: composes an envelope that opens iff the receiver committed
/// exactly `x0`.
pub fn compose<G: CyclicGroup, R: RngCore + ?Sized>(
    ped: &Pedersen<G>,
    c: &Commitment<G>,
    x0: &Scalar,
    payload: &[u8],
    rng: &mut R,
) -> EqEnvelope<G> {
    let group = ped.group();
    let y = group.random_nonzero_scalar(rng);
    let diff = ped.shift_value(c, x0); // commits to x − x₀ under r
    let sigma = group.exp(diff.element(), &y);
    let eta = group.exp_h(&y);
    let key = envelope_key(group, &sigma);
    EqEnvelope {
        eta,
        ciphertext: key.encrypt(rng, payload),
    }
}

/// Receiver side: attempts to open with the commitment randomness `r`.
/// Returns `None` when the committed value did not satisfy the predicate
/// (the authenticated decryption fails).
pub fn open<G: CyclicGroup>(group: &G, env: &EqEnvelope<G>, r: &Scalar) -> Option<Vec<u8>> {
    let sigma = group.exp(&env.eta, r);
    envelope_key(group, &sigma).decrypt(&env.ciphertext).ok()
}

pub(crate) fn envelope_key<G: CyclicGroup>(group: &G, sigma: &G::Elem) -> AuthKey {
    AuthKey::from_master(&group.serialize(sigma))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbcd_group::P256Group;
    use rand::SeedableRng;

    fn setup() -> (Pedersen<P256Group>, rand::rngs::StdRng) {
        (
            Pedersen::new(P256Group::new()),
            rand::rngs::StdRng::seed_from_u64(200),
        )
    }

    #[test]
    fn qualified_receiver_opens() {
        let (ped, mut rng) = setup();
        let sc = ped.group().scalar_ctx().clone();
        let (c, opening) = ped.commit_u64(28, &mut rng);
        let env = compose(&ped, &c, &sc.from_u64(28), b"the CSS value", &mut rng);
        assert_eq!(
            open(ped.group(), &env, &opening.randomness),
            Some(b"the CSS value".to_vec())
        );
    }

    #[test]
    fn unqualified_receiver_fails() {
        let (ped, mut rng) = setup();
        let sc = ped.group().scalar_ctx().clone();
        let (c, opening) = ped.commit_u64(28, &mut rng);
        // Predicate wants 30, receiver committed 28.
        let env = compose(&ped, &c, &sc.from_u64(30), b"secret", &mut rng);
        assert_eq!(open(ped.group(), &env, &opening.randomness), None);
    }

    #[test]
    fn wrong_randomness_fails() {
        let (ped, mut rng) = setup();
        let sc = ped.group().scalar_ctx().clone();
        let (c, opening) = ped.commit_u64(7, &mut rng);
        let env = compose(&ped, &c, &sc.from_u64(7), b"m", &mut rng);
        let wrong = &opening.randomness + &sc.one();
        assert_eq!(open(ped.group(), &env, &wrong), None);
    }

    #[test]
    fn envelopes_are_randomized() {
        let (ped, mut rng) = setup();
        let sc = ped.group().scalar_ctx().clone();
        let (c, _) = ped.commit_u64(1, &mut rng);
        let e1 = compose(&ped, &c, &sc.from_u64(1), b"m", &mut rng);
        let e2 = compose(&ped, &c, &sc.from_u64(1), b"m", &mut rng);
        assert_ne!(e1.eta, e2.eta);
        assert_ne!(e1.ciphertext, e2.ciphertext);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let (ped, mut rng) = setup();
        let sc = ped.group().scalar_ctx().clone();
        let (c, opening) = ped.commit_u64(0, &mut rng);
        let env = compose(&ped, &c, &sc.from_u64(0), b"", &mut rng);
        assert_eq!(open(ped.group(), &env, &opening.randomness), Some(vec![]));
    }
}
