//! # pbcd-ocbe
//!
//! Oblivious Commitment-Based Envelope protocols (Li & Li, "OACerts";
//! paper §IV-C) — the privacy-preserving delivery mechanism for conditional
//! subscription secrets:
//!
//! * [`eq`] — EQ-OCBE for equality predicates,
//! * [`bitwise`] — GE-/LE-OCBE bitwise envelopes for inequalities,
//! * [`session`] — one API over all six comparison operators
//!   (`=, ≠, >, ≥, <, ≤`), with `>`/`<`/`≠` derived exactly as the paper
//!   prescribes,
//! * [`predicate`] — the predicate language.
//!
//! Guarantees (paper §VI-A): the receiver recovers the payload **iff** its
//! committed value satisfies the predicate; the sender learns nothing about
//! the value, *including* whether the envelope could be opened.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitwise;
pub mod eq;
pub mod error;
pub mod session;

/// Re-export of the predicate language from `pbcd-policy`.
pub use pbcd_policy::predicate;

pub use bitwise::{BitProof, BitSecrets, BitwiseEnvelope, Direction};
pub use eq::EqEnvelope;
pub use error::OcbeError;
pub use predicate::{max_value, ComparisonOp, Predicate};
pub use session::{Envelope, OcbeSystem, ProofMessage, ProofSecrets};
