//! OCBE protocol errors.

/// Errors raised by OCBE senders and receivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OcbeError {
    /// The receiver's bit commitments do not reassemble to the difference
    /// commitment (`c·g^{−x₀} ≠ Π cᵢ^{2^i}`): a malformed or malicious proof.
    InconsistentCommitments,
    /// The proof message shape does not match the predicate (e.g. an EQ
    /// proof supplied for a GE predicate, or a wrong commitment count).
    ProofShapeMismatch,
    /// The predicate cannot be satisfied by any ℓ-bit value, so no envelope
    /// can ever be opened (e.g. `< 0`).
    UnsatisfiablePredicate,
    /// Parameter out of range (ℓ must be in `1..=63`, thresholds ℓ-bit).
    InvalidParameters,
}

impl core::fmt::Display for OcbeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InconsistentCommitments => {
                write!(f, "bit commitments inconsistent with attribute commitment")
            }
            Self::ProofShapeMismatch => write!(f, "proof message does not match predicate"),
            Self::UnsatisfiablePredicate => write!(f, "predicate is unsatisfiable"),
            Self::InvalidParameters => write!(f, "invalid OCBE parameters"),
        }
    }
}

impl std::error::Error for OcbeError {}
