//! GE-/LE-OCBE (paper §IV-C): bitwise oblivious envelopes for inequality
//! predicates over ℓ-bit attribute values.
//!
//! The receiver decomposes the difference `d` into ℓ digit commitments
//! `cᵢ = g^{dᵢ} h^{rᵢ}`; the sender checks they reassemble to the
//! difference commitment, then publishes per-digit masked key shares
//! `Cᵢʲ = H((cᵢ·g^{−j})^y) ⊕ kᵢ` for `j ∈ {0,1}` plus `η = h^y` and the
//! payload encrypted under `k = H(k₀‖…‖k_{ℓ−1})`. A receiver whose digits
//! are all bits recovers every `kᵢ`; an unqualified receiver's digit `d₀`
//! is a non-bit field element and its share cannot be unmasked.

use crate::error::OcbeError;
use pbcd_commit::{Commitment, Opening, Pedersen};
use pbcd_crypto::{sha256, AuthKey};
use pbcd_group::{CyclicGroup, Scalar};
use rand::RngCore;

/// Direction of the inequality: which side of the threshold qualifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `x ≥ x₀` (GE-OCBE): `d = x − x₀`, randomness `r`.
    Ge,
    /// `x ≤ x₀` (LE-OCBE): `d = x₀ − x`, randomness `−r`.
    Le,
}

impl Direction {
    /// Integer satisfaction test.
    pub fn eval(&self, x: u64, x0: u64) -> bool {
        match self {
            Self::Ge => x >= x0,
            Self::Le => x <= x0,
        }
    }
}

/// The receiver's public proof message: ℓ digit commitments.
pub struct BitProof<G: CyclicGroup> {
    /// Digit commitments `c₀, …, c_{ℓ−1}` (least-significant first).
    pub commitments: Vec<Commitment<G>>,
}

impl<G: CyclicGroup> Clone for BitProof<G> {
    fn clone(&self) -> Self {
        Self {
            commitments: self.commitments.clone(),
        }
    }
}

/// The receiver's private opening material for a [`BitProof`].
#[derive(Clone)]
pub struct BitSecrets {
    /// Digit value as a bit when it is one (all digits for qualified
    /// receivers; `None` marks the non-bit digit of unqualified receivers).
    digit_bits: Vec<Option<u8>>,
    /// Digit randomness `r₀, …, r_{ℓ−1}`.
    randomness: Vec<Scalar>,
}

/// A GE-/LE-OCBE envelope.
pub struct BitwiseEnvelope<G: CyclicGroup> {
    /// `η = h^y`.
    pub eta: G::Elem,
    /// Masked key shares `Cᵢʲ`, indexed `[digit][j]`.
    pub shares: Vec<[[u8; 32]; 2]>,
    /// Authenticated ciphertext of the payload under `k`.
    pub ciphertext: Vec<u8>,
}

impl<G: CyclicGroup> Clone for BitwiseEnvelope<G> {
    fn clone(&self) -> Self {
        Self {
            eta: self.eta.clone(),
            shares: self.shares.clone(),
            ciphertext: self.ciphertext.clone(),
        }
    }
}

impl<G: CyclicGroup> core::fmt::Debug for BitwiseEnvelope<G> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "BitwiseEnvelope(ℓ={}, |C|={})",
            self.shares.len(),
            self.ciphertext.len()
        )
    }
}

/// Receiver step "create extra commitments": decomposes the difference into
/// ℓ digit commitments. Works for both qualified and unqualified values —
/// the proof message is indistinguishable to the sender either way.
pub fn prepare<G: CyclicGroup, R: RngCore + ?Sized>(
    ped: &Pedersen<G>,
    x: u64,
    opening: &Opening,
    x0: u64,
    ell: u32,
    dir: Direction,
    rng: &mut R,
) -> Result<(BitProof<G>, BitSecrets), OcbeError> {
    if !(1..=63).contains(&ell) || x0 >= (1u64 << ell) {
        return Err(OcbeError::InvalidParameters);
    }
    let sc = ped.group().scalar_ctx().clone();
    let ell = ell as usize;
    // Out-of-range committed values (e.g. the §VI-A decoy tokens, which
    // commit far above 2^ℓ) can never satisfy an in-range inequality: the
    // difference has no ℓ-bit decomposition. Run the unsatisfied path.
    let satisfied = x < (1u64 << ell) && dir.eval(x, x0);
    // d as a field element (wraps for unqualified receivers) and the base
    // randomness matching the difference commitment the sender will form.
    let (d_scalar, base_r) = match dir {
        Direction::Ge => (
            &sc.from_u64(x) - &sc.from_u64(x0),
            opening.randomness.clone(),
        ),
        Direction::Le => (&sc.from_u64(x0) - &sc.from_u64(x), -&opening.randomness),
    };

    // Randomness split: r₀ = base_r − Σ_{i≥1} 2ⁱ rᵢ so Σ 2ⁱ rᵢ = base_r.
    let mut randomness = Vec::with_capacity(ell);
    randomness.push(sc.zero()); // placeholder for r₀
    let mut acc = sc.zero();
    let mut weight = &sc.one() + &sc.one(); // 2^1
    let two = weight.clone();
    for _ in 1..ell {
        let ri = sc.random(rng);
        acc = &acc + &(&weight * &ri);
        weight = &weight * &two;
        randomness.push(ri);
    }
    randomness[0] = &base_r - &acc;

    // Digit split: bits of |d| when satisfied; otherwise random high bits
    // with the non-bit remainder folded into digit 0.
    let mut digit_scalars = Vec::with_capacity(ell);
    let mut digit_bits = Vec::with_capacity(ell);
    if satisfied {
        let d_int = match dir {
            Direction::Ge => x - x0,
            Direction::Le => x0 - x,
        };
        debug_assert!(d_int < (1u64 << ell));
        for i in 0..ell {
            let bit = ((d_int >> i) & 1) as u8;
            digit_scalars.push(sc.from_u64(bit as u64));
            digit_bits.push(Some(bit));
        }
    } else {
        digit_scalars.push(sc.zero()); // placeholder for d₀
        digit_bits.push(None);
        let mut acc = sc.zero();
        let mut weight = two.clone();
        for _ in 1..ell {
            let bit = (rng.next_u32() & 1) as u8;
            acc = &acc + &(&weight * &sc.from_u64(bit as u64));
            weight = &weight * &two;
            digit_scalars.push(sc.from_u64(bit as u64));
            digit_bits.push(Some(bit));
        }
        digit_scalars[0] = &d_scalar - &acc;
        // d₀ lands in {0,1} only with negligible probability; treat that
        // as the non-bit it almost surely is.
    }

    let commitments = digit_scalars
        .iter()
        .zip(&randomness)
        .map(|(d, r)| ped.commit_with(d, r))
        .collect();
    Ok((
        BitProof { commitments },
        BitSecrets {
            digit_bits,
            randomness,
        },
    ))
}

/// Sender step "compose envelope": validates the digit commitments against
/// the receiver's attribute commitment and produces the envelope.
#[allow(clippy::too_many_arguments)] // protocol message parameters
pub fn compose<G: CyclicGroup, R: RngCore + ?Sized>(
    ped: &Pedersen<G>,
    c: &Commitment<G>,
    x0: u64,
    ell: u32,
    dir: Direction,
    proof: &BitProof<G>,
    payload: &[u8],
    rng: &mut R,
) -> Result<BitwiseEnvelope<G>, OcbeError> {
    if !(1..=63).contains(&ell) || x0 >= (1u64 << ell) {
        return Err(OcbeError::InvalidParameters);
    }
    let ell = ell as usize;
    if proof.commitments.len() != ell {
        return Err(OcbeError::ProofShapeMismatch);
    }
    let group = ped.group();
    let sc = group.scalar_ctx().clone();
    // Consistency: Π cᵢ^{2^i} must equal the difference commitment.
    let target = match dir {
        Direction::Ge => ped.shift_value(c, &sc.from_u64(x0)),
        Direction::Le => ped.shift_value_reversed(c, &sc.from_u64(x0)),
    };
    if ped.weighted_product(&proof.commitments) != target {
        return Err(OcbeError::InconsistentCommitments);
    }

    // Per-digit random key shares and the combined payload key.
    let mut key_shares = Vec::with_capacity(ell);
    let mut concat = Vec::with_capacity(32 * ell);
    for _ in 0..ell {
        let mut k = [0u8; 32];
        rng.fill_bytes(&mut k);
        concat.extend_from_slice(&k);
        key_shares.push(k);
    }
    let master = sha256(&concat);

    let y = group.random_nonzero_scalar(rng);
    let eta = group.exp_h(&y);
    let g_inv = group.inv(&group.generator());
    let mut shares = Vec::with_capacity(ell);
    for (ci, ki) in proof.commitments.iter().zip(&key_shares) {
        let sigma0 = group.exp(ci.element(), &y);
        let shifted = group.op(ci.element(), &g_inv);
        let sigma1 = group.exp(&shifted, &y);
        shares.push([
            xor32(&sha256(&group.serialize(&sigma0)), ki),
            xor32(&sha256(&group.serialize(&sigma1)), ki),
        ]);
    }
    let ciphertext = AuthKey::from_master(&master).encrypt(rng, payload);
    Ok(BitwiseEnvelope {
        eta,
        shares,
        ciphertext,
    })
}

/// Receiver step "open envelope": recovers the per-digit key shares with
/// the stored digit bits and randomness, reassembles the payload key, and
/// decrypts. `None` when the receiver's value did not satisfy the predicate.
pub fn open<G: CyclicGroup>(
    group: &G,
    env: &BitwiseEnvelope<G>,
    secrets: &BitSecrets,
) -> Option<Vec<u8>> {
    if env.shares.len() != secrets.digit_bits.len() {
        return None;
    }
    let mut concat = Vec::with_capacity(32 * env.shares.len());
    for ((share, bit), r) in env
        .shares
        .iter()
        .zip(&secrets.digit_bits)
        .zip(&secrets.randomness)
    {
        let j = (*bit)? as usize;
        let sigma = group.exp(&env.eta, r);
        let k = xor32(&sha256(&group.serialize(&sigma)), &share[j]);
        concat.extend_from_slice(&k);
    }
    let master = sha256(&concat);
    AuthKey::from_master(&master).decrypt(&env.ciphertext).ok()
}

fn xor32(a: &[u8; 32], b: &[u8; 32]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for i in 0..32 {
        out[i] = a[i] ^ b[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbcd_group::P256Group;
    use rand::SeedableRng;

    fn setup() -> (Pedersen<P256Group>, rand::rngs::StdRng) {
        (
            Pedersen::new(P256Group::new()),
            rand::rngs::StdRng::seed_from_u64(300),
        )
    }

    fn run(x: u64, x0: u64, ell: u32, dir: Direction) -> Option<Vec<u8>> {
        let (ped, mut rng) = setup();
        let (c, opening) = ped.commit_u64(x, &mut rng);
        let (proof, secrets) = prepare(&ped, x, &opening, x0, ell, dir, &mut rng).unwrap();
        let env = compose(&ped, &c, x0, ell, dir, &proof, b"payload!", &mut rng).unwrap();
        open(ped.group(), &env, &secrets)
    }

    #[test]
    fn ge_qualified() {
        assert_eq!(run(59, 58, 8, Direction::Ge), Some(b"payload!".to_vec()));
        assert_eq!(run(58, 58, 8, Direction::Ge), Some(b"payload!".to_vec()));
        assert_eq!(run(255, 0, 8, Direction::Ge), Some(b"payload!".to_vec()));
    }

    #[test]
    fn ge_unqualified() {
        assert_eq!(run(57, 58, 8, Direction::Ge), None);
        assert_eq!(run(0, 1, 8, Direction::Ge), None);
        assert_eq!(run(0, 255, 8, Direction::Ge), None);
    }

    #[test]
    fn le_qualified() {
        assert_eq!(run(5, 10, 8, Direction::Le), Some(b"payload!".to_vec()));
        assert_eq!(run(10, 10, 8, Direction::Le), Some(b"payload!".to_vec()));
        assert_eq!(run(0, 0, 8, Direction::Le), Some(b"payload!".to_vec()));
    }

    #[test]
    fn le_unqualified() {
        assert_eq!(run(11, 10, 8, Direction::Le), None);
        assert_eq!(run(255, 254, 8, Direction::Le), None);
    }

    #[test]
    fn various_ell_widths() {
        for ell in [1u32, 2, 5, 16, 40] {
            let max = (1u64 << ell) - 1;
            assert!(run(max, 0, ell, Direction::Ge).is_some(), "ℓ={ell}");
            if max > 0 {
                assert!(run(0, 1.min(max), ell, Direction::Ge).is_none(), "ℓ={ell}");
            }
        }
    }

    #[test]
    fn tampered_proof_rejected_by_sender() {
        let (ped, mut rng) = setup();
        let (c, opening) = ped.commit_u64(20, &mut rng);
        let (mut proof, _) = prepare(&ped, 20, &opening, 10, 8, Direction::Ge, &mut rng).unwrap();
        // Swap two digit commitments: weighted product no longer matches.
        proof.commitments.swap(0, 1);
        assert_eq!(
            compose(&ped, &c, 10, 8, Direction::Ge, &proof, b"m", &mut rng).err(),
            Some(OcbeError::InconsistentCommitments)
        );
    }

    #[test]
    fn proof_for_wrong_commitment_rejected() {
        let (ped, mut rng) = setup();
        let (_, opening_a) = ped.commit_u64(20, &mut rng);
        let (cb, _) = ped.commit_u64(21, &mut rng);
        let (proof, _) = prepare(&ped, 20, &opening_a, 10, 8, Direction::Ge, &mut rng).unwrap();
        assert_eq!(
            compose(&ped, &cb, 10, 8, Direction::Ge, &proof, b"m", &mut rng).err(),
            Some(OcbeError::InconsistentCommitments)
        );
    }

    #[test]
    fn wrong_length_proof_rejected() {
        let (ped, mut rng) = setup();
        let (c, opening) = ped.commit_u64(20, &mut rng);
        let (mut proof, _) = prepare(&ped, 20, &opening, 10, 8, Direction::Ge, &mut rng).unwrap();
        proof.commitments.pop();
        assert_eq!(
            compose(&ped, &c, 10, 8, Direction::Ge, &proof, b"m", &mut rng).err(),
            Some(OcbeError::ProofShapeMismatch)
        );
    }

    #[test]
    fn parameter_validation() {
        let (ped, mut rng) = setup();
        let (_, opening) = ped.commit_u64(1, &mut rng);
        assert_eq!(
            prepare(&ped, 1, &opening, 0, 0, Direction::Ge, &mut rng).err(),
            Some(OcbeError::InvalidParameters)
        );
        assert_eq!(
            prepare(&ped, 1, &opening, 300, 8, Direction::Ge, &mut rng).err(),
            Some(OcbeError::InvalidParameters),
            "x0 out of ℓ-bit range"
        );
    }

    #[test]
    fn out_of_range_x_is_never_satisfied() {
        // Decoy tokens (§VI-A) commit above 2^ℓ; they must be acceptable to
        // prepare (hiding which attributes the receiver holds) but can
        // never open — even for inequalities the value would numerically
        // satisfy.
        let (ped, mut rng) = setup();
        let decoy = (1u64 << 63) - 1;
        let (c, opening) = ped.commit_u64(decoy, &mut rng);
        for dir in [Direction::Ge, Direction::Le] {
            let (proof, secrets) = prepare(&ped, decoy, &opening, 100, 8, dir, &mut rng).unwrap();
            let env = compose(&ped, &c, 100, 8, dir, &proof, b"secret", &mut rng).unwrap();
            assert_eq!(open(ped.group(), &env, &secrets), None, "{dir:?}");
        }
    }

    #[test]
    fn unqualified_sender_view_indistinguishable() {
        // The sender-side check passes for unqualified receivers too — it
        // must not learn satisfaction.
        let (ped, mut rng) = setup();
        let (c, opening) = ped.commit_u64(5, &mut rng);
        let (proof, secrets) = prepare(&ped, 5, &opening, 200, 8, Direction::Ge, &mut rng).unwrap();
        let env = compose(&ped, &c, 200, 8, Direction::Ge, &proof, b"m", &mut rng)
            .expect("sender cannot distinguish unqualified proofs");
        assert_eq!(open(ped.group(), &env, &secrets), None);
    }
}
