//! High-level OCBE sessions: one entry point for all six comparison
//! predicates, mapping `>`/`<`/`≠` onto the EQ/GE/LE primitives exactly as
//! the paper prescribes ("Other OCBE protocols … can be built on EQ-OCBE,
//! GE-OCBE and LE-OCBE").
//!
//! * `> x₀`  ⇒ GE with threshold `x₀ + 1`
//! * `< x₀`  ⇒ LE with threshold `x₀ − 1`
//! * `≠ x₀`  ⇒ dual envelope: GE(`x₀+1`) and LE(`x₀−1`) carrying the same
//!   payload; the receiver opens whichever side its value satisfies.

use crate::bitwise::{self, BitProof, BitSecrets, BitwiseEnvelope, Direction};
use crate::eq::{self, EqEnvelope};
use crate::error::OcbeError;
use crate::predicate::{max_value, ComparisonOp, Predicate};
use pbcd_commit::{Commitment, Opening, Pedersen};
use pbcd_group::CyclicGroup;
use rand::RngCore;

/// An OCBE deployment: a Pedersen instance plus the system parameter ℓ
/// (attribute-value bit width, `2^ℓ < p/2`).
#[derive(Clone)]
pub struct OcbeSystem<G: CyclicGroup> {
    ped: Pedersen<G>,
    ell: u32,
}

/// Receiver → sender proof message (empty for EQ; digit commitments for
/// inequalities; two sets for ≠).
pub enum ProofMessage<G: CyclicGroup> {
    /// EQ needs no extra commitments.
    Empty,
    /// One bitwise decomposition (GE/GT/LE/LT).
    Bits(BitProof<G>),
    /// Two decompositions for ≠ (either side may be absent at the value
    /// range's edges).
    Dual {
        /// Proof for the `x ≥ x₀+1` side.
        ge: Option<BitProof<G>>,
        /// Proof for the `x ≤ x₀−1` side.
        le: Option<BitProof<G>>,
    },
}

/// Receiver-private opening material matching a [`ProofMessage`].
pub enum ProofSecrets {
    /// EQ: the commitment randomness suffices.
    Empty,
    /// One bitwise secret set.
    Bits(BitSecrets),
    /// Dual secret sets for ≠.
    Dual {
        /// Secrets for the GE side.
        ge: Option<BitSecrets>,
        /// Secrets for the LE side.
        le: Option<BitSecrets>,
    },
}

/// A composed envelope for any supported predicate.
pub enum Envelope<G: CyclicGroup> {
    /// EQ-OCBE envelope.
    Eq(EqEnvelope<G>),
    /// GE-OCBE envelope (also used for `>` after threshold shift).
    Ge(BitwiseEnvelope<G>),
    /// LE-OCBE envelope (also used for `<` after threshold shift).
    Le(BitwiseEnvelope<G>),
    /// Dual envelope for `≠`.
    Dual {
        /// GE side (threshold `x₀+1`), absent when `x₀` is the max value.
        ge: Option<BitwiseEnvelope<G>>,
        /// LE side (threshold `x₀−1`), absent when `x₀` is zero.
        le: Option<BitwiseEnvelope<G>>,
    },
}

impl<G: CyclicGroup> core::fmt::Debug for ProofMessage<G> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProofMessage::Empty => write!(f, "ProofMessage::Empty"),
            ProofMessage::Bits(p) => {
                write!(f, "ProofMessage::Bits({} commitments)", p.commitments.len())
            }
            ProofMessage::Dual { ge, le } => write!(
                f,
                "ProofMessage::Dual(ge={}, le={})",
                ge.is_some(),
                le.is_some()
            ),
        }
    }
}

impl core::fmt::Debug for ProofSecrets {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProofSecrets::Empty => write!(f, "ProofSecrets::Empty"),
            ProofSecrets::Bits(_) => write!(f, "ProofSecrets::Bits(..)"),
            ProofSecrets::Dual { ge, le } => write!(
                f,
                "ProofSecrets::Dual(ge={}, le={})",
                ge.is_some(),
                le.is_some()
            ),
        }
    }
}

impl<G: CyclicGroup> core::fmt::Debug for Envelope<G> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Envelope::Eq(e) => write!(f, "Envelope::Eq({e:?})"),
            Envelope::Ge(e) => write!(f, "Envelope::Ge({e:?})"),
            Envelope::Le(e) => write!(f, "Envelope::Le({e:?})"),
            Envelope::Dual { ge, le } => write!(
                f,
                "Envelope::Dual(ge={}, le={})",
                ge.is_some(),
                le.is_some()
            ),
        }
    }
}

impl<G: CyclicGroup> Envelope<G> {
    /// Approximate wire size in bytes (used by bandwidth experiments).
    pub fn size_bytes(&self, group: &G) -> usize {
        let elem = group.serialize(&group.generator()).len();
        match self {
            Envelope::Eq(e) => elem + e.ciphertext.len(),
            Envelope::Ge(e) | Envelope::Le(e) => elem + e.shares.len() * 64 + e.ciphertext.len(),
            Envelope::Dual { ge, le } => {
                ge.as_ref()
                    .map_or(0, |e| elem + e.shares.len() * 64 + e.ciphertext.len())
                    + le.as_ref()
                        .map_or(0, |e| elem + e.shares.len() * 64 + e.ciphertext.len())
            }
        }
    }
}

impl<G: CyclicGroup> OcbeSystem<G> {
    /// Creates a deployment with attribute width `ell` bits.
    pub fn new(group: G, ell: u32) -> Self {
        assert!((1..=63).contains(&ell), "ℓ must be in 1..=63");
        Self {
            ped: Pedersen::new(group),
            ell,
        }
    }

    /// The Pedersen instance.
    pub fn pedersen(&self) -> &Pedersen<G> {
        &self.ped
    }

    /// The group backend.
    pub fn group(&self) -> &G {
        self.ped.group()
    }

    /// The attribute bit-width ℓ.
    pub fn ell(&self) -> u32 {
        self.ell
    }

    /// Receiver phase 1: builds the proof message for `predicate` given the
    /// receiver's attribute value `x` and its commitment opening.
    ///
    /// Always succeeds for any in-range `x`, satisfied or not — the output
    /// distribution hides satisfaction from the sender.
    pub fn receiver_prepare<R: RngCore + ?Sized>(
        &self,
        x: u64,
        opening: &Opening,
        predicate: &Predicate,
        rng: &mut R,
    ) -> Result<(ProofMessage<G>, ProofSecrets), OcbeError> {
        if !predicate.satisfiable(self.ell) {
            return Err(OcbeError::UnsatisfiablePredicate);
        }
        match predicate.op {
            ComparisonOp::Eq => Ok((ProofMessage::Empty, ProofSecrets::Empty)),
            ComparisonOp::Ge => {
                let (p, s) = bitwise::prepare(
                    &self.ped,
                    x,
                    opening,
                    predicate.threshold,
                    self.ell,
                    Direction::Ge,
                    rng,
                )?;
                Ok((ProofMessage::Bits(p), ProofSecrets::Bits(s)))
            }
            ComparisonOp::Gt => {
                let (p, s) = bitwise::prepare(
                    &self.ped,
                    x,
                    opening,
                    predicate.threshold + 1,
                    self.ell,
                    Direction::Ge,
                    rng,
                )?;
                Ok((ProofMessage::Bits(p), ProofSecrets::Bits(s)))
            }
            ComparisonOp::Le => {
                let (p, s) = bitwise::prepare(
                    &self.ped,
                    x,
                    opening,
                    predicate.threshold,
                    self.ell,
                    Direction::Le,
                    rng,
                )?;
                Ok((ProofMessage::Bits(p), ProofSecrets::Bits(s)))
            }
            ComparisonOp::Lt => {
                let (p, s) = bitwise::prepare(
                    &self.ped,
                    x,
                    opening,
                    predicate.threshold - 1,
                    self.ell,
                    Direction::Le,
                    rng,
                )?;
                Ok((ProofMessage::Bits(p), ProofSecrets::Bits(s)))
            }
            ComparisonOp::Neq => {
                let (ge, ge_s) = if predicate.threshold < max_value(self.ell) {
                    let (p, s) = bitwise::prepare(
                        &self.ped,
                        x,
                        opening,
                        predicate.threshold + 1,
                        self.ell,
                        Direction::Ge,
                        rng,
                    )?;
                    (Some(p), Some(s))
                } else {
                    (None, None)
                };
                let (le, le_s) = if predicate.threshold > 0 {
                    let (p, s) = bitwise::prepare(
                        &self.ped,
                        x,
                        opening,
                        predicate.threshold - 1,
                        self.ell,
                        Direction::Le,
                        rng,
                    )?;
                    (Some(p), Some(s))
                } else {
                    (None, None)
                };
                Ok((
                    ProofMessage::Dual { ge, le },
                    ProofSecrets::Dual { ge: ge_s, le: le_s },
                ))
            }
        }
    }

    /// Sender phase: validates the proof message against the receiver's
    /// attribute commitment and composes the envelope around `payload`.
    pub fn sender_compose<R: RngCore + ?Sized>(
        &self,
        c: &Commitment<G>,
        predicate: &Predicate,
        proof: &ProofMessage<G>,
        payload: &[u8],
        rng: &mut R,
    ) -> Result<Envelope<G>, OcbeError> {
        if !predicate.satisfiable(self.ell) {
            return Err(OcbeError::UnsatisfiablePredicate);
        }
        match (predicate.op, proof) {
            (ComparisonOp::Eq, ProofMessage::Empty) => {
                let x0 = self.group().scalar_ctx().from_u64(predicate.threshold);
                Ok(Envelope::Eq(eq::compose(&self.ped, c, &x0, payload, rng)))
            }
            (ComparisonOp::Ge, ProofMessage::Bits(p)) => Ok(Envelope::Ge(bitwise::compose(
                &self.ped,
                c,
                predicate.threshold,
                self.ell,
                Direction::Ge,
                p,
                payload,
                rng,
            )?)),
            (ComparisonOp::Gt, ProofMessage::Bits(p)) => Ok(Envelope::Ge(bitwise::compose(
                &self.ped,
                c,
                predicate.threshold + 1,
                self.ell,
                Direction::Ge,
                p,
                payload,
                rng,
            )?)),
            (ComparisonOp::Le, ProofMessage::Bits(p)) => Ok(Envelope::Le(bitwise::compose(
                &self.ped,
                c,
                predicate.threshold,
                self.ell,
                Direction::Le,
                p,
                payload,
                rng,
            )?)),
            (ComparisonOp::Lt, ProofMessage::Bits(p)) => Ok(Envelope::Le(bitwise::compose(
                &self.ped,
                c,
                predicate.threshold - 1,
                self.ell,
                Direction::Le,
                p,
                payload,
                rng,
            )?)),
            (ComparisonOp::Neq, ProofMessage::Dual { ge, le }) => {
                let want_ge = predicate.threshold < max_value(self.ell);
                let want_le = predicate.threshold > 0;
                if want_ge != ge.is_some() || want_le != le.is_some() {
                    return Err(OcbeError::ProofShapeMismatch);
                }
                let ge_env = match ge {
                    Some(p) => Some(bitwise::compose(
                        &self.ped,
                        c,
                        predicate.threshold + 1,
                        self.ell,
                        Direction::Ge,
                        p,
                        payload,
                        rng,
                    )?),
                    None => None,
                };
                let le_env = match le {
                    Some(p) => Some(bitwise::compose(
                        &self.ped,
                        c,
                        predicate.threshold - 1,
                        self.ell,
                        Direction::Le,
                        p,
                        payload,
                        rng,
                    )?),
                    None => None,
                };
                Ok(Envelope::Dual {
                    ge: ge_env,
                    le: le_env,
                })
            }
            _ => Err(OcbeError::ProofShapeMismatch),
        }
    }

    /// Receiver phase 2: opens the envelope. `None` when the receiver's
    /// committed value does not satisfy the predicate.
    pub fn receiver_open(
        &self,
        envelope: &Envelope<G>,
        opening: &Opening,
        secrets: &ProofSecrets,
    ) -> Option<Vec<u8>> {
        let group = self.group();
        match (envelope, secrets) {
            (Envelope::Eq(env), ProofSecrets::Empty) => eq::open(group, env, &opening.randomness),
            (Envelope::Ge(env), ProofSecrets::Bits(s))
            | (Envelope::Le(env), ProofSecrets::Bits(s)) => bitwise::open(group, env, s),
            (Envelope::Dual { ge, le }, ProofSecrets::Dual { ge: ge_s, le: le_s }) => {
                if let (Some(env), Some(s)) = (ge, ge_s) {
                    if let Some(m) = bitwise::open(group, env, s) {
                        return Some(m);
                    }
                }
                if let (Some(env), Some(s)) = (le, le_s) {
                    if let Some(m) = bitwise::open(group, env, s) {
                        return Some(m);
                    }
                }
                None
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbcd_group::P256Group;
    use rand::SeedableRng;

    fn system() -> OcbeSystem<P256Group> {
        OcbeSystem::new(P256Group::new(), 16)
    }

    /// Runs the full three-message flow and returns whether the payload was
    /// recovered.
    fn flow(sys: &OcbeSystem<P256Group>, x: u64, pred: Predicate) -> bool {
        let mut rng = rand::rngs::StdRng::seed_from_u64(x.wrapping_mul(31) ^ pred.threshold);
        let (c, opening) = sys.pedersen().commit_u64(x, &mut rng);
        let (proof, secrets) = sys.receiver_prepare(x, &opening, &pred, &mut rng).unwrap();
        let env = sys
            .sender_compose(&c, &pred, &proof, b"css-bytes", &mut rng)
            .unwrap();
        match sys.receiver_open(&env, &opening, &secrets) {
            Some(m) => {
                assert_eq!(m, b"css-bytes");
                true
            }
            None => false,
        }
    }

    #[test]
    fn all_ops_match_plain_evaluation() {
        let sys = system();
        let xs = [0u64, 1, 57, 58, 59, 100, 65535];
        let thresholds = [0u64, 1, 58, 65534, 65535];
        for &x in &xs {
            for &t in &thresholds {
                for op in [
                    ComparisonOp::Eq,
                    ComparisonOp::Neq,
                    ComparisonOp::Gt,
                    ComparisonOp::Ge,
                    ComparisonOp::Lt,
                    ComparisonOp::Le,
                ] {
                    let pred = Predicate::new(op, t);
                    if !pred.satisfiable(sys.ell()) {
                        continue;
                    }
                    assert_eq!(flow(&sys, x, pred), pred.eval(x), "x={x} pred={pred}");
                }
            }
        }
    }

    #[test]
    fn unsatisfiable_predicates_rejected() {
        let sys = system();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (_, opening) = sys.pedersen().commit_u64(3, &mut rng);
        let lt0 = Predicate::new(ComparisonOp::Lt, 0);
        assert_eq!(
            sys.receiver_prepare(3, &opening, &lt0, &mut rng).err(),
            Some(OcbeError::UnsatisfiablePredicate)
        );
        let gt_max = Predicate::new(ComparisonOp::Gt, 65535);
        assert_eq!(
            sys.receiver_prepare(3, &opening, &gt_max, &mut rng).err(),
            Some(OcbeError::UnsatisfiablePredicate)
        );
    }

    #[test]
    fn neq_edge_thresholds() {
        let sys = system();
        // x₀ = 0: only the GE side exists.
        assert!(flow(&sys, 5, Predicate::new(ComparisonOp::Neq, 0)));
        assert!(!flow(&sys, 0, Predicate::new(ComparisonOp::Neq, 0)));
        // x₀ = max: only the LE side exists.
        assert!(flow(&sys, 5, Predicate::new(ComparisonOp::Neq, 65535)));
        assert!(!flow(&sys, 65535, Predicate::new(ComparisonOp::Neq, 65535)));
    }

    #[test]
    fn mismatched_proof_shape_rejected() {
        let sys = system();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let (c, opening) = sys.pedersen().commit_u64(3, &mut rng);
        let ge = Predicate::new(ComparisonOp::Ge, 2);
        let (_, _) = sys.receiver_prepare(3, &opening, &ge, &mut rng).unwrap();
        // Send an EQ-shaped (empty) proof for a GE predicate.
        assert_eq!(
            sys.sender_compose(&c, &ge, &ProofMessage::Empty, b"m", &mut rng)
                .err(),
            Some(OcbeError::ProofShapeMismatch)
        );
    }

    #[test]
    fn envelope_sizes_scale_with_ell() {
        let sys8 = OcbeSystem::new(P256Group::new(), 8);
        let sys32 = OcbeSystem::new(P256Group::new(), 32);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for (sys, _ell) in [(&sys8, 8u32), (&sys32, 32)] {
            let (c, opening) = sys.pedersen().commit_u64(5, &mut rng);
            let pred = Predicate::new(ComparisonOp::Ge, 1);
            let (proof, _) = sys.receiver_prepare(5, &opening, &pred, &mut rng).unwrap();
            let env = sys
                .sender_compose(&c, &pred, &proof, b"m", &mut rng)
                .unwrap();
            let _ = env.size_bytes(sys.group());
        }
        let mk = |sys: &OcbeSystem<P256Group>| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(4);
            let (c, opening) = sys.pedersen().commit_u64(5, &mut rng);
            let pred = Predicate::new(ComparisonOp::Ge, 1);
            let (proof, _) = sys.receiver_prepare(5, &opening, &pred, &mut rng).unwrap();
            sys.sender_compose(&c, &pred, &proof, b"m", &mut rng)
                .unwrap()
                .size_bytes(sys.group())
        };
        assert!(mk(&sys32) > mk(&sys8));
    }
}
