//! Attribute conditions (paper Definition 3).
//!
//! A condition is an expression `name_A op l` where `name_A` names an
//! identity attribute, `op` is a comparison operator and `l` a value.

use crate::attrs::{encode_string_value, AttributeSet};
use crate::predicate::{ComparisonOp, Predicate};

/// An attribute condition: `attribute op threshold`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttributeCondition {
    /// Attribute (id-tag) name, e.g. `"level"` or `"role"`.
    pub attribute: String,
    /// Comparison operator.
    pub op: ComparisonOp,
    /// Threshold value `l` (integer-encoded).
    pub threshold: u64,
}

impl AttributeCondition {
    /// Builds a condition on an integer-valued attribute.
    pub fn new(attribute: &str, op: ComparisonOp, threshold: u64) -> Self {
        Self {
            attribute: attribute.to_string(),
            op,
            threshold,
        }
    }

    /// Builds an equality condition on a string-valued attribute
    /// (`role = "nurse"` style), using the standard string encoding.
    pub fn eq_str(attribute: &str, value: &str) -> Self {
        Self::new(attribute, ComparisonOp::Eq, encode_string_value(value))
    }

    /// The OCBE predicate corresponding to this condition.
    pub fn predicate(&self) -> Predicate {
        Predicate::new(self.op, self.threshold)
    }

    /// Evaluates the condition against an attribute set. Missing attributes
    /// evaluate to `false`.
    pub fn eval(&self, attrs: &AttributeSet) -> bool {
        attrs
            .get(&self.attribute)
            .is_some_and(|x| self.op.eval(x, self.threshold))
    }

    /// Parses `"name op value"` (e.g. `"level >= 59"`). String thresholds
    /// are accepted in single quotes: `"role = 'nurse'"`.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split_whitespace();
        let attribute = parts.next()?;
        let op = ComparisonOp::parse(parts.next()?)?;
        let raw = parts.next()?;
        if parts.next().is_some() {
            return None;
        }
        let threshold = if let Some(quoted) = raw.strip_prefix('\'') {
            let value = quoted.strip_suffix('\'')?;
            if !matches!(op, ComparisonOp::Eq | ComparisonOp::Neq) {
                return None; // ordered comparison on strings is undefined
            }
            encode_string_value(value)
        } else {
            raw.parse().ok()?
        };
        Some(Self {
            attribute: attribute.to_string(),
            op,
            threshold,
        })
    }

    /// True iff two conditions are mutually exclusive by construction
    /// (no single value can satisfy both), used by privacy audits — e.g.
    /// the paper's `YoS ≥ 5` vs `YoS < 5` example.
    pub fn mutually_exclusive(&self, other: &Self) -> bool {
        if self.attribute != other.attribute {
            return false;
        }
        use ComparisonOp::*;
        let (a, b) = (self, other);
        let ordered = |lo: &Self, hi: &Self| -> bool {
            // lo bounds above (<, <=, =), hi bounds below (>, >=, =)
            let upper = match lo.op {
                Lt => lo.threshold.checked_sub(1),
                Le => Some(lo.threshold),
                Eq => Some(lo.threshold),
                _ => None,
            };
            let lower = match hi.op {
                Gt => hi.threshold.checked_add(1),
                Ge => Some(hi.threshold),
                Eq => Some(hi.threshold),
                _ => None,
            };
            match (upper, lower) {
                (Some(u), Some(l)) => u < l,
                (None, Some(_)) | (Some(_), None) | (None, None) => false,
            }
        };
        // Two equalities with different thresholds exclude each other.
        if a.op == Eq && b.op == Eq {
            return a.threshold != b.threshold;
        }
        // Eq vs Neq on the same threshold.
        if (a.op == Eq && b.op == Neq || a.op == Neq && b.op == Eq) && a.threshold == b.threshold {
            return true;
        }
        ordered(a, b) || ordered(b, a)
    }
}

impl core::fmt::Display for AttributeCondition {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} {} {}", self.attribute, self.op, self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_against_attribute_set() {
        let attrs = AttributeSet::new()
            .with("level", 59)
            .with_str("role", "nur");
        assert!(AttributeCondition::new("level", ComparisonOp::Ge, 59).eval(&attrs));
        assert!(!AttributeCondition::new("level", ComparisonOp::Ge, 60).eval(&attrs));
        assert!(AttributeCondition::eq_str("role", "nur").eval(&attrs));
        assert!(!AttributeCondition::eq_str("role", "doc").eval(&attrs));
        // Missing attribute is false.
        assert!(!AttributeCondition::new("YoS", ComparisonOp::Ge, 5).eval(&attrs));
    }

    #[test]
    fn parse_numeric_and_string() {
        let c = AttributeCondition::parse("level >= 59").unwrap();
        assert_eq!(c, AttributeCondition::new("level", ComparisonOp::Ge, 59));
        let c = AttributeCondition::parse("role = 'nurse'").unwrap();
        assert_eq!(c, AttributeCondition::eq_str("role", "nurse"));
        assert!(AttributeCondition::parse("level >=").is_none());
        assert!(AttributeCondition::parse("level ~ 5").is_none());
        assert!(AttributeCondition::parse("role > 'nurse'").is_none());
        assert!(AttributeCondition::parse("a = 1 extra").is_none());
    }

    #[test]
    fn display_roundtrip_numeric() {
        let c = AttributeCondition::new("YoS", ComparisonOp::Lt, 5);
        assert_eq!(AttributeCondition::parse(&c.to_string()), Some(c));
    }

    #[test]
    fn mutual_exclusion_paper_example() {
        // Table I: "YoS ≥ 5" and "YoS < 5" are mutually exclusive.
        let ge5 = AttributeCondition::new("YoS", ComparisonOp::Ge, 5);
        let lt5 = AttributeCondition::new("YoS", ComparisonOp::Lt, 5);
        assert!(ge5.mutually_exclusive(&lt5));
        assert!(lt5.mutually_exclusive(&ge5));
        // Overlapping ranges are not exclusive.
        let ge3 = AttributeCondition::new("YoS", ComparisonOp::Ge, 3);
        assert!(!ge5.mutually_exclusive(&ge3));
        let le5 = AttributeCondition::new("YoS", ComparisonOp::Le, 5);
        assert!(!ge5.mutually_exclusive(&le5)); // both true at exactly 5
                                                // Different attributes never exclude.
        let level = AttributeCondition::new("level", ComparisonOp::Lt, 5);
        assert!(!ge5.mutually_exclusive(&level));
        // Distinct equality values exclude.
        let doc = AttributeCondition::eq_str("role", "doc");
        let nur = AttributeCondition::eq_str("role", "nur");
        assert!(doc.mutually_exclusive(&nur));
        assert!(!doc.mutually_exclusive(&doc.clone()));
    }

    #[test]
    fn eq_vs_neq_exclusion() {
        let eq = AttributeCondition::new("x", ComparisonOp::Eq, 7);
        let neq = AttributeCondition::new("x", ComparisonOp::Neq, 7);
        assert!(eq.mutually_exclusive(&neq));
        let neq8 = AttributeCondition::new("x", ComparisonOp::Neq, 8);
        assert!(!eq.mutually_exclusive(&neq8));
    }
}
