//! # pbcd-policy
//!
//! The policy layer of the PBCD workspace (paper Definitions 3–6):
//!
//! * [`predicate`] — comparison predicates over ℓ-bit attribute values,
//! * [`attrs`] — subscriber attribute sets and the standard string-value
//!   encoding,
//! * [`condition`] — attribute conditions (`name op value`),
//! * [`acp`] — access control policies `(s, o, D)`,
//! * [`config`] — policy sets, per-subdocument policy configurations and
//!   the dominance relation.
//!
//! This crate is pure logic: no group arithmetic, no protocol state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acp;
pub mod attrs;
pub mod condition;
pub mod config;
pub mod predicate;

pub use acp::{AccessControlPolicy, AcpId};
pub use attrs::{encode_string_value, AttributeSet};
pub use condition::AttributeCondition;
pub use config::{PolicyConfiguration, PolicySet};
pub use predicate::{max_value, ComparisonOp, Predicate};
