//! Access control policies (paper Definition 4).
//!
//! An ACP is a tuple `(s, o, D)`: a conjunction `s` of attribute conditions
//! that a subscriber must satisfy to access the set `o` of subdocuments of
//! document `D`.

use crate::attrs::AttributeSet;
use crate::condition::AttributeCondition;

/// Identifier of an ACP within a [`crate::config::PolicySet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AcpId(pub usize);

impl core::fmt::Display for AcpId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "acp{}", self.0 + 1)
    }
}

/// An access control policy `(s, o, D)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessControlPolicy {
    /// Conjunction of attribute conditions (`cond₁ ∧ … ∧ condₙ`).
    pub conditions: Vec<AttributeCondition>,
    /// Names of the subdocuments this policy grants access to.
    pub objects: Vec<String>,
    /// The document the objects belong to.
    pub document: String,
}

impl AccessControlPolicy {
    /// Builds a policy from parts.
    pub fn new(conditions: Vec<AttributeCondition>, objects: &[&str], document: &str) -> Self {
        assert!(!conditions.is_empty(), "ACP needs at least one condition");
        Self {
            conditions,
            objects: objects.iter().map(|s| s.to_string()).collect(),
            document: document.to_string(),
        }
    }

    /// Parses the subject from a conjunction string, e.g.
    /// `"level >= 59 && role = 'nurse'"`.
    pub fn parse(subject: &str, objects: &[&str], document: &str) -> Option<Self> {
        let conditions: Option<Vec<_>> = subject
            .split("&&")
            .map(|c| AttributeCondition::parse(c.trim()))
            .collect();
        let conditions = conditions?;
        if conditions.is_empty() {
            return None;
        }
        Some(Self::new(conditions, objects, document))
    }

    /// True iff `attrs` satisfies the full conjunction.
    pub fn eval(&self, attrs: &AttributeSet) -> bool {
        self.conditions.iter().all(|c| c.eval(attrs))
    }

    /// True iff the policy covers the named subdocument.
    pub fn applies_to(&self, subdocument: &str) -> bool {
        self.objects.iter().any(|o| o == subdocument)
    }

    /// The attribute names mentioned in the subject.
    pub fn attribute_names(&self) -> impl Iterator<Item = &str> {
        self.conditions.iter().map(|c| c.attribute.as_str())
    }
}

impl core::fmt::Display for AccessControlPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let subject = self
            .conditions
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(" && ");
        write!(
            f,
            "(\"{}\", {{{}}}, \"{}\")",
            subject,
            self.objects.join(", "),
            self.document
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::ComparisonOp;

    fn nurse_policy() -> AccessControlPolicy {
        // Paper Example 2: level ≥ 58 ∧ role = nurse.
        AccessControlPolicy::new(
            vec![
                AttributeCondition::new("level", ComparisonOp::Ge, 58),
                AttributeCondition::eq_str("role", "nurse"),
            ],
            &["physical exam", "treatment plan"],
            "EHR.xml",
        )
    }

    #[test]
    fn conjunction_semantics() {
        let acp = nurse_policy();
        let qualified = AttributeSet::new()
            .with("level", 58)
            .with_str("role", "nurse");
        assert!(acp.eval(&qualified));
        let wrong_level = AttributeSet::new()
            .with("level", 57)
            .with_str("role", "nurse");
        assert!(!acp.eval(&wrong_level));
        let wrong_role = AttributeSet::new()
            .with("level", 60)
            .with_str("role", "doctor");
        assert!(!acp.eval(&wrong_role));
        let missing = AttributeSet::new().with("level", 60);
        assert!(!acp.eval(&missing));
    }

    #[test]
    fn applies_to_objects() {
        let acp = nurse_policy();
        assert!(acp.applies_to("physical exam"));
        assert!(acp.applies_to("treatment plan"));
        assert!(!acp.applies_to("billing info"));
    }

    #[test]
    fn parse_conjunction() {
        let acp = AccessControlPolicy::parse(
            "level >= 58 && role = 'nurse'",
            &["physical exam"],
            "EHR.xml",
        )
        .unwrap();
        assert_eq!(acp.conditions.len(), 2);
        assert_eq!(acp.conditions[0].attribute, "level");
        assert_eq!(acp.conditions[1].attribute, "role");
        assert!(AccessControlPolicy::parse("level >>= 3", &["x"], "d").is_none());
    }

    #[test]
    fn attribute_names_iterates_subject() {
        let acp = nurse_policy();
        let names: Vec<&str> = acp.attribute_names().collect();
        assert_eq!(names, vec!["level", "role"]);
    }

    #[test]
    #[should_panic(expected = "at least one condition")]
    fn empty_subject_rejected() {
        AccessControlPolicy::new(vec![], &["x"], "d");
    }
}
