//! Identity attribute sets.
//!
//! Attribute values are encoded as `u64` integers below `2^ℓ` (the paper's
//! `V = {0, …, 2^ℓ − 1}`). String-valued attributes such as roles are
//! mapped to integers by a public, deterministic dictionary — the paper
//! encodes them "in a standard way" (§V-A); [`encode_string_value`]
//! provides that standard encoding.

use pbcd_crypto::sha256;
use std::collections::BTreeMap;

/// A set of identity attributes held by a subscriber: name → integer value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttributeSet {
    values: BTreeMap<String, u64>,
}

impl AttributeSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) an attribute.
    pub fn with(mut self, name: &str, value: u64) -> Self {
        self.values.insert(name.to_string(), value);
        self
    }

    /// Adds (or replaces) a string-valued attribute via the standard
    /// dictionary-free encoding.
    pub fn with_str(self, name: &str, value: &str) -> Self {
        let encoded = encode_string_value(value);
        self.with(name, encoded)
    }

    /// Sets an attribute in place.
    pub fn set(&mut self, name: &str, value: u64) {
        self.values.insert(name.to_string(), value);
    }

    /// Looks up an attribute value.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.values.get(name).copied()
    }

    /// True iff the set contains `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff there are no attributes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Deterministically encodes a string attribute value (role names etc.)
/// into the 48-bit integer space, clear of small numeric values so string
/// and numeric attributes cannot collide accidentally.
pub fn encode_string_value(value: &str) -> u64 {
    let digest = sha256(value.as_bytes());
    let mut v = u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"));
    v &= (1 << 48) - 1; // keep within default ℓ = 48-bit attribute space
    v | (1 << 47) // high bit set: disjoint from small numeric values
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_operations() {
        let attrs = AttributeSet::new()
            .with("level", 59)
            .with_str("role", "nurse");
        assert_eq!(attrs.get("level"), Some(59));
        assert_eq!(attrs.get("role"), Some(encode_string_value("nurse")));
        assert!(attrs.contains("role"));
        assert!(!attrs.contains("age"));
        assert_eq!(attrs.len(), 2);
    }

    #[test]
    fn string_encoding_is_deterministic_and_distinct() {
        assert_eq!(encode_string_value("doc"), encode_string_value("doc"));
        assert_ne!(encode_string_value("doc"), encode_string_value("nur"));
        // All six roles from the paper's Example 4 are pairwise distinct.
        let roles = ["rec", "cas", "doc", "nur", "dat", "pha"];
        for (i, a) in roles.iter().enumerate() {
            for b in &roles[i + 1..] {
                assert_ne!(encode_string_value(a), encode_string_value(b));
            }
        }
    }

    #[test]
    fn string_encoding_fits_48_bits_with_flag() {
        for s in ["nurse", "doctor", "x", ""] {
            let v = encode_string_value(s);
            assert!(v < (1 << 48));
            assert!(v >= (1 << 47), "flag bit keeps clear of numerics");
        }
    }

    #[test]
    fn overwrite_updates_value() {
        let mut attrs = AttributeSet::new().with("level", 10);
        attrs.set("level", 20);
        assert_eq!(attrs.get("level"), Some(20));
        assert_eq!(attrs.len(), 1);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let attrs = AttributeSet::new()
            .with("zeta", 1)
            .with("alpha", 2)
            .with("mid", 3);
        let names: Vec<&str> = attrs.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
