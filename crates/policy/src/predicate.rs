//! Comparison predicates over ℓ-bit attribute values.
//!
//! OCBE supports the comparison predicates `=, ≠, >, ≥, <, ≤` (paper
//! §IV-C). Attribute values live in `V = {0, 1, …, 2^ℓ − 1}` with the
//! system constraint `2^ℓ < p/2`; this workspace encodes values as `u64`
//! and enforces `ℓ ≤ 63`, comfortably below both group orders.

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComparisonOp {
    /// `=`
    Eq,
    /// `≠`
    Neq,
    /// `>`
    Gt,
    /// `≥`
    Ge,
    /// `<`
    Lt,
    /// `≤`
    Le,
}

impl ComparisonOp {
    /// Parses the usual textual forms (`=`, `!=`, `<>`, `>`, `>=`, `<`, `<=`).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "=" | "==" => Self::Eq,
            "!=" | "<>" | "≠" => Self::Neq,
            ">" => Self::Gt,
            ">=" | "≥" => Self::Ge,
            "<" => Self::Lt,
            "<=" | "≤" => Self::Le,
            _ => return None,
        })
    }

    /// Evaluates `x op threshold`.
    pub fn eval(&self, x: u64, threshold: u64) -> bool {
        match self {
            Self::Eq => x == threshold,
            Self::Neq => x != threshold,
            Self::Gt => x > threshold,
            Self::Ge => x >= threshold,
            Self::Lt => x < threshold,
            Self::Le => x <= threshold,
        }
    }
}

impl core::fmt::Display for ComparisonOp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::Eq => "=",
            Self::Neq => "!=",
            Self::Gt => ">",
            Self::Ge => ">=",
            Self::Lt => "<",
            Self::Le => "<=",
        };
        write!(f, "{s}")
    }
}

/// A predicate `x op threshold` over ℓ-bit attribute values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// The comparison operator.
    pub op: ComparisonOp,
    /// The policy threshold `x₀`.
    pub threshold: u64,
}

impl Predicate {
    /// Constructs a predicate.
    pub fn new(op: ComparisonOp, threshold: u64) -> Self {
        Self { op, threshold }
    }

    /// Evaluates the predicate at `x`.
    pub fn eval(&self, x: u64) -> bool {
        self.op.eval(x, self.threshold)
    }

    /// True iff some value in `[0, 2^ℓ)` satisfies the predicate.
    pub fn satisfiable(&self, ell: u32) -> bool {
        let max = max_value(ell);
        match self.op {
            ComparisonOp::Eq => self.threshold <= max,
            ComparisonOp::Neq => max > 0 || self.threshold != 0,
            ComparisonOp::Gt => self.threshold < max,
            ComparisonOp::Ge => self.threshold <= max,
            ComparisonOp::Lt => self.threshold > 0,
            ComparisonOp::Le => true,
        }
    }
}

impl core::fmt::Display for Predicate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} {}", self.op, self.threshold)
    }
}

/// Largest ℓ-bit value.
pub fn max_value(ell: u32) -> u64 {
    assert!((1..=63).contains(&ell), "ℓ must be in 1..=63");
    (1u64 << ell) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_all_ops() {
        assert!(Predicate::new(ComparisonOp::Eq, 5).eval(5));
        assert!(!Predicate::new(ComparisonOp::Eq, 5).eval(6));
        assert!(Predicate::new(ComparisonOp::Neq, 5).eval(6));
        assert!(!Predicate::new(ComparisonOp::Neq, 5).eval(5));
        assert!(Predicate::new(ComparisonOp::Gt, 5).eval(6));
        assert!(!Predicate::new(ComparisonOp::Gt, 5).eval(5));
        assert!(Predicate::new(ComparisonOp::Ge, 5).eval(5));
        assert!(!Predicate::new(ComparisonOp::Ge, 5).eval(4));
        assert!(Predicate::new(ComparisonOp::Lt, 5).eval(4));
        assert!(!Predicate::new(ComparisonOp::Lt, 5).eval(5));
        assert!(Predicate::new(ComparisonOp::Le, 5).eval(5));
        assert!(!Predicate::new(ComparisonOp::Le, 5).eval(6));
    }

    #[test]
    fn parse_ops() {
        assert_eq!(ComparisonOp::parse("="), Some(ComparisonOp::Eq));
        assert_eq!(ComparisonOp::parse("=="), Some(ComparisonOp::Eq));
        assert_eq!(ComparisonOp::parse("!="), Some(ComparisonOp::Neq));
        assert_eq!(ComparisonOp::parse(">="), Some(ComparisonOp::Ge));
        assert_eq!(ComparisonOp::parse("<="), Some(ComparisonOp::Le));
        assert_eq!(ComparisonOp::parse(">"), Some(ComparisonOp::Gt));
        assert_eq!(ComparisonOp::parse("<"), Some(ComparisonOp::Lt));
        assert_eq!(ComparisonOp::parse("~"), None);
    }

    #[test]
    fn satisfiability_edges() {
        // ℓ = 8 ⇒ values in [0, 255].
        assert!(Predicate::new(ComparisonOp::Lt, 1).satisfiable(8));
        assert!(!Predicate::new(ComparisonOp::Lt, 0).satisfiable(8));
        assert!(Predicate::new(ComparisonOp::Gt, 254).satisfiable(8));
        assert!(!Predicate::new(ComparisonOp::Gt, 255).satisfiable(8));
        assert!(Predicate::new(ComparisonOp::Ge, 255).satisfiable(8));
        assert!(!Predicate::new(ComparisonOp::Ge, 256).satisfiable(8));
        assert!(!Predicate::new(ComparisonOp::Eq, 256).satisfiable(8));
        assert!(Predicate::new(ComparisonOp::Le, 0).satisfiable(8));
    }

    #[test]
    fn display_roundtrip() {
        let p = Predicate::new(ComparisonOp::Ge, 59);
        assert_eq!(p.to_string(), ">= 59");
    }

    #[test]
    #[should_panic(expected = "ℓ must be in 1..=63")]
    fn ell_bounds_enforced() {
        max_value(64);
    }
}
