//! Policy sets, policy configurations (paper Definition 5) and the
//! dominance relation (Definition 6).
//!
//! A *policy configuration* for a subdocument is the set of ACPs that apply
//! to it; all subdocuments sharing a configuration are encrypted under the
//! same symmetric key. `Pcᵢ` *dominates* `Pcⱼ` iff `Pcᵢ ⊆ Pcⱼ` — a
//! subscriber that can derive `Pcᵢ`'s key can derive `Pcⱼ`'s too (§VIII-A).

use crate::acp::{AccessControlPolicy, AcpId};
use crate::attrs::AttributeSet;
use crate::condition::AttributeCondition;
use std::collections::{BTreeMap, BTreeSet};

/// A policy configuration: the (possibly empty) set of ACPs applying to a
/// subdocument.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PolicyConfiguration {
    acps: BTreeSet<AcpId>,
}

impl PolicyConfiguration {
    /// Builds from ACP ids.
    pub fn from_ids(ids: impl IntoIterator<Item = AcpId>) -> Self {
        Self {
            acps: ids.into_iter().collect(),
        }
    }

    /// The member ACP ids.
    pub fn acp_ids(&self) -> impl Iterator<Item = AcpId> + '_ {
        self.acps.iter().copied()
    }

    /// True iff no ACP applies (the paper's `Pc₆ = {}` case: nobody can
    /// access; the publisher encrypts without publishing key material).
    pub fn is_empty(&self) -> bool {
        self.acps.is_empty()
    }

    /// Number of member ACPs.
    pub fn len(&self) -> usize {
        self.acps.len()
    }

    /// True iff `id` is a member.
    pub fn contains(&self, id: AcpId) -> bool {
        self.acps.contains(&id)
    }

    /// Dominance (Definition 6): `self` dominates `other` iff
    /// `self ⊆ other`.
    pub fn dominates(&self, other: &Self) -> bool {
        self.acps.is_subset(&other.acps)
    }
}

impl core::fmt::Display for PolicyConfiguration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.acps.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

/// The publisher's full set of access control policies (the paper's
/// `ACPB`), with derived views: per-subdocument configurations, the
/// distinct-condition universe, and evaluation helpers.
#[derive(Debug, Clone, Default)]
pub struct PolicySet {
    acps: Vec<AccessControlPolicy>,
}

impl PolicySet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a policy and returns its id.
    pub fn add(&mut self, acp: AccessControlPolicy) -> AcpId {
        self.acps.push(acp);
        AcpId(self.acps.len() - 1)
    }

    /// Looks up a policy.
    pub fn get(&self, id: AcpId) -> Option<&AccessControlPolicy> {
        self.acps.get(id.0)
    }

    /// All policies with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (AcpId, &AccessControlPolicy)> {
        self.acps.iter().enumerate().map(|(i, p)| (AcpId(i), p))
    }

    /// Number of policies.
    pub fn len(&self) -> usize {
        self.acps.len()
    }

    /// True iff there are no policies.
    pub fn is_empty(&self) -> bool {
        self.acps.is_empty()
    }

    /// The policy configuration of a single subdocument.
    pub fn configuration_of(&self, subdocument: &str) -> PolicyConfiguration {
        PolicyConfiguration::from_ids(
            self.iter()
                .filter(|(_, p)| p.applies_to(subdocument))
                .map(|(id, _)| id),
        )
    }

    /// Groups subdocuments by their policy configuration (the paper's
    /// `Pc ↔ {subdocuments}` table in Example 4).
    pub fn group_by_configuration<'a>(
        &self,
        subdocuments: impl IntoIterator<Item = &'a str>,
    ) -> BTreeMap<PolicyConfiguration, Vec<String>> {
        let mut groups: BTreeMap<PolicyConfiguration, Vec<String>> = BTreeMap::new();
        for sub in subdocuments {
            groups
                .entry(self.configuration_of(sub))
                .or_default()
                .push(sub.to_string());
        }
        groups
    }

    /// The distinct attribute conditions across all policies — the columns
    /// of the publisher's CSS table T. The total count bounds the number of
    /// CSSs any subscriber must hold (§VIII-B).
    pub fn distinct_conditions(&self) -> Vec<AttributeCondition> {
        let set: BTreeSet<&AttributeCondition> =
            self.acps.iter().flat_map(|p| &p.conditions).collect();
        set.into_iter().cloned().collect()
    }

    /// The distinct conditions naming a given attribute (what a subscriber
    /// registering an identity token with that id-tag registers for).
    pub fn conditions_on_attribute(&self, attribute: &str) -> Vec<AttributeCondition> {
        self.distinct_conditions()
            .into_iter()
            .filter(|c| c.attribute == attribute)
            .collect()
    }

    /// Ids of policies satisfied by `attrs`.
    pub fn satisfied_by(&self, attrs: &AttributeSet) -> Vec<AcpId> {
        self.iter()
            .filter(|(_, p)| p.eval(attrs))
            .map(|(id, _)| id)
            .collect()
    }

    /// True iff `attrs` can access a subdocument with configuration `pc`
    /// (satisfies at least one member ACP).
    pub fn grants_access(&self, pc: &PolicyConfiguration, attrs: &AttributeSet) -> bool {
        pc.acp_ids()
            .any(|id| self.get(id).is_some_and(|p| p.eval(attrs)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::ComparisonOp;

    /// The six policies of the paper's Example 4 (healthcare EHR scenario).
    pub fn example4_policies() -> PolicySet {
        let mut set = PolicySet::new();
        let doc = "EHR.xml";
        set.add(AccessControlPolicy::new(
            vec![AttributeCondition::eq_str("role", "rec")],
            &["ContactInfo"],
            doc,
        ));
        set.add(AccessControlPolicy::new(
            vec![AttributeCondition::eq_str("role", "cas")],
            &["BillingInfo"],
            doc,
        ));
        set.add(AccessControlPolicy::new(
            vec![AttributeCondition::eq_str("role", "doc")],
            &["ClinicalRecord"],
            doc,
        ));
        set.add(AccessControlPolicy::new(
            vec![
                AttributeCondition::eq_str("role", "nur"),
                AttributeCondition::new("level", ComparisonOp::Ge, 59),
            ],
            &[
                "ContactInfo",
                "Medication",
                "PhysicalExams",
                "LabRecords",
                "Plan",
            ],
            doc,
        ));
        set.add(AccessControlPolicy::new(
            vec![AttributeCondition::eq_str("role", "dat")],
            &["ContactInfo", "LabRecords"],
            doc,
        ));
        set.add(AccessControlPolicy::new(
            vec![AttributeCondition::eq_str("role", "pha")],
            &["BillingInfo", "Medication"],
            doc,
        ));
        set
    }

    #[test]
    fn example4_configurations_match_paper() {
        // Note: the paper treats ClinicalRecord's nested children as the
        // subdocuments; acp3 (doctor) covers the whole ClinicalRecord, so
        // the per-child configurations include acp3.
        let set = example4_policies();
        let (a1, a2, a3, a4, a5, a6) = (AcpId(0), AcpId(1), AcpId(2), AcpId(3), AcpId(4), AcpId(5));
        // Pc1 = {acp1, acp4, acp5} ↔ ContactInfo.
        assert_eq!(
            set.configuration_of("ContactInfo"),
            PolicyConfiguration::from_ids([a1, a4, a5])
        );
        // Pc2 = {acp2, acp6} ↔ BillingInfo.
        assert_eq!(
            set.configuration_of("BillingInfo"),
            PolicyConfiguration::from_ids([a2, a6])
        );
        // Medication gets acp4, acp6 at this level (acp3 covers the parent).
        assert_eq!(
            set.configuration_of("Medication"),
            PolicyConfiguration::from_ids([a4, a6])
        );
        // Unknown tags have the empty configuration.
        assert!(set.configuration_of("SocialHistory").is_empty());
        let _ = a3;
    }

    #[test]
    fn grouping_collects_equal_configurations() {
        let set = example4_policies();
        let groups = set.group_by_configuration([
            "ContactInfo",
            "BillingInfo",
            "Medication",
            "PhysicalExams",
            "Plan",
            "LabRecords",
        ]);
        // PhysicalExams and Plan share {acp4} here, so they group together.
        let pc_pe = set.configuration_of("PhysicalExams");
        assert_eq!(
            groups.get(&pc_pe).unwrap(),
            &vec!["PhysicalExams".to_string(), "Plan".to_string()]
        );
    }

    #[test]
    fn dominance_relation() {
        let small = PolicyConfiguration::from_ids([AcpId(0)]);
        let big = PolicyConfiguration::from_ids([AcpId(0), AcpId(1)]);
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
        assert!(small.dominates(&small));
        let empty = PolicyConfiguration::default();
        assert!(empty.dominates(&small));
    }

    #[test]
    fn distinct_conditions_deduplicate() {
        let set = example4_policies();
        let conds = set.distinct_conditions();
        // 6 role equalities + 1 level condition = 7 distinct conditions.
        assert_eq!(conds.len(), 7);
        let role_conds = set.conditions_on_attribute("role");
        assert_eq!(role_conds.len(), 6);
        assert_eq!(set.conditions_on_attribute("level").len(), 1);
        assert!(set.conditions_on_attribute("age").is_empty());
    }

    #[test]
    fn satisfaction_and_access() {
        let set = example4_policies();
        let nurse59 = AttributeSet::new()
            .with_str("role", "nur")
            .with("level", 59);
        let nurse58 = AttributeSet::new()
            .with_str("role", "nur")
            .with("level", 58);
        let doctor = AttributeSet::new().with_str("role", "doc");
        assert_eq!(set.satisfied_by(&nurse59), vec![AcpId(3)]);
        assert!(set.satisfied_by(&nurse58).is_empty());
        assert_eq!(set.satisfied_by(&doctor), vec![AcpId(2)]);
        let pc_contact = set.configuration_of("ContactInfo");
        assert!(set.grants_access(&pc_contact, &nurse59));
        assert!(!set.grants_access(&pc_contact, &nurse58));
        assert!(!set.grants_access(&pc_contact, &doctor));
    }
}
