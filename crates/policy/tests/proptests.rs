//! Property-based tests for the policy layer.

use pbcd_policy::{
    AccessControlPolicy, AcpId, AttributeCondition, AttributeSet, ComparisonOp,
    PolicyConfiguration, PolicySet, Predicate,
};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = ComparisonOp> {
    prop_oneof![
        Just(ComparisonOp::Eq),
        Just(ComparisonOp::Neq),
        Just(ComparisonOp::Gt),
        Just(ComparisonOp::Ge),
        Just(ComparisonOp::Lt),
        Just(ComparisonOp::Le),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn predicate_eval_matches_native_comparison(x in any::<u64>(), t in any::<u64>(), op in arb_op()) {
        let native = match op {
            ComparisonOp::Eq => x == t,
            ComparisonOp::Neq => x != t,
            ComparisonOp::Gt => x > t,
            ComparisonOp::Ge => x >= t,
            ComparisonOp::Lt => x < t,
            ComparisonOp::Le => x <= t,
        };
        prop_assert_eq!(Predicate::new(op, t).eval(x), native);
    }

    #[test]
    fn satisfiable_predicates_have_witnesses(t in 0u64..256, op in arb_op()) {
        let ell = 8;
        let pred = Predicate::new(op, t);
        let has_witness = (0..256u64).any(|x| pred.eval(x));
        prop_assert_eq!(pred.satisfiable(ell), has_witness);
    }

    #[test]
    fn condition_parse_display_roundtrip(
        name in "[a-zA-Z][a-zA-Z0-9_]{0,10}",
        t in any::<u64>(),
        op in arb_op(),
    ) {
        let cond = AttributeCondition::new(&name, op, t);
        prop_assert_eq!(AttributeCondition::parse(&cond.to_string()), Some(cond));
    }

    #[test]
    fn mutual_exclusion_is_sound(t1 in 0u64..64, t2 in 0u64..64, op1 in arb_op(), op2 in arb_op()) {
        // If conditions are declared mutually exclusive, no value in range
        // satisfies both.
        let c1 = AttributeCondition::new("a", op1, t1);
        let c2 = AttributeCondition::new("a", op2, t2);
        if c1.mutually_exclusive(&c2) {
            for x in 0..128u64 {
                let attrs = AttributeSet::new().with("a", x);
                prop_assert!(!(c1.eval(&attrs) && c2.eval(&attrs)), "x={} {} / {}", x, c1, c2);
            }
        }
    }

    #[test]
    fn conjunction_semantics(vals in prop::collection::vec(0u64..16, 1..4), thresholds in prop::collection::vec(0u64..16, 1..4)) {
        let n = vals.len().min(thresholds.len());
        let conds: Vec<_> = (0..n)
            .map(|i| AttributeCondition::new(&format!("a{i}"), ComparisonOp::Ge, thresholds[i]))
            .collect();
        let acp = AccessControlPolicy::new(conds.clone(), &["obj"], "d");
        let mut attrs = AttributeSet::new();
        for (i, v) in vals.iter().enumerate().take(n) {
            attrs.set(&format!("a{i}"), *v);
        }
        let expected = (0..n).all(|i| vals[i] >= thresholds[i]);
        prop_assert_eq!(acp.eval(&attrs), expected);
    }

    #[test]
    fn dominance_is_a_partial_order(a in prop::collection::btree_set(0usize..8, 0..5), b in prop::collection::btree_set(0usize..8, 0..5), c in prop::collection::btree_set(0usize..8, 0..5)) {
        let pa = PolicyConfiguration::from_ids(a.iter().map(|&i| AcpId(i)));
        let pb = PolicyConfiguration::from_ids(b.iter().map(|&i| AcpId(i)));
        let pc = PolicyConfiguration::from_ids(c.iter().map(|&i| AcpId(i)));
        // Reflexive.
        prop_assert!(pa.dominates(&pa));
        // Antisymmetric.
        if pa.dominates(&pb) && pb.dominates(&pa) {
            prop_assert_eq!(&pa, &pb);
        }
        // Transitive.
        if pa.dominates(&pb) && pb.dominates(&pc) {
            prop_assert!(pa.dominates(&pc));
        }
    }

    #[test]
    fn grouping_partitions_subdocuments(tags in prop::collection::vec("[a-d]", 1..8)) {
        // Policies over fixed objects; any tag multiset is partitioned
        // without loss by group_by_configuration.
        let mut set = PolicySet::new();
        set.add(AccessControlPolicy::new(
            vec![AttributeCondition::new("r", ComparisonOp::Eq, 1)],
            &["a", "b"],
            "d",
        ));
        set.add(AccessControlPolicy::new(
            vec![AttributeCondition::new("r", ComparisonOp::Eq, 2)],
            &["b", "c"],
            "d",
        ));
        let tag_refs: Vec<&str> = tags.iter().map(String::as_str).collect();
        let groups = set.group_by_configuration(tag_refs.iter().copied());
        let total: usize = groups.values().map(Vec::len).sum();
        prop_assert_eq!(total, tags.len());
        // Every subdocument landed in the group of its own configuration.
        for (pc, subs) in &groups {
            for s in subs {
                prop_assert_eq!(&set.configuration_of(s), pc);
            }
        }
    }

    #[test]
    fn satisfied_policies_grant_their_configurations(x in 0u64..100) {
        let mut set = PolicySet::new();
        let id = set.add(AccessControlPolicy::new(
            vec![AttributeCondition::new("level", ComparisonOp::Ge, 50)],
            &["obj"],
            "d",
        ));
        let attrs = AttributeSet::new().with("level", x);
        let pc = set.configuration_of("obj");
        prop_assert!(pc.contains(id));
        prop_assert_eq!(set.grants_access(&pc, &attrs), x >= 50);
    }
}
