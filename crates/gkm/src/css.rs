//! The publisher's conditional-subscription-secret table `T` (paper §V-B,
//! Table I).
//!
//! `T` maps `(pseudonym, attribute condition) → CSS`, where each CSS is a
//! κ-bit random value delivered obliviously during registration. The table
//! is the publisher's only per-subscriber state; every group-key operation
//! reads it and every subscription event (join, credential update,
//! credential revocation, subscription revocation) mutates it.

use pbcd_policy::AttributeCondition;
use rand::RngCore;
use std::collections::BTreeMap;

/// A subscriber pseudonym (`nym`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Nym(pub String);

impl Nym {
    /// Convenience constructor.
    pub fn new(s: &str) -> Self {
        Self(s.to_string())
    }

    /// The pseudonym string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl core::fmt::Display for Nym {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A conditional subscription secret: κ/8 random bytes.
pub type Css = Vec<u8>;

/// The CSS table `T`.
#[derive(Debug, Clone, Default)]
pub struct CssTable {
    kappa_bits: u32,
    rows: BTreeMap<Nym, BTreeMap<AttributeCondition, Css>>,
}

impl CssTable {
    /// Creates an empty table issuing κ-bit secrets (κ must be a positive
    /// multiple of 8).
    pub fn new(kappa_bits: u32) -> Self {
        assert!(
            kappa_bits > 0 && kappa_bits % 8 == 0,
            "κ must be a multiple of 8"
        );
        Self {
            kappa_bits,
            rows: BTreeMap::new(),
        }
    }

    /// The CSS bit width κ.
    pub fn kappa_bits(&self) -> u32 {
        self.kappa_bits
    }

    /// Issues (or re-issues, overriding — the paper's credential-update
    /// case) a CSS for `(nym, cond)` and returns a copy of it.
    pub fn issue<R: RngCore + ?Sized>(
        &mut self,
        nym: &Nym,
        cond: &AttributeCondition,
        rng: &mut R,
    ) -> Css {
        let mut css = vec![0u8; (self.kappa_bits / 8) as usize];
        rng.fill_bytes(&mut css);
        self.rows
            .entry(nym.clone())
            .or_default()
            .insert(cond.clone(), css.clone());
        css
    }

    /// Looks up the CSS for `(nym, cond)`.
    pub fn get(&self, nym: &Nym, cond: &AttributeCondition) -> Option<&Css> {
        self.rows.get(nym)?.get(cond)
    }

    /// Credential revocation: removes one `(nym, cond)` record.
    pub fn remove_credential(&mut self, nym: &Nym, cond: &AttributeCondition) -> bool {
        let Some(row) = self.rows.get_mut(nym) else {
            return false;
        };
        let removed = row.remove(cond).is_some();
        if row.is_empty() {
            self.rows.remove(nym);
        }
        removed
    }

    /// Subscription revocation: removes the whole `nym` row.
    pub fn remove_subscriber(&mut self, nym: &Nym) -> bool {
        self.rows.remove(nym).is_some()
    }

    /// All pseudonyms with at least one record.
    pub fn nyms(&self) -> impl Iterator<Item = &Nym> {
        self.rows.keys()
    }

    /// Number of subscribers with records.
    pub fn subscriber_count(&self) -> usize {
        self.rows.len()
    }

    /// Total number of CSS records.
    pub fn record_count(&self) -> usize {
        self.rows.values().map(BTreeMap::len).sum()
    }

    /// The paper's `U_k` query: pseudonyms whose records cover *all* of
    /// `conds` (the SQL `SELECT * FROM T WHERE cond <> NULL` example).
    pub fn nyms_with_all(&self, conds: &[AttributeCondition]) -> Vec<&Nym> {
        self.rows
            .iter()
            .filter(|(_, row)| conds.iter().all(|c| row.contains_key(c)))
            .map(|(nym, _)| nym)
            .collect()
    }

    /// Concatenation `r_{i,1} ‖ … ‖ r_{i,m_k}` of a subscriber's CSSs for
    /// the given condition list, in order — the hash input of the BGKM
    /// matrix row. `None` if any record is missing.
    pub fn css_concat(&self, nym: &Nym, conds: &[AttributeCondition]) -> Option<Vec<u8>> {
        let row = self.rows.get(nym)?;
        let mut out = Vec::with_capacity(conds.len() * (self.kappa_bits / 8) as usize);
        for c in conds {
            out.extend_from_slice(row.get(c)?);
        }
        Some(out)
    }

    /// Renders the table in the layout of the paper's Table I (for the
    /// privacy-audit example): one row per nym, one column per condition,
    /// `—` for absent records. Secrets are shown truncated.
    pub fn render(&self, conditions: &[AttributeCondition]) -> String {
        let mut out = String::from("nym");
        for c in conditions {
            out.push_str(&format!(" | {c}"));
        }
        out.push('\n');
        for (nym, row) in &self.rows {
            out.push_str(nym.as_str());
            for c in conditions {
                match row.get(c) {
                    Some(css) => {
                        let hex: String = css.iter().take(4).map(|b| format!("{b:02x}")).collect();
                        out.push_str(&format!(" | {hex}…"));
                    }
                    None => out.push_str(" | —"),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbcd_policy::ComparisonOp;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(500)
    }

    fn cond(name: &str, threshold: u64) -> AttributeCondition {
        AttributeCondition::new(name, ComparisonOp::Ge, threshold)
    }

    #[test]
    fn issue_and_lookup() {
        let mut t = CssTable::new(128);
        let mut r = rng();
        let nym = Nym::new("pn-0012");
        let c = cond("level", 59);
        let css = t.issue(&nym, &c, &mut r);
        assert_eq!(css.len(), 16);
        assert_eq!(t.get(&nym, &c), Some(&css));
        assert_eq!(t.get(&Nym::new("pn-9999"), &c), None);
        assert_eq!(t.subscriber_count(), 1);
        assert_eq!(t.record_count(), 1);
    }

    #[test]
    fn reissue_overrides() {
        // Credential update: "An old CSS is overridden by the new CSS."
        let mut t = CssTable::new(128);
        let mut r = rng();
        let nym = Nym::new("pn-1492");
        let c = cond("YoS", 5);
        let first = t.issue(&nym, &c, &mut r);
        let second = t.issue(&nym, &c, &mut r);
        assert_ne!(first, second);
        assert_eq!(t.get(&nym, &c), Some(&second));
        assert_eq!(t.record_count(), 1);
    }

    #[test]
    fn revocations() {
        let mut t = CssTable::new(64);
        let mut r = rng();
        let nym = Nym::new("pn-0829");
        let c1 = cond("level", 59);
        let c2 = cond("YoS", 5);
        t.issue(&nym, &c1, &mut r);
        t.issue(&nym, &c2, &mut r);
        assert!(t.remove_credential(&nym, &c1));
        assert!(!t.remove_credential(&nym, &c1));
        assert_eq!(t.get(&nym, &c1), None);
        assert!(t.get(&nym, &c2).is_some());
        assert!(t.remove_subscriber(&nym));
        assert!(!t.remove_subscriber(&nym));
        assert_eq!(t.subscriber_count(), 0);
    }

    #[test]
    fn empty_row_garbage_collected() {
        let mut t = CssTable::new(64);
        let mut r = rng();
        let nym = Nym::new("pn-1");
        let c = cond("a", 1);
        t.issue(&nym, &c, &mut r);
        t.remove_credential(&nym, &c);
        assert_eq!(t.subscriber_count(), 0);
    }

    #[test]
    fn nyms_with_all_conjunction() {
        let mut t = CssTable::new(64);
        let mut r = rng();
        let (c1, c2) = (cond("role", 1), cond("level", 59));
        let alice = Nym::new("alice");
        let bob = Nym::new("bob");
        t.issue(&alice, &c1, &mut r);
        t.issue(&alice, &c2, &mut r);
        t.issue(&bob, &c1, &mut r);
        assert_eq!(
            t.nyms_with_all(std::slice::from_ref(&c1)),
            vec![&alice, &bob]
        );
        assert_eq!(t.nyms_with_all(&[c1.clone(), c2.clone()]), vec![&alice]);
        assert_eq!(t.nyms_with_all(std::slice::from_ref(&c2)), vec![&alice]);
        assert!(t.nyms_with_all(&[cond("x", 0)]).is_empty());
    }

    #[test]
    fn css_concat_ordering_and_missing() {
        let mut t = CssTable::new(64);
        let mut r = rng();
        let (c1, c2) = (cond("a", 1), cond("b", 2));
        let nym = Nym::new("n");
        let s1 = t.issue(&nym, &c1, &mut r);
        let s2 = t.issue(&nym, &c2, &mut r);
        let concat = t.css_concat(&nym, &[c1.clone(), c2.clone()]).unwrap();
        assert_eq!(concat, [s1.clone(), s2.clone()].concat());
        // Order matters.
        let rev = t.css_concat(&nym, &[c2.clone(), c1.clone()]).unwrap();
        assert_eq!(rev, [s2, s1].concat());
        assert_ne!(concat, rev);
        // Missing condition yields None.
        assert!(t.css_concat(&nym, &[c1.clone(), cond("z", 9)]).is_none());
    }

    #[test]
    fn render_matches_table1_shape() {
        let mut t = CssTable::new(64);
        let mut r = rng();
        let c1 = cond("level", 59);
        let c2 = AttributeCondition::new("YoS", ComparisonOp::Lt, 5);
        t.issue(&Nym::new("pn-0829"), &c1, &mut r);
        t.issue(&Nym::new("pn-0829"), &c2, &mut r);
        t.issue(&Nym::new("pn-0012"), &c2, &mut r);
        let rendered = t.render(&[c1, c2]);
        assert!(rendered.contains("pn-0829"));
        assert!(rendered.contains("—"), "missing records render as dashes");
        assert!(rendered.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn kappa_must_be_byte_aligned() {
        CssTable::new(13);
    }
}
