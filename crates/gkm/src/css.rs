//! The publisher's conditional-subscription-secret table `T` (paper §V-B,
//! Table I).
//!
//! `T` maps `(pseudonym, attribute condition) → CSS`, where each CSS is a
//! κ-bit random value delivered obliviously during registration. The table
//! is the publisher's only per-subscriber state; every group-key operation
//! reads it and every subscription event (join, credential update,
//! credential revocation, subscription revocation) mutates it.

use pbcd_policy::AttributeCondition;
use rand::RngCore;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::RwLock;

/// A subscriber pseudonym (`nym`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Nym(pub String);

impl Nym {
    /// Convenience constructor.
    pub fn new(s: &str) -> Self {
        Self(s.to_string())
    }

    /// The pseudonym string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl core::fmt::Display for Nym {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A conditional subscription secret: κ/8 random bytes.
pub type Css = Vec<u8>;

/// The CSS table `T`.
#[derive(Debug, Clone, Default)]
pub struct CssTable {
    kappa_bits: u32,
    rows: BTreeMap<Nym, BTreeMap<AttributeCondition, Css>>,
}

impl CssTable {
    /// Creates an empty table issuing κ-bit secrets (κ must be a positive
    /// multiple of 8).
    pub fn new(kappa_bits: u32) -> Self {
        assert!(
            kappa_bits > 0 && kappa_bits % 8 == 0,
            "κ must be a multiple of 8"
        );
        Self {
            kappa_bits,
            rows: BTreeMap::new(),
        }
    }

    /// The CSS bit width κ.
    pub fn kappa_bits(&self) -> u32 {
        self.kappa_bits
    }

    /// Issues (or re-issues, overriding — the paper's credential-update
    /// case) a CSS for `(nym, cond)` and returns a copy of it.
    pub fn issue<R: RngCore + ?Sized>(
        &mut self,
        nym: &Nym,
        cond: &AttributeCondition,
        rng: &mut R,
    ) -> Css {
        let mut css = vec![0u8; (self.kappa_bits / 8) as usize];
        rng.fill_bytes(&mut css);
        self.rows
            .entry(nym.clone())
            .or_default()
            .insert(cond.clone(), css.clone());
        css
    }

    /// Looks up the CSS for `(nym, cond)`.
    pub fn get(&self, nym: &Nym, cond: &AttributeCondition) -> Option<&Css> {
        self.rows.get(nym)?.get(cond)
    }

    /// Credential revocation: removes one `(nym, cond)` record.
    pub fn remove_credential(&mut self, nym: &Nym, cond: &AttributeCondition) -> bool {
        let Some(row) = self.rows.get_mut(nym) else {
            return false;
        };
        let removed = row.remove(cond).is_some();
        if row.is_empty() {
            self.rows.remove(nym);
        }
        removed
    }

    /// Subscription revocation: removes the whole `nym` row.
    pub fn remove_subscriber(&mut self, nym: &Nym) -> bool {
        self.rows.remove(nym).is_some()
    }

    /// All pseudonyms with at least one record.
    pub fn nyms(&self) -> impl Iterator<Item = &Nym> {
        self.rows.keys()
    }

    /// Number of subscribers with records.
    pub fn subscriber_count(&self) -> usize {
        self.rows.len()
    }

    /// Total number of CSS records.
    pub fn record_count(&self) -> usize {
        self.rows.values().map(BTreeMap::len).sum()
    }

    /// The paper's `U_k` query: pseudonyms whose records cover *all* of
    /// `conds` (the SQL `SELECT * FROM T WHERE cond <> NULL` example).
    pub fn nyms_with_all(&self, conds: &[AttributeCondition]) -> Vec<&Nym> {
        self.rows
            .iter()
            .filter(|(_, row)| conds.iter().all(|c| row.contains_key(c)))
            .map(|(nym, _)| nym)
            .collect()
    }

    /// Concatenation `r_{i,1} ‖ … ‖ r_{i,m_k}` of a subscriber's CSSs for
    /// the given condition list, in order — the hash input of the BGKM
    /// matrix row. `None` if any record is missing.
    pub fn css_concat(&self, nym: &Nym, conds: &[AttributeCondition]) -> Option<Vec<u8>> {
        let row = self.rows.get(nym)?;
        let mut out = Vec::with_capacity(conds.len() * (self.kappa_bits / 8) as usize);
        for c in conds {
            out.extend_from_slice(row.get(c)?);
        }
        Some(out)
    }

    /// Renders the table in the layout of the paper's Table I (for the
    /// privacy-audit example): one row per nym, one column per condition,
    /// `—` for absent records. Secrets are shown truncated.
    pub fn render(&self, conditions: &[AttributeCondition]) -> String {
        let mut out = String::from("nym");
        for c in conditions {
            out.push_str(&format!(" | {c}"));
        }
        out.push('\n');
        for (nym, row) in &self.rows {
            out.push_str(nym.as_str());
            for c in conditions {
                match row.get(c) {
                    Some(css) => {
                        let hex: String = css.iter().take(4).map(|b| format!("{b:02x}")).collect();
                        out.push_str(&format!(" | {hex}…"));
                    }
                    None => out.push_str(" | —"),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Default shard count for [`ShardedCssTable`] — enough to keep 8–16
/// registration threads from contending, small enough that whole-table
/// scans (broadcast) stay cheap.
pub const DEFAULT_CSS_SHARDS: usize = 16;

/// A concurrency-friendly CSS table: the same `(nym, cond) → CSS` map as
/// [`CssTable`], split into N independently locked shards keyed by a hash
/// of the pseudonym. Every per-subscriber operation (issue, lookup,
/// revocation) touches exactly one shard, so concurrent registrations for
/// different subscribers proceed in parallel; whole-table queries
/// (`nyms_with_all`, the broadcast-time `U_k` scan) walk the shards one at
/// a time and re-sort, preserving [`CssTable`]'s deterministic pseudonym
/// order.
///
/// All methods take `&self` — the table is designed to sit behind an
/// `Arc` shared between a publisher (broadcast-time reads, revocations)
/// and any number of registration handlers (issues).
#[derive(Debug)]
pub struct ShardedCssTable {
    kappa_bits: u32,
    shards: Box<[RwLock<CssTable>]>,
}

impl ShardedCssTable {
    /// Creates an empty table issuing κ-bit secrets over
    /// [`DEFAULT_CSS_SHARDS`] shards (κ must be a positive multiple of 8).
    pub fn new(kappa_bits: u32) -> Self {
        Self::with_shards(kappa_bits, DEFAULT_CSS_SHARDS)
    }

    /// Creates an empty table with an explicit shard count (≥ 1).
    pub fn with_shards(kappa_bits: u32, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        Self {
            kappa_bits,
            shards: (0..shards)
                .map(|_| RwLock::new(CssTable::new(kappa_bits)))
                .collect(),
        }
    }

    fn shard_for(&self, nym: &Nym) -> &RwLock<CssTable> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        nym.0.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// The CSS bit width κ.
    pub fn kappa_bits(&self) -> u32 {
        self.kappa_bits
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Issues (or re-issues, overriding) a CSS for `(nym, cond)`, locking
    /// only the pseudonym's shard.
    pub fn issue<R: RngCore + ?Sized>(
        &self,
        nym: &Nym,
        cond: &AttributeCondition,
        rng: &mut R,
    ) -> Css {
        // Draw the randomness *outside* the lock so a slow RNG never
        // extends the critical section.
        let mut css = vec![0u8; (self.kappa_bits / 8) as usize];
        rng.fill_bytes(&mut css);
        let mut shard = self
            .shard_for(nym)
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        shard
            .rows
            .entry(nym.clone())
            .or_default()
            .insert(cond.clone(), css.clone());
        css
    }

    /// Looks up the CSS for `(nym, cond)` (a copy — the record stays
    /// behind its shard lock).
    pub fn get(&self, nym: &Nym, cond: &AttributeCondition) -> Option<Css> {
        self.shard_for(nym)
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(nym, cond)
            .cloned()
    }

    /// Credential revocation: removes one `(nym, cond)` record.
    pub fn remove_credential(&self, nym: &Nym, cond: &AttributeCondition) -> bool {
        self.shard_for(nym)
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove_credential(nym, cond)
    }

    /// Subscription revocation: removes the whole `nym` row.
    pub fn remove_subscriber(&self, nym: &Nym) -> bool {
        self.shard_for(nym)
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove_subscriber(nym)
    }

    /// Number of subscribers with records.
    pub fn subscriber_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .subscriber_count()
            })
            .sum()
    }

    /// Total number of CSS records.
    pub fn record_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .record_count()
            })
            .sum()
    }

    /// The paper's `U_k` query across all shards, re-sorted so the result
    /// order matches the unsharded [`CssTable::nyms_with_all`].
    pub fn nyms_with_all(&self, conds: &[AttributeCondition]) -> Vec<Nym> {
        let mut out: Vec<Nym> = Vec::new();
        for shard in self.shards.iter() {
            let guard = shard
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            out.extend(guard.nyms_with_all(conds).into_iter().cloned());
        }
        out.sort();
        out
    }

    /// Concatenation of a subscriber's CSSs for `conds`, in order — single
    /// shard. `None` if any record is missing.
    pub fn css_concat(&self, nym: &Nym, conds: &[AttributeCondition]) -> Option<Vec<u8>> {
        self.shard_for(nym)
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .css_concat(nym, conds)
    }

    /// A merged point-in-time copy of the whole table, for audits, the
    /// Table-I rendering, and every [`CssTable`] read API. Locks the
    /// shards one at a time; concurrent issues may or may not appear.
    pub fn snapshot(&self) -> CssTable {
        let mut merged = CssTable::new(self.kappa_bits);
        for shard in self.shards.iter() {
            let guard = shard
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (nym, row) in &guard.rows {
                merged.rows.insert(nym.clone(), row.clone());
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbcd_policy::ComparisonOp;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(500)
    }

    fn cond(name: &str, threshold: u64) -> AttributeCondition {
        AttributeCondition::new(name, ComparisonOp::Ge, threshold)
    }

    #[test]
    fn issue_and_lookup() {
        let mut t = CssTable::new(128);
        let mut r = rng();
        let nym = Nym::new("pn-0012");
        let c = cond("level", 59);
        let css = t.issue(&nym, &c, &mut r);
        assert_eq!(css.len(), 16);
        assert_eq!(t.get(&nym, &c), Some(&css));
        assert_eq!(t.get(&Nym::new("pn-9999"), &c), None);
        assert_eq!(t.subscriber_count(), 1);
        assert_eq!(t.record_count(), 1);
    }

    #[test]
    fn reissue_overrides() {
        // Credential update: "An old CSS is overridden by the new CSS."
        let mut t = CssTable::new(128);
        let mut r = rng();
        let nym = Nym::new("pn-1492");
        let c = cond("YoS", 5);
        let first = t.issue(&nym, &c, &mut r);
        let second = t.issue(&nym, &c, &mut r);
        assert_ne!(first, second);
        assert_eq!(t.get(&nym, &c), Some(&second));
        assert_eq!(t.record_count(), 1);
    }

    #[test]
    fn revocations() {
        let mut t = CssTable::new(64);
        let mut r = rng();
        let nym = Nym::new("pn-0829");
        let c1 = cond("level", 59);
        let c2 = cond("YoS", 5);
        t.issue(&nym, &c1, &mut r);
        t.issue(&nym, &c2, &mut r);
        assert!(t.remove_credential(&nym, &c1));
        assert!(!t.remove_credential(&nym, &c1));
        assert_eq!(t.get(&nym, &c1), None);
        assert!(t.get(&nym, &c2).is_some());
        assert!(t.remove_subscriber(&nym));
        assert!(!t.remove_subscriber(&nym));
        assert_eq!(t.subscriber_count(), 0);
    }

    #[test]
    fn empty_row_garbage_collected() {
        let mut t = CssTable::new(64);
        let mut r = rng();
        let nym = Nym::new("pn-1");
        let c = cond("a", 1);
        t.issue(&nym, &c, &mut r);
        t.remove_credential(&nym, &c);
        assert_eq!(t.subscriber_count(), 0);
    }

    #[test]
    fn nyms_with_all_conjunction() {
        let mut t = CssTable::new(64);
        let mut r = rng();
        let (c1, c2) = (cond("role", 1), cond("level", 59));
        let alice = Nym::new("alice");
        let bob = Nym::new("bob");
        t.issue(&alice, &c1, &mut r);
        t.issue(&alice, &c2, &mut r);
        t.issue(&bob, &c1, &mut r);
        assert_eq!(
            t.nyms_with_all(std::slice::from_ref(&c1)),
            vec![&alice, &bob]
        );
        assert_eq!(t.nyms_with_all(&[c1.clone(), c2.clone()]), vec![&alice]);
        assert_eq!(t.nyms_with_all(std::slice::from_ref(&c2)), vec![&alice]);
        assert!(t.nyms_with_all(&[cond("x", 0)]).is_empty());
    }

    #[test]
    fn css_concat_ordering_and_missing() {
        let mut t = CssTable::new(64);
        let mut r = rng();
        let (c1, c2) = (cond("a", 1), cond("b", 2));
        let nym = Nym::new("n");
        let s1 = t.issue(&nym, &c1, &mut r);
        let s2 = t.issue(&nym, &c2, &mut r);
        let concat = t.css_concat(&nym, &[c1.clone(), c2.clone()]).unwrap();
        assert_eq!(concat, [s1.clone(), s2.clone()].concat());
        // Order matters.
        let rev = t.css_concat(&nym, &[c2.clone(), c1.clone()]).unwrap();
        assert_eq!(rev, [s2, s1].concat());
        assert_ne!(concat, rev);
        // Missing condition yields None.
        assert!(t.css_concat(&nym, &[c1.clone(), cond("z", 9)]).is_none());
    }

    #[test]
    fn render_matches_table1_shape() {
        let mut t = CssTable::new(64);
        let mut r = rng();
        let c1 = cond("level", 59);
        let c2 = AttributeCondition::new("YoS", ComparisonOp::Lt, 5);
        t.issue(&Nym::new("pn-0829"), &c1, &mut r);
        t.issue(&Nym::new("pn-0829"), &c2, &mut r);
        t.issue(&Nym::new("pn-0012"), &c2, &mut r);
        let rendered = t.render(&[c1, c2]);
        assert!(rendered.contains("pn-0829"));
        assert!(rendered.contains("—"), "missing records render as dashes");
        assert!(rendered.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn kappa_must_be_byte_aligned() {
        CssTable::new(13);
    }

    #[test]
    fn sharded_table_matches_unsharded_semantics() {
        let sharded = ShardedCssTable::with_shards(64, 4);
        let mut flat = CssTable::new(64);
        let mut r1 = rng();
        let mut r2 = rng();
        let conds = [cond("a", 1), cond("b", 2)];
        for i in 0..32 {
            let nym = Nym::new(&format!("pn-{i:04}"));
            for c in &conds {
                // Same RNG stream → identical CSS bytes in both tables.
                let s = sharded.issue(&nym, c, &mut r1);
                let f = flat.issue(&nym, c, &mut r2);
                assert_eq!(s, f);
            }
        }
        assert_eq!(sharded.record_count(), flat.record_count());
        assert_eq!(sharded.subscriber_count(), flat.subscriber_count());
        // U_k order is the unsharded (sorted) order.
        let sharded_nyms = sharded.nyms_with_all(&conds);
        let flat_nyms: Vec<Nym> = flat.nyms_with_all(&conds).into_iter().cloned().collect();
        assert_eq!(sharded_nyms, flat_nyms);
        let probe = Nym::new("pn-0007");
        assert_eq!(
            sharded.css_concat(&probe, &conds),
            flat.css_concat(&probe, &conds)
        );
        assert_eq!(
            sharded.get(&probe, &conds[0]).as_ref(),
            flat.get(&probe, &conds[0])
        );
        // Snapshot equals the flat table exactly.
        let snap = sharded.snapshot();
        assert_eq!(snap.record_count(), flat.record_count());
        assert_eq!(
            snap.css_concat(&probe, &conds),
            flat.css_concat(&probe, &conds)
        );

        // Revocations bite in one shard only.
        assert!(sharded.remove_credential(&probe, &conds[0]));
        assert!(!sharded.remove_credential(&probe, &conds[0]));
        assert!(sharded.remove_subscriber(&probe));
        assert_eq!(sharded.subscriber_count(), 31);
    }

    #[test]
    fn sharded_concurrent_issues_land_in_consistent_state() {
        let table = std::sync::Arc::new(ShardedCssTable::new(64));
        let c = cond("level", 3);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let table = std::sync::Arc::clone(&table);
                let c = c.clone();
                scope.spawn(move || {
                    let mut r = rand::rngs::StdRng::seed_from_u64(t);
                    for i in 0..16 {
                        table.issue(&Nym::new(&format!("pn-{t}-{i}")), &c, &mut r);
                    }
                });
            }
        });
        assert_eq!(table.record_count(), 8 * 16);
        assert_eq!(table.nyms_with_all(std::slice::from_ref(&c)).len(), 8 * 16);
    }
}
