//! ACV-BGKM — the paper's core contribution (§V-C): broadcast group key
//! management with **access control vectors**.
//!
//! For one policy configuration `Pc = {acp₁ … acp_α}` the publisher:
//!
//! 1. collects, for every `acp_k` and every subscriber `nym` whose CSS
//!    records cover all of `acp_k`'s conditions, the concatenation
//!    `r_{i,1}‖…‖r_{i,m_k}` (an [`AccessRow`]),
//! 2. picks `N ≥ Σ_k #U_k` and `N` random τ-bit nonces `z₁…z_N` with
//!    `τ·N > 160`,
//! 3. forms the `n×(N+1)` matrix `A` with rows `[1, a_{i,1}, …, a_{i,N}]`,
//!    `a_{i,j} = H(r_{i,1}‖…‖r_{i,m_k}‖z_j)` reduced into `F_q`,
//! 4. solves `A·Y = 0` for a random null-space vector `Y` (the ACV),
//! 5. publishes `X = (K,0,…,0)ᵀ + Y` and `z₁…z_N` next to the content
//!    encrypted under the random key `K`.
//!
//! A qualified subscriber rebuilds its matrix row `ν = (1, a₁, …, a_N)`
//! (a *key extraction vector*) from its CSSs and the public nonces and
//! recovers `K = ν·X`. Rekeying is just re-running the procedure — no
//! message to any subscriber.

use pbcd_crypto::sha256;
use pbcd_math::{Fp, FpCtx, Matrix, Uint, U128};
use rand::RngCore;
use std::sync::Arc;

/// One matrix row's secret material: a subscriber×policy pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRow {
    /// The subscriber pseudonym (unused by ACV-BGKM itself; baselines that
    /// address subscribers individually need it).
    pub nym: String,
    /// `r_{i,1} ‖ … ‖ r_{i,m_k}` — the CSSs for the policy's conditions.
    pub css_concat: Vec<u8>,
}

/// The broadcast public values for one policy configuration: `X` and the
/// nonces `z₁…z_N`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcvPublicInfo {
    /// `X = (K,0,…,0)ᵀ + Y`, canonical field elements (length `N + 1`).
    pub x: Vec<U128>,
    /// The nonces `z₁…z_N`, each `tau_bytes` long.
    pub zs: Vec<Vec<u8>>,
}

/// A subscriber-side cache of key-extraction vectors, keyed by
/// `H(css ‖ z₁ ‖ … ‖ z_N)` — see [`AcvBgkm::derive_key_cached`].
#[derive(Default)]
pub struct KevCache {
    entries: std::collections::HashMap<[u8; 32], Vec<Fp<2>>>,
}

impl KevCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached vectors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The ACV-BGKM scheme, parameterized by the GKM field `F_q` and the nonce
/// width τ.
#[derive(Clone)]
pub struct AcvBgkm {
    field: Arc<FpCtx<2>>,
    tau_bytes: usize,
    extra_slots: usize,
}

impl Default for AcvBgkm {
    fn default() -> Self {
        Self::new(FpCtx::new(pbcd_math::gkm_q80()), 2, 0)
    }
}

impl AcvBgkm {
    /// Creates the scheme over `field` with `tau_bytes`-byte nonces and
    /// `extra_slots` spare columns (`N = #rows + extra_slots`).
    ///
    /// The effective τ per rekey is raised automatically when `τ·N ≤ 160`
    /// (the paper's distinct-session-sequence requirement).
    pub fn new(field: Arc<FpCtx<2>>, tau_bytes: usize, extra_slots: usize) -> Self {
        assert!((1..=64).contains(&tau_bytes), "τ out of range");
        Self {
            field,
            tau_bytes,
            extra_slots,
        }
    }

    /// The GKM field.
    pub fn field(&self) -> &Arc<FpCtx<2>> {
        &self.field
    }

    /// Canonical byte length of field elements (⌈bits(q)/8⌉) — also the
    /// length of derived keys.
    pub fn key_len(&self) -> usize {
        (self.field.modulus_bits() as usize).div_ceil(8)
    }

    /// Effective nonce width for a given `N`.
    fn effective_tau(&self, n: usize) -> usize {
        let min_total_bits = 161usize;
        let needed = min_total_bits.div_ceil(8 * n.max(1));
        self.tau_bytes.max(needed)
    }

    /// Publisher: generates a fresh key `K` and the public info for the
    /// given access rows (one rekey of one policy configuration).
    pub fn rekey<R: RngCore + ?Sized>(
        &self,
        rows: &[AccessRow],
        rng: &mut R,
    ) -> (Vec<u8>, AcvPublicInfo) {
        let mut out = self.rekey_batch(rows, 1, rng);
        out.pop().expect("batch of one")
    }

    /// Publisher: the paper's §VIII-D batching advantage — one matrix and
    /// one null-space computation amortized over `count` documents that
    /// share a policy configuration (and hence the same `z` values), each
    /// getting an independent key and an independent ACV.
    pub fn rekey_batch<R: RngCore + ?Sized>(
        &self,
        rows: &[AccessRow],
        count: usize,
        rng: &mut R,
    ) -> Vec<(Vec<u8>, AcvPublicInfo)> {
        assert!(count >= 1, "need at least one key");
        let zs = self.fresh_nonces(rows.len(), rng);
        let a = self.build_matrix(rows, &zs);
        (0..count)
            .map(|_| {
                let key = self.field.random_nonzero(rng);
                let info = self.acv_for(&a, rows.is_empty(), &key, &zs, rng);
                (self.encode_key(&key), info)
            })
            .collect()
    }

    /// Publisher: rekeys with a caller-chosen key — the sharded variant
    /// (§VIII-C) uses this to put one uniform key behind several ACVs.
    pub fn rekey_with_key<R: RngCore + ?Sized>(
        &self,
        rows: &[AccessRow],
        key: &Fp<2>,
        rng: &mut R,
    ) -> AcvPublicInfo {
        assert!(!key.is_zero(), "group key must be nonzero");
        let zs = self.fresh_nonces(rows.len(), rng);
        let a = self.build_matrix(rows, &zs);
        self.acv_for(&a, rows.is_empty(), key, &zs, rng)
    }

    /// Publisher: rekeys *several policy configurations* sharing one nonce
    /// set, caching the hash row `(a_{i,1}, …, a_{i,N})` per distinct CSS
    /// concatenation — the paper's §VIII-A optimization ("eliminating
    /// redundant calculations at Pub by taking advantage of dominance
    /// relationships"): a subscriber×policy pair appearing in several
    /// configurations (e.g. the senior nurse of Example 4, present in four)
    /// is hashed once instead of once per configuration.
    ///
    /// Returns one independent `(key, public info)` per configuration.
    pub fn rekey_configs<R: RngCore + ?Sized>(
        &self,
        configs: &[Vec<AccessRow>],
        rng: &mut R,
    ) -> Vec<(Vec<u8>, AcvPublicInfo)> {
        use std::collections::HashMap;
        let widest = configs.iter().map(Vec::len).max().unwrap_or(0);
        let zs = self.fresh_nonces(widest, rng);
        // Cache: css_concat → Montgomery-form hash row.
        let mut cache: HashMap<Vec<u8>, Vec<Uint<2>>> = HashMap::new();
        configs
            .iter()
            .map(|rows| {
                let mut a = Matrix::zero(&self.field, rows.len(), zs.len() + 1);
                let one = self.field.one();
                for (i, row) in rows.iter().enumerate() {
                    a.set_mont_raw(i, 0, *one.mont_raw());
                    let hashes = cache.entry(row.css_concat.clone()).or_insert_with(|| {
                        zs.iter()
                            .map(|z| *self.hash_entry(&row.css_concat, z).mont_raw())
                            .collect()
                    });
                    for (j, h) in hashes.iter().enumerate() {
                        a.set_mont_raw(i, j + 1, *h);
                    }
                }
                let key = self.field.random_nonzero(rng);
                let info = self.acv_for(&a, rows.is_empty(), &key, &zs, rng);
                (self.encode_key(&key), info)
            })
            .collect()
    }

    /// `N ≥ Σ_k #U_k` nonces; at least one so the encoding stays
    /// well-formed even for empty configurations.
    fn fresh_nonces<R: RngCore + ?Sized>(&self, rows: usize, rng: &mut R) -> Vec<Vec<u8>> {
        let n = (rows + self.extra_slots).max(1);
        let tau = self.effective_tau(n);
        (0..n)
            .map(|_| {
                let mut z = vec![0u8; tau];
                rng.fill_bytes(&mut z);
                z
            })
            .collect()
    }

    /// Matrix `A`: one row `[1, a_{i,1}, …, a_{i,N}]` per access row.
    fn build_matrix(&self, rows: &[AccessRow], zs: &[Vec<u8>]) -> Matrix<2> {
        let mut a = Matrix::zero(&self.field, rows.len(), zs.len() + 1);
        let one = self.field.one();
        for (i, row) in rows.iter().enumerate() {
            a.set_mont_raw(i, 0, *one.mont_raw());
            for (j, z) in zs.iter().enumerate() {
                let el = self.hash_entry(&row.css_concat, z);
                a.set_mont_raw(i, j + 1, *el.mont_raw());
            }
        }
        a
    }

    /// Samples an ACV for `key`; footnote 11: resample if the tail of `X`
    /// would be all zero (the key would leak to everyone).
    fn acv_for<R: RngCore + ?Sized>(
        &self,
        a: &Matrix<2>,
        rows_empty: bool,
        key: &Fp<2>,
        zs: &[Vec<u8>],
        rng: &mut R,
    ) -> AcvPublicInfo {
        loop {
            let mut x: Vec<Fp<2>> = a.random_null_vector(rng);
            x[0] = &x[0] + key;
            if rows_empty || x[1..].iter().any(|e| !e.is_zero()) {
                return AcvPublicInfo {
                    x: x.iter().map(Fp::to_uint).collect(),
                    zs: zs.to_vec(),
                };
            }
        }
    }

    /// Subscriber: derives the key from the public info and its CSS
    /// concatenation. Always returns a candidate of [`Self::key_len`]
    /// bytes; the candidate equals `K` iff the CSSs match an access row
    /// (the scheme itself cannot signal failure — the authenticated
    /// decryption layer above does).
    pub fn derive_key(&self, info: &AcvPublicInfo, css_concat: &[u8]) -> Vec<u8> {
        assert_eq!(info.x.len(), info.zs.len() + 1, "malformed public info");
        // K = ν · X with ν = (1, a₁, …, a_N).
        let mont = self.field.mont();
        let mut acc = *self.field.from_uint(&info.x[0]).mont_raw();
        for (z, xj) in info.zs.iter().zip(&info.x[1..]) {
            let a = self.hash_entry(css_concat, z);
            let xj = self.field.from_uint(xj);
            acc = mont.add(&acc, &mont.mont_mul(a.mont_raw(), xj.mont_raw()));
        }
        self.encode_key(&self.field.from_mont_raw(acc))
    }

    /// The subscriber's key-extraction vector `ν = (1, a₁, …, a_N)` —
    /// exposed so tests and benches can check `ν·Y = 0` directly.
    pub fn extraction_vector(&self, info: &AcvPublicInfo, css_concat: &[u8]) -> Vec<Fp<2>> {
        let mut v = Vec::with_capacity(info.zs.len() + 1);
        v.push(self.field.one());
        for z in &info.zs {
            v.push(self.hash_entry(css_concat, z));
        }
        v
    }

    /// Key derivation with a subscriber-side KEV cache (paper §VIII-D:
    /// "once a Sub receives all zᵢ's … the Sub can compute the hash values
    /// and cache the resultant vector for future use to retrieve documents
    /// associated with the same policy"). Documents produced by
    /// [`Self::rekey_batch`] share nonces, so every document after the
    /// first costs one inner product instead of `N` hashes.
    pub fn derive_key_cached(
        &self,
        info: &AcvPublicInfo,
        css_concat: &[u8],
        cache: &mut KevCache,
    ) -> Vec<u8> {
        assert_eq!(info.x.len(), info.zs.len() + 1, "malformed public info");
        let tag = {
            let mut h = pbcd_crypto::Sha256::new();
            h.update(css_concat);
            for z in &info.zs {
                h.update(z);
            }
            h.finalize()
        };
        let nu = cache
            .entries
            .entry(tag)
            .or_insert_with(|| self.extraction_vector(info, css_concat));
        let mont = self.field.mont();
        let mut acc = Uint::ZERO;
        for (a, xj) in nu.iter().zip(&info.x) {
            let xj = self.field.from_uint(xj);
            acc = mont.add(&acc, &mont.mont_mul(a.mont_raw(), xj.mont_raw()));
        }
        self.encode_key(&self.field.from_mont_raw(acc))
    }

    fn hash_entry(&self, css_concat: &[u8], z: &[u8]) -> Fp<2> {
        let mut input = Vec::with_capacity(css_concat.len() + z.len());
        input.extend_from_slice(css_concat);
        input.extend_from_slice(z);
        self.field.from_be_bytes_reduced(&sha256(&input))
    }

    fn encode_key(&self, k: &Fp<2>) -> Vec<u8> {
        let bytes = k.to_uint().to_be_bytes();
        bytes[bytes.len() - self.key_len()..].to_vec()
    }
}

impl AcvPublicInfo {
    /// Wire encoding: `fq_len u8 ‖ x_count u32 ‖ x… ‖ z_count u32 ‖
    /// tau u8 ‖ z…` (big-endian, fixed-width fields).
    pub fn encode(&self) -> Vec<u8> {
        let fq_len = 16usize; // canonical U128 width
        let tau = self.zs.first().map_or(0, Vec::len);
        debug_assert!(self.zs.iter().all(|z| z.len() == tau));
        let mut out = Vec::with_capacity(2 + 8 + self.x.len() * fq_len + self.zs.len() * tau);
        out.push(fq_len as u8);
        out.extend_from_slice(&(self.x.len() as u32).to_be_bytes());
        for x in &self.x {
            out.extend_from_slice(&x.to_be_bytes());
        }
        out.extend_from_slice(&(self.zs.len() as u32).to_be_bytes());
        out.push(tau as u8);
        for z in &self.zs {
            out.extend_from_slice(z);
        }
        out
    }

    /// Parses the wire encoding.
    pub fn decode(data: &[u8]) -> Option<Self> {
        let fq_len = *data.first()? as usize;
        if fq_len != 16 {
            return None;
        }
        let mut pos = 1;
        let x_count = u32::from_be_bytes(data.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        if x_count > data.len() / fq_len + 1 {
            return None;
        }
        let mut x = Vec::with_capacity(x_count);
        for _ in 0..x_count {
            x.push(U128::from_be_bytes(data.get(pos..pos + fq_len)?)?);
            pos += fq_len;
        }
        let z_count = u32::from_be_bytes(data.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        let tau = *data.get(pos)? as usize;
        pos += 1;
        if z_count != x_count.checked_sub(1)? || tau == 0 {
            return None;
        }
        let mut zs = Vec::with_capacity(z_count);
        for _ in 0..z_count {
            zs.push(data.get(pos..pos + tau)?.to_vec());
            pos += tau;
        }
        if pos != data.len() {
            return None;
        }
        Some(Self { x, zs })
    }

    /// Size of the broadcast key material in bytes, counting field elements
    /// at their compressed width (⌈bits(q)/8⌉, matching the paper's
    /// compressed-ACV measurements in Figure 5) plus the nonces.
    pub fn size_bytes_compressed(&self, fq_bits: u32) -> usize {
        let per_elem = (fq_bits as usize).div_ceil(8);
        let tau = self.zs.first().map_or(0, Vec::len);
        self.x.len() * per_elem + self.zs.len() * tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbcd_math::dot;
    use rand::{Rng, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(600)
    }

    fn scheme() -> AcvBgkm {
        AcvBgkm::default()
    }

    fn random_rows<R: Rng>(r: &mut R, count: usize, css_len: usize) -> Vec<AccessRow> {
        (0..count)
            .map(|i| {
                let mut css = vec![0u8; css_len];
                r.fill_bytes(&mut css);
                AccessRow {
                    nym: format!("pn-{i:04}"),
                    css_concat: css,
                }
            })
            .collect()
    }

    #[test]
    fn soundness_every_row_derives_the_key() {
        let s = scheme();
        let mut r = rng();
        for n in [1usize, 2, 5, 20] {
            let rows = random_rows(&mut r, n, 16);
            let (key, info) = s.rekey(&rows, &mut r);
            assert_eq!(key.len(), s.key_len());
            for row in &rows {
                assert_eq!(s.derive_key(&info, &row.css_concat), key, "n={n}");
            }
        }
    }

    #[test]
    fn outsiders_do_not_derive_the_key() {
        let s = scheme();
        let mut r = rng();
        let rows = random_rows(&mut r, 8, 16);
        let (key, info) = s.rekey(&rows, &mut r);
        for _ in 0..20 {
            let mut outsider = vec![0u8; 16];
            r.fill_bytes(&mut outsider);
            assert_ne!(s.derive_key(&info, &outsider), key);
        }
    }

    #[test]
    fn forward_secrecy_revoked_row_fails_after_rekey() {
        let s = scheme();
        let mut r = rng();
        let mut rows = random_rows(&mut r, 5, 16);
        let revoked = rows.pop().expect("five rows");
        // Rekey without the revoked row.
        let (new_key, new_info) = s.rekey(&rows, &mut r);
        assert_ne!(s.derive_key(&new_info, &revoked.css_concat), new_key);
        // Remaining members still derive.
        for row in &rows {
            assert_eq!(s.derive_key(&new_info, &row.css_concat), new_key);
        }
    }

    #[test]
    fn backward_secrecy_new_row_fails_on_old_info() {
        let s = scheme();
        let mut r = rng();
        let mut rows = random_rows(&mut r, 4, 16);
        let (old_key, old_info) = s.rekey(&rows, &mut r);
        let newcomer = random_rows(&mut r, 1, 16).pop().expect("one row");
        rows.push(newcomer.clone());
        let (new_key, new_info) = s.rekey(&rows, &mut r);
        // Newcomer gets the new key but not the old one.
        assert_eq!(s.derive_key(&new_info, &newcomer.css_concat), new_key);
        assert_ne!(s.derive_key(&old_info, &newcomer.css_concat), old_key);
    }

    #[test]
    fn collusion_mixing_css_across_rows_fails() {
        // Two-condition policy: row hash input is r₁‖r₂ of ONE subscriber.
        // Colluders holding r₁ from A and r₂ from B cannot form any row.
        let s = scheme();
        let mut r = rng();
        let rows = random_rows(&mut r, 2, 32); // 32 = two 16-byte CSSs
        let (key, info) = s.rekey(&rows, &mut r);
        let mut mixed = Vec::new();
        mixed.extend_from_slice(&rows[0].css_concat[..16]); // A's r₁
        mixed.extend_from_slice(&rows[1].css_concat[16..]); // B's r₂
        assert_ne!(s.derive_key(&info, &mixed), key);
    }

    #[test]
    fn extraction_vector_annihilates_acv() {
        let s = scheme();
        let mut r = rng();
        let rows = random_rows(&mut r, 6, 16);
        let (key, info) = s.rekey(&rows, &mut r);
        let f = s.field().clone();
        let x: Vec<_> = info.x.iter().map(|u| f.from_uint(u)).collect();
        for row in &rows {
            let nu = s.extraction_vector(&info, &row.css_concat);
            // ν·X = K, i.e. ν·Y = 0.
            let k = dot(&nu, &x);
            let key_int = U128::from_be_bytes(&key).expect("key bytes");
            assert_eq!(k.to_uint(), key_int);
        }
    }

    #[test]
    fn empty_configuration_hides_key() {
        let s = scheme();
        let mut r = rng();
        let (key, info) = s.rekey(&[], &mut r);
        // Nobody derives: any CSS guess misses.
        for _ in 0..10 {
            let mut guess = vec![0u8; 16];
            r.fill_bytes(&mut guess);
            assert_ne!(s.derive_key(&info, &guess), key);
        }
    }

    #[test]
    fn rekey_randomizes_key_and_public_info() {
        let s = scheme();
        let mut r = rng();
        let rows = random_rows(&mut r, 3, 16);
        let (k1, i1) = s.rekey(&rows, &mut r);
        let (k2, i2) = s.rekey(&rows, &mut r);
        assert_ne!(k1, k2);
        assert_ne!(i1.x, i2.x);
        assert_ne!(i1.zs, i2.zs);
    }

    #[test]
    fn batch_rekey_shares_nonces_with_independent_keys() {
        let s = scheme();
        let mut r = rng();
        let rows = random_rows(&mut r, 4, 16);
        let batch = s.rekey_batch(&rows, 3, &mut r);
        assert_eq!(batch.len(), 3);
        // Same z values (shared matrix)…
        assert_eq!(batch[0].1.zs, batch[1].1.zs);
        assert_eq!(batch[1].1.zs, batch[2].1.zs);
        // …different keys and ACVs.
        assert_ne!(batch[0].0, batch[1].0);
        assert_ne!(batch[0].1.x, batch[1].1.x);
        // Every member derives every key from the same CSSs.
        for (key, info) in &batch {
            for row in &rows {
                assert_eq!(&s.derive_key(info, &row.css_concat), key);
            }
        }
    }

    #[test]
    fn extra_slots_allow_spare_capacity() {
        let s = AcvBgkm::new(FpCtx::new(pbcd_math::gkm_q80()), 2, 10);
        let mut r = rng();
        let rows = random_rows(&mut r, 3, 16);
        let (key, info) = s.rekey(&rows, &mut r);
        assert_eq!(info.zs.len(), 13);
        assert_eq!(info.x.len(), 14);
        for row in &rows {
            assert_eq!(s.derive_key(&info, &row.css_concat), key);
        }
    }

    #[test]
    fn tau_raised_for_small_n() {
        // τ·N must exceed 160 bits: with one row (N=1), 2-byte nonces would
        // give 16 bits, so τ is raised to ⌈161/8⌉ = 21 bytes.
        let s = scheme();
        let mut r = rng();
        let rows = random_rows(&mut r, 1, 16);
        let (_, info) = s.rekey(&rows, &mut r);
        let n = info.zs.len();
        let tau = info.zs[0].len();
        assert!(tau * n * 8 > 160, "τ·N = {} bits", tau * n * 8);
    }

    #[test]
    fn public_info_encoding_roundtrip() {
        let s = scheme();
        let mut r = rng();
        let rows = random_rows(&mut r, 5, 16);
        let (_, info) = s.rekey(&rows, &mut r);
        let enc = info.encode();
        assert_eq!(AcvPublicInfo::decode(&enc), Some(info.clone()));
        // Corruption and truncation rejected.
        assert_eq!(AcvPublicInfo::decode(&enc[..enc.len() - 1]), None);
        let mut extra = enc.clone();
        extra.push(0);
        assert_eq!(AcvPublicInfo::decode(&extra), None);
        assert_eq!(AcvPublicInfo::decode(&[]), None);
    }

    #[test]
    fn compressed_size_matches_formula() {
        let s = scheme();
        let mut r = rng();
        let rows = random_rows(&mut r, 10, 16);
        let (_, info) = s.rekey(&rows, &mut r);
        let n = info.zs.len();
        let tau = info.zs[0].len();
        assert_eq!(info.size_bytes_compressed(80), (n + 1) * 10 + n * tau);
    }

    #[test]
    fn cached_derivation_matches_plain_across_batch() {
        let s = scheme();
        let mut r = rng();
        let rows = random_rows(&mut r, 5, 16);
        let batch = s.rekey_batch(&rows, 4, &mut r);
        let mut cache = KevCache::new();
        for (key, info) in &batch {
            // Cached and plain derivation agree for every member.
            for row in &rows {
                assert_eq!(&s.derive_key_cached(info, &row.css_concat, &mut cache), key);
                assert_eq!(&s.derive_key(info, &row.css_concat), key);
            }
        }
        // One cache entry per (css, shared-nonce-set): 5 members × 1 set.
        assert_eq!(cache.len(), 5);
        // A fresh rekey (new nonces) adds new entries rather than reusing.
        let (key2, info2) = s.rekey(&rows, &mut r);
        assert_eq!(
            s.derive_key_cached(&info2, &rows[0].css_concat, &mut cache),
            key2
        );
        assert_eq!(cache.len(), 6);
    }

    #[test]
    fn rekey_configs_shares_nonces_and_caches_rows() {
        let s = scheme();
        let mut r = rng();
        // Three configurations sharing some rows (the dominance scenario):
        // config 0 ⊂ config 1 ⊂ config 2.
        let all = random_rows(&mut r, 6, 16);
        let configs = vec![all[..2].to_vec(), all[..4].to_vec(), all.clone()];
        let out = s.rekey_configs(&configs, &mut r);
        assert_eq!(out.len(), 3);
        // Shared nonces.
        assert_eq!(out[0].1.zs, out[1].1.zs);
        assert_eq!(out[1].1.zs, out[2].1.zs);
        // Independent keys.
        assert_ne!(out[0].0, out[1].0);
        assert_ne!(out[1].0, out[2].0);
        // Membership semantics hold per configuration.
        for (cfg, (key, info)) in configs.iter().zip(&out) {
            for row in cfg {
                assert_eq!(&s.derive_key(info, &row.css_concat), key);
            }
        }
        // Row 5 is only in config 2; it must not derive configs 0/1 keys.
        assert_ne!(&s.derive_key(&out[0].1, &all[5].css_concat), &out[0].0);
        assert_ne!(&s.derive_key(&out[1].1, &all[5].css_concat), &out[1].0);
    }

    #[test]
    fn derived_key_is_deterministic() {
        let s = scheme();
        let mut r = rng();
        let rows = random_rows(&mut r, 3, 16);
        let (_, info) = s.rekey(&rows, &mut r);
        let d1 = s.derive_key(&info, &rows[0].css_concat);
        let d2 = s.derive_key(&info, &rows[0].css_concat);
        assert_eq!(d1, d2);
    }
}
