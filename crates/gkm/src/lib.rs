//! # pbcd-gkm
//!
//! Broadcast group key management for the PBCD workspace — the paper's
//! core technical contribution and the baselines it is evaluated against:
//!
//! * [`acv`] — **ACV-BGKM** (§V-C): access-control-vector broadcast GKM.
//!   Qualified subscribers derive the group key from public values and
//!   their conditional subscription secrets; rekey sends nothing to anyone.
//! * [`css`] — the publisher's CSS table `T` (§V-B, Table I).
//! * [`sharded`] — subscriber bucketing for very large N (§VIII-C).
//! * [`marker`] — the reviewer-proposed XOR/marker scheme (§VIII-D).
//! * [`secure_lock`] — the CRT secure lock (Chiou & Chen; related work).
//! * [`lkh`] — Logical Key Hierarchy (stateful tree rekeying; related work).
//! * [`simplistic`] — direct per-subscriber key delivery (§VIII-B).
//! * [`traits`] — the [`BroadcastGkm`] trait every *stateless* scheme
//!   implements (LKH cannot: its rekey sends per-member messages), making
//!   the schemes hot-swappable in `pbcd_core` and the benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acv;
pub mod css;
pub mod lkh;
pub mod marker;
pub mod secure_lock;
pub mod sharded;
pub mod simplistic;
pub mod traits;

pub use acv::{AccessRow, AcvBgkm, AcvPublicInfo, KevCache};
pub use css::{Css, CssTable, Nym, ShardedCssTable, DEFAULT_CSS_SHARDS};
pub use lkh::{LkhMember, LkhPublisher, RekeyMessage};
pub use marker::{MarkerGkm, MarkerPublicInfo};
pub use secure_lock::{LockPublicInfo, SecureLockGkm};
pub use sharded::{ShardedAcvBgkm, ShardedPublicInfo};
pub use simplistic::{SimplisticGkm, SimplisticPublicInfo};
pub use traits::BroadcastGkm;
