//! The simplistic direct key-delivery baseline (paper §VIII-B).
//!
//! The publisher encrypts the group key individually for every qualified
//! subscriber, addressing each ciphertext by pseudonym. Works, but:
//! every rekey is O(n) *point-to-point*-style payloads, each subscriber
//! must be individually addressed, and subscribers accumulate one key per
//! policy configuration they satisfy (up to `2^(2N)` configurations in the
//! worst case, per the paper).

use crate::acv::AccessRow;
use pbcd_crypto::AuthKey;
use pbcd_docs::wire;
use rand::RngCore;

/// Per-subscriber addressed key ciphertexts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimplisticPublicInfo {
    /// `(nym, E_{CSS-derived key}[K])` pairs.
    pub deliveries: Vec<(String, Vec<u8>)>,
}

/// The direct-delivery baseline.
#[derive(Debug, Clone, Default)]
pub struct SimplisticGkm {
    key_len: usize,
}

impl SimplisticGkm {
    /// Creates the baseline delivering `key_len`-byte keys (default 16).
    pub fn new() -> Self {
        Self { key_len: 16 }
    }

    /// Derived key length in bytes.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Publisher: picks a key and encrypts it once per row.
    pub fn rekey<R: RngCore + ?Sized>(
        &self,
        rows: &[AccessRow],
        rng: &mut R,
    ) -> (Vec<u8>, SimplisticPublicInfo) {
        let mut key = vec![0u8; self.key_len];
        rng.fill_bytes(&mut key);
        let deliveries = rows
            .iter()
            .map(|row| {
                let wrap = AuthKey::from_master(&row.css_concat);
                (row.nym.clone(), wrap.encrypt(rng, &key))
            })
            .collect();
        (key, SimplisticPublicInfo { deliveries })
    }

    /// Subscriber: finds its addressed ciphertext and unwraps it.
    pub fn derive_key(
        &self,
        info: &SimplisticPublicInfo,
        nym: &str,
        css_concat: &[u8],
    ) -> Option<Vec<u8>> {
        let wrap = AuthKey::from_master(css_concat);
        info.deliveries
            .iter()
            .filter(|(n, _)| n == nym)
            .find_map(|(_, ct)| wrap.decrypt(ct).ok())
    }

    /// Total rekey traffic in bytes (every subscriber's ciphertext plus its
    /// address).
    pub fn public_size(&self, info: &SimplisticPublicInfo) -> usize {
        info.deliveries
            .iter()
            .map(|(n, ct)| n.len() + ct.len())
            .sum()
    }
}

impl SimplisticPublicInfo {
    /// Wire encoding: `count u32 ‖ (nym_len u32 ‖ nym ‖ ct_len u32 ‖ ct)*`
    /// with both variable fields carried as [`pbcd_docs::wire`]
    /// length-prefixed strings/bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.deliveries.len() as u32).to_be_bytes());
        for (nym, ct) in &self.deliveries {
            if wire::put_str(&mut out, nym).is_err() || wire::put_bytes(&mut out, ct).is_err() {
                // Unconstructible via rekey (a nym or wrapped key above
                // MAX_FIELD_LEN); emit an undecodable encoding over
                // panicking.
                return Vec::new();
            }
        }
        out
    }

    /// Parses the wire encoding via the audited [`pbcd_docs::wire`]
    /// helpers; strict — counts and lengths are bounded by the input size
    /// and no trailing bytes are tolerated.
    pub fn decode(data: &[u8]) -> Option<Self> {
        let mut buf = data;
        let count = wire::get_u32(&mut buf).ok()? as usize;
        if count > data.len() / 8 + 1 {
            return None;
        }
        let mut deliveries = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let nym = wire::get_str(&mut buf).ok()?;
            let ct = wire::get_bytes(&mut buf).ok()?;
            deliveries.push((nym, ct));
        }
        if !buf.is_empty() {
            return None;
        }
        Some(Self { deliveries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(800)
    }

    fn rows<R: Rng>(r: &mut R, n: usize) -> Vec<AccessRow> {
        (0..n)
            .map(|i| {
                let mut css = vec![0u8; 16];
                r.fill_bytes(&mut css);
                AccessRow {
                    nym: format!("pn-{i}"),
                    css_concat: css,
                }
            })
            .collect()
    }

    #[test]
    fn members_unwrap_their_delivery() {
        let g = SimplisticGkm::new();
        let mut r = rng();
        let rows = rows(&mut r, 5);
        let (key, info) = g.rekey(&rows, &mut r);
        for row in &rows {
            assert_eq!(
                g.derive_key(&info, &row.nym, &row.css_concat),
                Some(key.clone())
            );
        }
    }

    #[test]
    fn wrong_css_or_nym_fails() {
        let g = SimplisticGkm::new();
        let mut r = rng();
        let rows = rows(&mut r, 3);
        let (_, info) = g.rekey(&rows, &mut r);
        // Right nym, wrong CSS.
        assert_eq!(g.derive_key(&info, &rows[0].nym, &rows[1].css_concat), None);
        // Unknown nym.
        assert_eq!(g.derive_key(&info, "pn-999", &rows[0].css_concat), None);
    }

    #[test]
    fn traffic_grows_linearly_per_subscriber() {
        let g = SimplisticGkm::new();
        let mut r = rng();
        let r10 = {
            let rows = rows(&mut r, 10);
            g.public_size(&g.rekey(&rows, &mut r).1)
        };
        let r100 = {
            let rows = rows(&mut r, 100);
            g.public_size(&g.rekey(&rows, &mut r).1)
        };
        assert!(r100 > 9 * r10, "O(n) rekey traffic: {r10} vs {r100}");
    }
}
