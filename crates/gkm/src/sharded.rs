//! Sharded ACV-BGKM (paper §VIII-C): scaling past the O(N³) null-space
//! solve by bucketing subscribers.
//!
//! "The Pub can divide all the involved Subs into multiple groups of a
//! suitable size (e.g., 1000 each), compute a different ACV Y for each
//! group … while the subdocument is still encrypted with one uniform key."
//!
//! Shard assignment hashes the pseudonym, so a subscriber locates its own
//! shard from the broadcast alone — rekeys stay transparent.

use crate::acv::{AccessRow, AcvBgkm, AcvPublicInfo};
use pbcd_crypto::sha256;
use pbcd_docs::wire;
use rand::RngCore;

/// Broadcast public info: one ACV per shard, all carrying the same key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedPublicInfo {
    /// Number of shards (the pseudonym hash modulus).
    pub num_shards: u32,
    /// Per-shard ACV public info, indexed by shard id.
    pub shards: Vec<AcvPublicInfo>,
}

/// Sharded ACV-BGKM.
#[derive(Clone)]
pub struct ShardedAcvBgkm {
    inner: AcvBgkm,
    shard_capacity: usize,
}

impl ShardedAcvBgkm {
    /// Wraps `inner` with a per-shard row capacity.
    pub fn new(inner: AcvBgkm, shard_capacity: usize) -> Self {
        assert!(shard_capacity >= 1, "shard capacity must be positive");
        Self {
            inner,
            shard_capacity,
        }
    }

    /// The underlying single-shard scheme.
    pub fn inner(&self) -> &AcvBgkm {
        &self.inner
    }

    /// Derived key length in bytes.
    pub fn key_len(&self) -> usize {
        self.inner.key_len()
    }

    /// Stable shard assignment for a pseudonym.
    pub fn shard_of(nym: &str, num_shards: u32) -> u32 {
        let digest = sha256(&[b"pbcd-shard:", nym.as_bytes()].concat());
        u32::from_be_bytes(digest[..4].try_into().expect("4 bytes")) % num_shards.max(1)
    }

    /// Publisher: rekeys all shards under one uniform key.
    pub fn rekey<R: RngCore + ?Sized>(
        &self,
        rows: &[AccessRow],
        rng: &mut R,
    ) -> (Vec<u8>, ShardedPublicInfo) {
        let num_shards = rows.len().div_ceil(self.shard_capacity).max(1) as u32;
        let mut buckets: Vec<Vec<AccessRow>> = vec![Vec::new(); num_shards as usize];
        for row in rows {
            buckets[Self::shard_of(&row.nym, num_shards) as usize].push(row.clone());
        }
        let key = self.inner.field().random_nonzero(rng);
        let shards = buckets
            .iter()
            .map(|bucket| self.inner.rekey_with_key(bucket, &key, rng))
            .collect();
        let key_bytes = {
            let bytes = key.to_uint().to_be_bytes();
            bytes[bytes.len() - self.inner.key_len()..].to_vec()
        };
        (key_bytes, ShardedPublicInfo { num_shards, shards })
    }

    /// Subscriber: locates its shard by pseudonym and derives from that
    /// shard's ACV only.
    pub fn derive_key(&self, info: &ShardedPublicInfo, nym: &str, css_concat: &[u8]) -> Vec<u8> {
        let shard = Self::shard_of(nym, info.num_shards) as usize;
        self.inner.derive_key(&info.shards[shard], css_concat)
    }

    /// Total broadcast size across shards (compressed field elements).
    pub fn public_size(&self, info: &ShardedPublicInfo) -> usize {
        let bits = self.inner.field().modulus_bits();
        4 + info
            .shards
            .iter()
            .map(|s| s.size_bytes_compressed(bits))
            .sum::<usize>()
    }
}

impl ShardedPublicInfo {
    /// Wire encoding: `num_shards u32 ‖ (len u32 ‖ acv_info)*` — one
    /// [`pbcd_docs::wire`]-length-prefixed [`AcvPublicInfo`] encoding per
    /// shard.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.num_shards.to_be_bytes());
        for shard in &self.shards {
            if wire::put_bytes(&mut out, &shard.encode()).is_err() {
                // A shard above MAX_FIELD_LEN would need ~1M members in a
                // single shard; emit an undecodable encoding over panicking.
                return Vec::new();
            }
        }
        out
    }

    /// Parses the wire encoding via the audited [`pbcd_docs::wire`]
    /// helpers; strict — the shard count must match `num_shards` exactly
    /// (so [`ShardedAcvBgkm::derive_key`] can index by pseudonym hash
    /// without bounds surprises) and be at least 1.
    pub fn decode(data: &[u8]) -> Option<Self> {
        let mut buf = data;
        let num_shards = wire::get_u32(&mut buf).ok()?;
        if num_shards == 0 || num_shards as usize > data.len() / 4 + 1 {
            return None;
        }
        let mut shards = Vec::with_capacity((num_shards as usize).min(1024));
        for _ in 0..num_shards {
            shards.push(AcvPublicInfo::decode(&wire::get_bytes(&mut buf).ok()?)?);
        }
        if !buf.is_empty() {
            return None;
        }
        Some(Self { num_shards, shards })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1100)
    }

    fn rows<R: Rng>(r: &mut R, n: usize) -> Vec<AccessRow> {
        (0..n)
            .map(|i| {
                let mut css = vec![0u8; 16];
                r.fill_bytes(&mut css);
                AccessRow {
                    nym: format!("pn-{i:05}"),
                    css_concat: css,
                }
            })
            .collect()
    }

    #[test]
    fn all_members_derive_across_shards() {
        let s = ShardedAcvBgkm::new(AcvBgkm::default(), 8);
        let mut r = rng();
        let rows = rows(&mut r, 30);
        let (key, info) = s.rekey(&rows, &mut r);
        assert_eq!(info.num_shards, 4); // ceil(30/8)
        for row in &rows {
            assert_eq!(s.derive_key(&info, &row.nym, &row.css_concat), key);
        }
    }

    #[test]
    fn single_shard_degenerates_to_plain_acv() {
        let s = ShardedAcvBgkm::new(AcvBgkm::default(), 100);
        let mut r = rng();
        let rows = rows(&mut r, 10);
        let (key, info) = s.rekey(&rows, &mut r);
        assert_eq!(info.num_shards, 1);
        for row in &rows {
            assert_eq!(s.derive_key(&info, &row.nym, &row.css_concat), key);
        }
    }

    #[test]
    fn outsiders_fail() {
        let s = ShardedAcvBgkm::new(AcvBgkm::default(), 4);
        let mut r = rng();
        let rows = rows(&mut r, 12);
        let (key, info) = s.rekey(&rows, &mut r);
        let mut outsider = vec![0u8; 16];
        r.fill_bytes(&mut outsider);
        assert_ne!(s.derive_key(&info, "pn-xxxxx", &outsider), key);
        // Right CSS in the *wrong* shard also fails.
        let wrong_shard_nym = "completely-different";
        if ShardedAcvBgkm::shard_of(wrong_shard_nym, info.num_shards)
            != ShardedAcvBgkm::shard_of(&rows[0].nym, info.num_shards)
        {
            assert_ne!(
                s.derive_key(&info, wrong_shard_nym, &rows[0].css_concat),
                key
            );
        }
    }

    #[test]
    fn shard_assignment_is_stable() {
        for n in [1u32, 2, 7, 64] {
            for nym in ["a", "pn-0001", "pn-9999"] {
                assert_eq!(
                    ShardedAcvBgkm::shard_of(nym, n),
                    ShardedAcvBgkm::shard_of(nym, n)
                );
                assert!(ShardedAcvBgkm::shard_of(nym, n) < n);
            }
        }
    }

    #[test]
    fn empty_rows_single_empty_shard() {
        let s = ShardedAcvBgkm::new(AcvBgkm::default(), 4);
        let mut r = rng();
        let (key, info) = s.rekey(&[], &mut r);
        assert_eq!(info.num_shards, 1);
        assert_ne!(s.derive_key(&info, "anyone", b"anything"), key);
    }
}
