//! The CRT "secure lock" baseline (Chiou & Chen, 1989; paper §II).
//!
//! Each subscriber `i` is assigned a distinct prime modulus `mᵢ` derived
//! from its CSS. To broadcast key `K`, the publisher computes the single
//! *lock* `L` with `L ≡ K ⊕ H(cssᵢ‖z) (mod mᵢ)` for every member via the
//! Chinese Remainder Theorem; a member recovers `K = (L mod mᵢ) ⊕ mask`.
//!
//! The paper dismisses this approach as "inefficient for large n, as it
//! requires performing CRT calculation involving n congruences each time a
//! new document is sent" — the lock itself is `Σ bits(mᵢ)` long, so both
//! lock size and CRT time grow quadratically-ish with membership. The
//! benches reproduce that blow-up against ACV-BGKM.

use crate::acv::AccessRow;
use pbcd_crypto::sha256;
use pbcd_docs::wire;
use pbcd_math::{miller_rabin, U128, U256};
use rand::RngCore;

/// Key length carried by the lock (16 bytes, below every modulus).
pub const KEY_LEN: usize = 15;

/// Broadcast public info: the nonce and the CRT lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockPublicInfo {
    /// Session nonce.
    pub z: [u8; 16],
    /// The lock `L`, big-endian.
    pub lock: Vec<u8>,
}

/// The CRT secure-lock baseline.
#[derive(Debug, Clone, Default)]
pub struct SecureLockGkm;

impl SecureLockGkm {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }

    /// Derived key length in bytes.
    pub fn key_len(&self) -> usize {
        KEY_LEN
    }

    /// Publisher: solves the n-congruence CRT system for a fresh key.
    /// Returns `(key, info)`. Panics if two subscribers collide on the
    /// same modulus (probability ≈ 0 for distinct CSSs).
    pub fn rekey<R: RngCore + ?Sized>(
        &self,
        rows: &[AccessRow],
        rng: &mut R,
    ) -> (Vec<u8>, LockPublicInfo) {
        let mut key = vec![0u8; KEY_LEN];
        rng.fill_bytes(&mut key);
        let mut z = [0u8; 16];
        rng.fill_bytes(&mut z);

        // Residue per member: rᵢ = K ⊕ H(cssᵢ‖z), taken below mᵢ (128-bit
        // prime > 2^120 > any 15-byte residue).
        let mut moduli: Vec<U128> = Vec::with_capacity(rows.len());
        let mut residues: Vec<U128> = Vec::with_capacity(rows.len());
        for row in rows {
            let m = modulus_for(&row.css_concat);
            assert!(
                !moduli.contains(&m),
                "modulus collision between subscribers"
            );
            let masked = mask_key(&key, &row.css_concat, &z);
            moduli.push(m);
            residues.push(U128::from_be_bytes(&masked).expect("15 bytes fit"));
        }

        // Incremental CRT (Garner-style): fold one congruence in per step,
        // maintaining `lock ≡ rⱼ (mod mⱼ)` for all folded j with
        // `lock < product = Π mⱼ`. Every *modular* operation is fixed-width
        // [`U128`]/[`U256`] arithmetic; the only big numbers are `lock` and
        // `product` themselves, touched solely by limb-vector
        // multiply-accumulate — no arbitrary-precision division anywhere
        // (the old `VarUint` path divided the full product by every
        // modulus).
        let mut lock: Vec<u64> = Vec::new(); // L = 0
        let mut product: Vec<u64> = vec![1]; // P = 1
        for (m, r) in moduli.iter().zip(&residues) {
            // k = (rᵢ − L) · P⁻¹ mod mᵢ, then L += k·P (keeps L < P·mᵢ).
            let cur = limbs_mod_u128(&lock, m);
            let p = limbs_mod_u128(&product, m);
            let inv = p.inv_mod(m).expect("moduli are distinct primes");
            let k = r.sub_mod(&cur, m).mul_mod(&inv, m);
            let k_limbs = *k.limbs();
            add_shifted_mul_limb(&mut lock, &product, k_limbs[0], 0);
            add_shifted_mul_limb(&mut lock, &product, k_limbs[1], 1);
            product = mul_by_u128(&product, m);
        }
        (
            key,
            LockPublicInfo {
                z,
                lock: limbs_to_be_bytes(&lock),
            },
        )
    }

    /// Subscriber: reduces the lock by its modulus and unmasks.
    /// The scheme has no integrity marker; like ACV-BGKM, wrong CSSs yield
    /// a wrong key that the authenticated encryption above will reject.
    pub fn derive_key(&self, info: &LockPublicInfo, css_concat: &[u8]) -> Vec<u8> {
        let m = modulus_for(css_concat);
        let residue = bytes_mod_u128(&info.lock, &m);
        let bytes = residue.to_be_bytes(); // 16 bytes (U128 width).
                                           // Canonical 15-byte masked value: take the low 15 bytes.
        let mut masked = [0u8; KEY_LEN];
        let start = bytes.len().saturating_sub(KEY_LEN);
        masked.copy_from_slice(&bytes[start..]);
        unmask(&masked, css_concat, &info.z)
    }

    /// Lock size in bytes — grows with Σ bits(mᵢ), i.e. linearly in n with
    /// a 16-byte constant, but the CRT cost is quadratic.
    pub fn public_size(&self, info: &LockPublicInfo) -> usize {
        16 + info.lock.len()
    }
}

impl LockPublicInfo {
    /// Wire encoding: `z (16) ‖ lock_len u32 ‖ lock` (big-endian) — the
    /// lock field uses the standard [`pbcd_docs::wire`] length prefix.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.lock.len());
        out.extend_from_slice(&self.z);
        if wire::put_bytes(&mut out, &self.lock).is_err() {
            // A lock above MAX_FIELD_LEN is unconstructible via rekey
            // (membership would have to be astronomic); emit an encoding
            // that can never decode rather than panicking.
            return Vec::new();
        }
        out
    }

    /// Parses the wire encoding via the audited [`pbcd_docs::wire`]
    /// helpers; strict — the announced length must cover exactly the
    /// remaining bytes.
    pub fn decode(data: &[u8]) -> Option<Self> {
        let mut buf = data;
        let z = wire::get_fixed::<16>(&mut buf).ok()?;
        let lock = wire::get_bytes(&mut buf).ok()?;
        if !buf.is_empty() {
            return None;
        }
        Some(Self { z, lock })
    }
}

/// `value mod m` for a little-endian limb vector: per-limb Horner
/// (`r ← (r·2⁶⁴ + limb) mod m`) with the wide intermediate held in a
/// fixed [`U256`] — `r < m < 2¹²⁸`, so `r·2⁶⁴ + limb < 2¹⁹²` always fits.
fn limbs_mod_u128(limbs: &[u64], m: &U128) -> U128 {
    let m_wide: U256 = m.widen();
    let mut r = U256::from_u64(0);
    for &limb in limbs.iter().rev() {
        let acc = r.shl(64).wrapping_add(&U256::from_u64(limb));
        r = acc.rem(&m_wide);
    }
    r.narrow::<2>().expect("residue below a 128-bit modulus")
}

/// `lock mod m` straight off the big-endian wire bytes — same Horner fold
/// as [`limbs_mod_u128`], consuming up to 8 bytes per step.
fn bytes_mod_u128(bytes: &[u8], m: &U128) -> U128 {
    let m_wide: U256 = m.widen();
    let mut r = U256::from_u64(0);
    let lead = bytes.len() % 8;
    let mut fold = |chunk: &[u8]| {
        let mut raw = [0u8; 8];
        raw[8 - chunk.len()..].copy_from_slice(chunk);
        let limb = u64::from_be_bytes(raw);
        let acc = r
            .shl(8 * chunk.len() as u32)
            .wrapping_add(&U256::from_u64(limb));
        r = acc.rem(&m_wide);
    };
    if lead > 0 {
        fold(&bytes[..lead]);
    }
    for chunk in bytes[lead..].chunks_exact(8) {
        fold(chunk);
    }
    r.narrow::<2>().expect("residue below a 128-bit modulus")
}

/// `acc[shift..] += p · k` for a single 64-bit factor — the schoolbook
/// multiply-accumulate row, growing `acc` as needed.
fn add_shifted_mul_limb(acc: &mut Vec<u64>, p: &[u64], k: u64, shift: usize) {
    if k == 0 {
        return;
    }
    let needed = p.len() + shift + 2;
    if acc.len() < needed {
        acc.resize(needed, 0);
    }
    let mut carry: u128 = 0;
    for (i, &pi) in p.iter().enumerate() {
        let t = acc[i + shift] as u128 + (pi as u128) * (k as u128) + carry;
        acc[i + shift] = t as u64;
        carry = t >> 64;
    }
    let mut idx = p.len() + shift;
    while carry > 0 {
        let t = acc[idx] as u128 + carry;
        acc[idx] = t as u64;
        carry = t >> 64;
        idx += 1;
    }
}

/// `p · m` for a 128-bit factor, as a fresh little-endian limb vector.
fn mul_by_u128(p: &[u64], m: &U128) -> Vec<u64> {
    let m_limbs = *m.limbs();
    let mut out = Vec::with_capacity(p.len() + 2);
    add_shifted_mul_limb(&mut out, p, m_limbs[0], 0);
    add_shifted_mul_limb(&mut out, p, m_limbs[1], 1);
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// Minimal big-endian bytes of a little-endian limb vector (empty for
/// zero) — the lock's wire form.
fn limbs_to_be_bytes(limbs: &[u64]) -> Vec<u8> {
    let top = match limbs.iter().rposition(|&l| l != 0) {
        Some(i) => i,
        None => return Vec::new(),
    };
    let mut out = Vec::with_capacity((top + 1) * 8);
    let head = limbs[top].to_be_bytes();
    let skip = head.iter().take_while(|&&b| b == 0).count();
    out.extend_from_slice(&head[skip..]);
    for limb in limbs[..top].iter().rev() {
        out.extend_from_slice(&limb.to_be_bytes());
    }
    out
}

/// Derives a deterministic 128-bit prime modulus from a CSS by hashing and
/// scanning forward (Miller–Rabin with a deterministic base set seeded from
/// the candidate itself).
fn modulus_for(css_concat: &[u8]) -> U128 {
    let digest = sha256(&[b"pbcd-securelock-modulus:", css_concat].concat());
    let mut candidate = U128::from_be_bytes(&digest[..16]).expect("16 bytes");
    // Force top bit (so every modulus exceeds any 15-byte residue) and odd.
    candidate = {
        let mut limbs = *candidate.limbs();
        limbs[1] |= 1 << 63;
        limbs[0] |= 1;
        U128::from_limbs(limbs)
    };
    let two = U128::from_u64(2);
    let mut seed_rng = DeterministicRng(digest);
    loop {
        if miller_rabin(&candidate, 24, &mut seed_rng) {
            return candidate;
        }
        candidate = candidate.wrapping_add(&two);
    }
}

/// Tiny deterministic RNG (SHA-256 in counter mode) so modulus derivation
/// is reproducible across publisher and subscriber.
struct DeterministicRng([u8; 32]);

impl RngCore for DeterministicRng {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = sha256(&self.0);
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_be_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

fn mask_key(key: &[u8], css_concat: &[u8], z: &[u8; 16]) -> [u8; KEY_LEN] {
    let mask = sha256(&[b"pbcd-securelock-mask:", css_concat, z.as_slice()].concat());
    let mut out = [0u8; KEY_LEN];
    for i in 0..KEY_LEN {
        out[i] = key[i] ^ mask[i];
    }
    out
}

fn unmask(masked: &[u8; KEY_LEN], css_concat: &[u8], z: &[u8; 16]) -> Vec<u8> {
    let mask = sha256(&[b"pbcd-securelock-mask:", css_concat, z.as_slice()].concat());
    (0..KEY_LEN).map(|i| masked[i] ^ mask[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(900)
    }

    fn rows<R: Rng>(r: &mut R, n: usize) -> Vec<AccessRow> {
        (0..n)
            .map(|i| {
                let mut css = vec![0u8; 16];
                r.fill_bytes(&mut css);
                AccessRow {
                    nym: format!("pn-{i}"),
                    css_concat: css,
                }
            })
            .collect()
    }

    #[test]
    fn members_derive_the_key() {
        let g = SecureLockGkm::new();
        let mut r = rng();
        for n in [1usize, 2, 5, 12] {
            let rows = rows(&mut r, n);
            let (key, info) = g.rekey(&rows, &mut r);
            for row in &rows {
                assert_eq!(g.derive_key(&info, &row.css_concat), key, "n={n}");
            }
        }
    }

    #[test]
    fn outsiders_get_garbage() {
        let g = SecureLockGkm::new();
        let mut r = rng();
        let rows = rows(&mut r, 4);
        let (key, info) = g.rekey(&rows, &mut r);
        let mut outsider = vec![0u8; 16];
        r.fill_bytes(&mut outsider);
        assert_ne!(g.derive_key(&info, &outsider), key);
    }

    #[test]
    fn lock_size_grows_with_membership() {
        let g = SecureLockGkm::new();
        let mut r = rng();
        let s2 = {
            let rows = rows(&mut r, 2);
            g.public_size(&g.rekey(&rows, &mut r).1)
        };
        let s16 = {
            let rows = rows(&mut r, 16);
            g.public_size(&g.rekey(&rows, &mut r).1)
        };
        // 16 bytes of lock per member (moduli are 128-bit).
        assert!(s16 >= s2 + 13 * 16, "s2={s2} s16={s16}");
    }

    #[test]
    fn modulus_derivation_deterministic_and_prime_spaced() {
        let m1 = modulus_for(b"css-a");
        let m2 = modulus_for(b"css-a");
        let m3 = modulus_for(b"css-b");
        assert_eq!(m1, m2);
        assert_ne!(m1, m3);
        assert!(m1.bit(127), "top bit forced");
        let mut r = rng();
        assert!(miller_rabin(&m1, 40, &mut r));
        assert!(miller_rabin(&m3, 40, &mut r));
    }

    #[test]
    fn empty_membership() {
        let g = SecureLockGkm::new();
        let mut r = rng();
        let (key, info) = g.rekey(&[], &mut r);
        assert!(info.lock.is_empty());
        assert_ne!(g.derive_key(&info, b"anything"), key);
    }

    #[test]
    fn rekey_changes_key_for_revoked() {
        let g = SecureLockGkm::new();
        let mut r = rng();
        let mut members = rows(&mut r, 5);
        let revoked = members.pop().expect("five");
        let (key, info) = g.rekey(&members, &mut r);
        assert_ne!(g.derive_key(&info, &revoked.css_concat), key);
    }
}
