//! The [`BroadcastGkm`] trait — the formalized version of the
//! publisher/subscriber contract that every stateless broadcast-GKM scheme
//! in this crate follows (the "seam" documented in `docs/ARCHITECTURE.md`):
//!
//! ```text
//! publisher:   rekey(&[AccessRow], rng)            -> (group_key, PublicInfo)
//! subscriber:  derive_key(&PublicInfo, nym, css)   -> Option<candidate key>
//! ```
//!
//! The associated `PublicInfo` is exactly *what is broadcast in the clear*
//! — the part that distinguishes the schemes — and every implementation
//! ships a strict wire codec for it so containers can carry the key
//! material as an opaque blob regardless of scheme. `derive_key` returns an
//! `Option` because some schemes (marker, simplistic) can signal
//! non-membership directly; schemes that cannot (ACV-BGKM, secure lock)
//! always return `Some` candidate and rely on the authenticated encryption
//! layer above to reject wrong keys.
//!
//! LKH is deliberately *not* implementable here: its rekey must emit
//! per-member messages, which is the statefulness the paper's scheme
//! eliminates.

use crate::acv::{AccessRow, AcvBgkm};
use crate::marker::MarkerGkm;
use crate::secure_lock::SecureLockGkm;
use crate::sharded::ShardedAcvBgkm;
use crate::simplistic::SimplisticGkm;
use rand::RngCore;

/// A broadcast group-key-management scheme with transparent rekey: the
/// publisher derives fresh `(key, public info)` from the current access
/// rows, and qualified subscribers re-derive the key from the public info
/// plus their secrets — nothing is ever sent to an individual subscriber.
///
/// `Send + Sync` are supertraits so publishers can rekey configurations on
/// parallel threads (§VII) and network adapters can share schemes across
/// connection handlers; every scheme here is immutable deployment data.
pub trait BroadcastGkm: Clone + Send + Sync {
    /// The scheme's broadcast key material (`X, z₁…z_N` for ACV-BGKM,
    /// masked words for the marker scheme, the CRT lock, …).
    type PublicInfo: Clone + PartialEq + core::fmt::Debug;

    /// Length in bytes of the keys this scheme produces.
    fn key_len(&self) -> usize;

    /// Publisher: draws a fresh group key and the public info that lets
    /// exactly the subscribers behind `rows` re-derive it.
    fn rekey<R: RngCore + ?Sized>(
        &self,
        rows: &[AccessRow],
        rng: &mut R,
    ) -> (Vec<u8>, Self::PublicInfo);

    /// Subscriber: candidate key from the public info, the subscriber's
    /// pseudonym and its CSS concatenation. `None` when the scheme itself
    /// can tell the subscriber is not a member; `Some` of a (possibly
    /// wrong) candidate otherwise.
    fn derive_key(&self, info: &Self::PublicInfo, nym: &str, css_concat: &[u8]) -> Option<Vec<u8>>;

    /// Serializes the public info for embedding into a broadcast container.
    fn encode_info(&self, info: &Self::PublicInfo) -> Vec<u8>;

    /// Strict parse of [`Self::encode_info`] output; `None` on any
    /// truncation, corruption or trailing garbage — never panics.
    fn decode_info(&self, data: &[u8]) -> Option<Self::PublicInfo>;

    /// Broadcast size of the public info in bytes (the paper's Figure 5
    /// metric; may count compressed field elements rather than the exact
    /// wire encoding).
    fn public_size(&self, info: &Self::PublicInfo) -> usize;
}

impl BroadcastGkm for AcvBgkm {
    type PublicInfo = crate::acv::AcvPublicInfo;

    fn key_len(&self) -> usize {
        AcvBgkm::key_len(self)
    }

    fn rekey<R: RngCore + ?Sized>(
        &self,
        rows: &[AccessRow],
        rng: &mut R,
    ) -> (Vec<u8>, Self::PublicInfo) {
        AcvBgkm::rekey(self, rows, rng)
    }

    fn derive_key(
        &self,
        info: &Self::PublicInfo,
        _nym: &str,
        css_concat: &[u8],
    ) -> Option<Vec<u8>> {
        // ACV-BGKM cannot signal non-membership; the candidate is checked
        // by authenticated decryption above.
        Some(AcvBgkm::derive_key(self, info, css_concat))
    }

    fn encode_info(&self, info: &Self::PublicInfo) -> Vec<u8> {
        info.encode()
    }

    fn decode_info(&self, data: &[u8]) -> Option<Self::PublicInfo> {
        Self::PublicInfo::decode(data)
    }

    fn public_size(&self, info: &Self::PublicInfo) -> usize {
        info.size_bytes_compressed(self.field().modulus_bits())
    }
}

impl BroadcastGkm for ShardedAcvBgkm {
    type PublicInfo = crate::sharded::ShardedPublicInfo;

    fn key_len(&self) -> usize {
        ShardedAcvBgkm::key_len(self)
    }

    fn rekey<R: RngCore + ?Sized>(
        &self,
        rows: &[AccessRow],
        rng: &mut R,
    ) -> (Vec<u8>, Self::PublicInfo) {
        ShardedAcvBgkm::rekey(self, rows, rng)
    }

    fn derive_key(&self, info: &Self::PublicInfo, nym: &str, css_concat: &[u8]) -> Option<Vec<u8>> {
        // Guard the shard index: hostile info may disagree with num_shards.
        let shard = Self::shard_of(nym, info.num_shards) as usize;
        let acv = info.shards.get(shard)?;
        Some(self.inner().derive_key(acv, css_concat))
    }

    fn encode_info(&self, info: &Self::PublicInfo) -> Vec<u8> {
        info.encode()
    }

    fn decode_info(&self, data: &[u8]) -> Option<Self::PublicInfo> {
        Self::PublicInfo::decode(data)
    }

    fn public_size(&self, info: &Self::PublicInfo) -> usize {
        ShardedAcvBgkm::public_size(self, info)
    }
}

impl BroadcastGkm for MarkerGkm {
    type PublicInfo = crate::marker::MarkerPublicInfo;

    fn key_len(&self) -> usize {
        MarkerGkm::key_len(self)
    }

    fn rekey<R: RngCore + ?Sized>(
        &self,
        rows: &[AccessRow],
        rng: &mut R,
    ) -> (Vec<u8>, Self::PublicInfo) {
        MarkerGkm::rekey(self, rows, rng)
    }

    fn derive_key(
        &self,
        info: &Self::PublicInfo,
        _nym: &str,
        css_concat: &[u8],
    ) -> Option<Vec<u8>> {
        MarkerGkm::derive_key(self, info, css_concat)
    }

    fn encode_info(&self, info: &Self::PublicInfo) -> Vec<u8> {
        info.encode()
    }

    fn decode_info(&self, data: &[u8]) -> Option<Self::PublicInfo> {
        Self::PublicInfo::decode(data)
    }

    fn public_size(&self, info: &Self::PublicInfo) -> usize {
        MarkerGkm::public_size(self, info)
    }
}

impl BroadcastGkm for SecureLockGkm {
    type PublicInfo = crate::secure_lock::LockPublicInfo;

    fn key_len(&self) -> usize {
        SecureLockGkm::key_len(self)
    }

    fn rekey<R: RngCore + ?Sized>(
        &self,
        rows: &[AccessRow],
        rng: &mut R,
    ) -> (Vec<u8>, Self::PublicInfo) {
        SecureLockGkm::rekey(self, rows, rng)
    }

    fn derive_key(
        &self,
        info: &Self::PublicInfo,
        _nym: &str,
        css_concat: &[u8],
    ) -> Option<Vec<u8>> {
        // Like ACV-BGKM, the lock yields a candidate for everyone.
        Some(SecureLockGkm::derive_key(self, info, css_concat))
    }

    fn encode_info(&self, info: &Self::PublicInfo) -> Vec<u8> {
        info.encode()
    }

    fn decode_info(&self, data: &[u8]) -> Option<Self::PublicInfo> {
        Self::PublicInfo::decode(data)
    }

    fn public_size(&self, info: &Self::PublicInfo) -> usize {
        SecureLockGkm::public_size(self, info)
    }
}

impl BroadcastGkm for SimplisticGkm {
    type PublicInfo = crate::simplistic::SimplisticPublicInfo;

    fn key_len(&self) -> usize {
        SimplisticGkm::key_len(self)
    }

    fn rekey<R: RngCore + ?Sized>(
        &self,
        rows: &[AccessRow],
        rng: &mut R,
    ) -> (Vec<u8>, Self::PublicInfo) {
        SimplisticGkm::rekey(self, rows, rng)
    }

    fn derive_key(&self, info: &Self::PublicInfo, nym: &str, css_concat: &[u8]) -> Option<Vec<u8>> {
        SimplisticGkm::derive_key(self, info, nym, css_concat)
    }

    fn encode_info(&self, info: &Self::PublicInfo) -> Vec<u8> {
        info.encode()
    }

    fn decode_info(&self, data: &[u8]) -> Option<Self::PublicInfo> {
        Self::PublicInfo::decode(data)
    }

    fn public_size(&self, info: &Self::PublicInfo) -> usize {
        SimplisticGkm::public_size(self, info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1500)
    }

    fn rows<R: Rng>(r: &mut R, n: usize) -> Vec<AccessRow> {
        (0..n)
            .map(|i| {
                let mut css = vec![0u8; 16];
                r.fill_bytes(&mut css);
                AccessRow {
                    nym: format!("pn-{i:03}"),
                    css_concat: css,
                }
            })
            .collect()
    }

    /// Exercises the whole trait surface for one scheme: members derive the
    /// key through an encode/decode round-trip of the public info, an
    /// outsider does not, and corrupting/truncating the encoding yields
    /// `None` rather than a panic.
    fn exercise<S: BroadcastGkm>(scheme: &S) {
        let mut r = rng();
        let members = rows(&mut r, 7);
        let (key, info) = scheme.rekey(&members, &mut r);
        assert_eq!(key.len(), scheme.key_len());
        assert!(scheme.public_size(&info) > 0);

        let enc = scheme.encode_info(&info);
        let back = scheme.decode_info(&enc).expect("round-trip");
        assert_eq!(back, info);

        for row in &members {
            assert_eq!(
                scheme.derive_key(&back, &row.nym, &row.css_concat),
                Some(key.clone()),
                "member must derive through the wire round-trip"
            );
        }
        let mut outsider = vec![0u8; 16];
        r.fill_bytes(&mut outsider);
        assert_ne!(
            scheme.derive_key(&back, "pn-outsider", &outsider),
            Some(key.clone())
        );

        for cut in 0..enc.len() {
            let _ = scheme.decode_info(&enc[..cut]); // must not panic
        }
        let mut extra = enc.clone();
        extra.push(0);
        assert_eq!(scheme.decode_info(&extra), None, "trailing byte rejected");
    }

    #[test]
    fn acv_satisfies_the_contract() {
        exercise(&AcvBgkm::default());
    }

    #[test]
    fn sharded_acv_satisfies_the_contract() {
        exercise(&ShardedAcvBgkm::new(AcvBgkm::default(), 3));
    }

    #[test]
    fn marker_satisfies_the_contract() {
        exercise(&MarkerGkm::new());
    }

    #[test]
    fn secure_lock_satisfies_the_contract() {
        exercise(&SecureLockGkm::new());
    }

    #[test]
    fn simplistic_satisfies_the_contract() {
        exercise(&SimplisticGkm::new());
    }
}
