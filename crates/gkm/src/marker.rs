//! The marker-based GKM scheme proposed by the paper's anonymous reviewer
//! (§VIII-D) — implemented as a comparison baseline.
//!
//! The publisher picks a well-known marker `m`, a key `k` and a nonce `z`,
//! and broadcasts, for every access row, `(k‖m) ⊕ H(r₁‖…‖r_w‖z)`.
//! A subscriber XORs each broadcast word with `H(own CSSs‖z)` and accepts
//! the word whose tail reproduces the marker.
//!
//! The paper's §VIII-D critique is reproduced in tests and benches:
//! * O(N) broadcast size with a 32-byte word per row (vs ~10 bytes per
//!   row for the compressed ACV),
//! * the key must be shorter than the hash output,
//! * reusing `z` across two documents with different keys lets anyone who
//!   learns `k₁` compute `k₂` ([`key_reuse_attack`] demonstrates it).

use crate::acv::AccessRow;
use pbcd_crypto::sha256;
use pbcd_docs::wire;
use rand::RngCore;

/// The public, well-known marker (16 bytes).
pub const MARKER: [u8; 16] = *b"PBCD-MARKER-v1.0";
/// Key length: hash output minus marker length.
pub const KEY_LEN: usize = 32 - MARKER.len();

/// Broadcast public info for the marker scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkerPublicInfo {
    /// The session nonce `z`.
    pub z: [u8; 16],
    /// One masked word `(k‖m) ⊕ H(css‖z)` per access row.
    pub words: Vec<[u8; 32]>,
}

/// The marker-based GKM scheme.
#[derive(Debug, Clone, Default)]
pub struct MarkerGkm;

impl MarkerGkm {
    /// Creates the scheme.
    pub fn new() -> Self {
        Self
    }

    /// Derived key length in bytes.
    pub fn key_len(&self) -> usize {
        KEY_LEN
    }

    /// Publisher: picks a fresh key and nonce, masks one word per row.
    pub fn rekey<R: RngCore + ?Sized>(
        &self,
        rows: &[AccessRow],
        rng: &mut R,
    ) -> (Vec<u8>, MarkerPublicInfo) {
        let mut key = vec![0u8; KEY_LEN];
        rng.fill_bytes(&mut key);
        let mut z = [0u8; 16];
        rng.fill_bytes(&mut z);
        let info = self.rekey_with(rows, &key, &z);
        (key, info)
    }

    /// Deterministic variant used to demonstrate the nonce-reuse weakness.
    pub fn rekey_with(&self, rows: &[AccessRow], key: &[u8], z: &[u8; 16]) -> MarkerPublicInfo {
        assert_eq!(key.len(), KEY_LEN, "key must leave room for the marker");
        let mut plain = [0u8; 32];
        plain[..KEY_LEN].copy_from_slice(key);
        plain[KEY_LEN..].copy_from_slice(&MARKER);
        let words = rows
            .iter()
            .map(|row| {
                let mask = mask(&row.css_concat, z);
                let mut w = [0u8; 32];
                for i in 0..32 {
                    w[i] = plain[i] ^ mask[i];
                }
                w
            })
            .collect();
        MarkerPublicInfo { z: *z, words }
    }

    /// Subscriber: tries every word; returns the key whose marker checks
    /// out. Unlike ACV-BGKM this scheme *can* signal failure directly.
    pub fn derive_key(&self, info: &MarkerPublicInfo, css_concat: &[u8]) -> Option<Vec<u8>> {
        let mask = mask(css_concat, &info.z);
        for w in &info.words {
            let mut plain = [0u8; 32];
            for i in 0..32 {
                plain[i] = w[i] ^ mask[i];
            }
            if plain[KEY_LEN..] == MARKER {
                return Some(plain[..KEY_LEN].to_vec());
            }
        }
        None
    }

    /// Broadcast size in bytes.
    pub fn public_size(&self, info: &MarkerPublicInfo) -> usize {
        16 + 32 * info.words.len()
    }
}

impl MarkerPublicInfo {
    /// Wire encoding: `z (16) ‖ word_count u32 ‖ word*` (32 bytes each).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + 32 * self.words.len());
        out.extend_from_slice(&self.z);
        out.extend_from_slice(&(self.words.len() as u32).to_be_bytes());
        for w in &self.words {
            out.extend_from_slice(w);
        }
        out
    }

    /// Parses the wire encoding via the audited [`pbcd_docs::wire`]
    /// helpers; strict — no trailing bytes, count bounded by the input.
    pub fn decode(data: &[u8]) -> Option<Self> {
        let mut buf = data;
        let z = wire::get_fixed::<16>(&mut buf).ok()?;
        let count = wire::get_u32(&mut buf).ok()? as usize;
        if count != buf.len() / 32 {
            return None;
        }
        let mut words = Vec::with_capacity(count);
        for _ in 0..count {
            words.push(wire::get_fixed::<32>(&mut buf).ok()?);
        }
        if !buf.is_empty() {
            return None;
        }
        Some(Self { z, words })
    }
}

fn mask(css_concat: &[u8], z: &[u8]) -> [u8; 32] {
    let mut input = Vec::with_capacity(css_concat.len() + z.len());
    input.extend_from_slice(css_concat);
    input.extend_from_slice(z);
    sha256(&input)
}

/// The §VIII-D attack: two documents sharing one `z` but carrying keys
/// `k₁ ≠ k₂` expose `k₂` to anyone who knows `k₁`, because
/// `w₁ ⊕ w₂ = (k₁‖m) ⊕ (k₂‖m)` cancels both the mask **and** the marker.
/// Returns the recovered `k₂`.
pub fn key_reuse_attack(word_doc1: &[u8; 32], word_doc2: &[u8; 32], known_k1: &[u8]) -> Vec<u8> {
    assert_eq!(known_k1.len(), KEY_LEN);
    (0..KEY_LEN)
        .map(|i| word_doc1[i] ^ word_doc2[i] ^ known_k1[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(700)
    }

    fn rows<R: Rng>(r: &mut R, n: usize) -> Vec<AccessRow> {
        (0..n)
            .map(|i| {
                let mut css = vec![0u8; 16];
                r.fill_bytes(&mut css);
                AccessRow {
                    nym: format!("pn-{i}"),
                    css_concat: css,
                }
            })
            .collect()
    }

    #[test]
    fn members_derive_outsiders_fail() {
        let g = MarkerGkm::new();
        let mut r = rng();
        let rows = rows(&mut r, 6);
        let (key, info) = g.rekey(&rows, &mut r);
        for row in &rows {
            assert_eq!(g.derive_key(&info, &row.css_concat), Some(key.clone()));
        }
        let mut outsider = vec![0u8; 16];
        r.fill_bytes(&mut outsider);
        assert_eq!(g.derive_key(&info, &outsider), None);
    }

    #[test]
    fn empty_rows_derivable_by_nobody() {
        let g = MarkerGkm::new();
        let mut r = rng();
        let (_, info) = g.rekey(&[], &mut r);
        assert_eq!(g.derive_key(&info, b"anything"), None);
        assert_eq!(g.public_size(&info), 16);
    }

    #[test]
    fn rekey_revokes() {
        let g = MarkerGkm::new();
        let mut r = rng();
        let mut members = rows(&mut r, 4);
        let revoked = members.pop().expect("four rows");
        let (key, info) = g.rekey(&members, &mut r);
        assert_eq!(g.derive_key(&info, &revoked.css_concat), None);
        assert_eq!(g.derive_key(&info, &members[0].css_concat), Some(key));
    }

    #[test]
    fn public_size_is_linear_32_bytes_per_row() {
        let g = MarkerGkm::new();
        let mut r = rng();
        for n in [1usize, 10, 100] {
            let rows = rows(&mut r, n);
            let (_, info) = g.rekey(&rows, &mut r);
            assert_eq!(g.public_size(&info), 16 + 32 * n);
        }
    }

    #[test]
    fn nonce_reuse_leaks_second_key() {
        // Reproduces the paper's §VIII-D flexibility/security critique.
        let g = MarkerGkm::new();
        let mut r = rng();
        let rows = rows(&mut r, 3);
        let z = [7u8; 16];
        let mut k1 = vec![0u8; KEY_LEN];
        let mut k2 = vec![0u8; KEY_LEN];
        r.fill_bytes(&mut k1);
        r.fill_bytes(&mut k2);
        let doc1 = g.rekey_with(&rows, &k1, &z);
        let doc2 = g.rekey_with(&rows, &k2, &z);
        // Attacker knows k1 and the two broadcasts; recovers k2 without any CSS.
        let recovered = key_reuse_attack(&doc1.words[0], &doc2.words[0], &k1);
        assert_eq!(recovered, k2);
        // The ACV scheme's analogue (fresh ACVs over shared z) does not have
        // this property — covered in `acv::tests::batch_rekey_*` and the
        // cross-scheme integration tests.
    }

    #[test]
    fn key_must_fit_under_hash_output() {
        // The §VIII-D restriction: key length strictly less than hash size.
        // (Computed through a runtime value so the check exercises the
        // public constants rather than constant-folding away.)
        let g = MarkerGkm::new();
        assert!(g.key_len() < 32);
        assert_eq!(g.key_len() + MARKER.len(), 32);
    }
}
