//! Logical Key Hierarchy (Wong–Lam "Keystone" / OFT family; paper §II) —
//! the classic stateful GKM baseline.
//!
//! A binary tree of keys: each member holds the keys on its leaf-to-root
//! path; the root key is the group key. Joins and leaves replace the keys
//! on one path and broadcast each new key encrypted under its children's
//! keys — O(log n) rekey messages, but **members must track state**, the
//! very property the paper's ACV-BGKM eliminates (its rekey is stateless
//! for subscribers). Benches compare rekey message counts and sizes.

use pbcd_crypto::{derive_key, AuthKey};
use rand::RngCore;
use std::collections::BTreeMap;

/// A broadcast rekey message: the new key of `node`, wrapped under the
/// current key of `wrapping_node`.
#[derive(Debug, Clone)]
pub struct RekeyMessage {
    /// Tree node whose key changed.
    pub node: usize,
    /// Node whose key encrypts the payload (a child of `node`).
    pub wrapping_node: usize,
    /// Authenticated ciphertext of the new key.
    pub wrapped: Vec<u8>,
}

/// Publisher-side LKH state: a fixed-capacity complete binary tree.
pub struct LkhPublisher {
    capacity: usize,
    /// Keys for all `2·capacity − 1` nodes (`None` = vacant subtree).
    keys: Vec<Option<Vec<u8>>>,
    members: BTreeMap<String, usize>,
    free_leaves: Vec<usize>,
}

/// Member-side LKH state: the keys this member currently knows.
pub struct LkhMember {
    leaf: usize,
    keys: BTreeMap<usize, Vec<u8>>,
}

const KEY_LEN: usize = 16;

impl LkhPublisher {
    /// Creates a tree with capacity for `capacity` members (rounded up to a
    /// power of two).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        let first_leaf = capacity - 1;
        Self {
            capacity,
            keys: vec![None; 2 * capacity - 1],
            members: BTreeMap::new(),
            free_leaves: (first_leaf..2 * capacity - 1).rev().collect(),
        }
    }

    /// Current group key (root), if any member exists.
    pub fn group_key(&self) -> Option<&Vec<u8>> {
        self.keys[0].as_ref()
    }

    /// Number of members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Adds a member whose leaf key both sides derive from its CSS.
    /// Returns the member's initial state and the broadcast rekey messages
    /// (the new member's path keys are wrapped under its leaf key, so the
    /// same broadcast serves old and new members; backward secrecy holds
    /// because all path keys are replaced).
    pub fn join<R: RngCore + ?Sized>(
        &mut self,
        nym: &str,
        css: &[u8],
        rng: &mut R,
    ) -> Option<(LkhMember, Vec<RekeyMessage>)> {
        if self.members.contains_key(nym) {
            return None;
        }
        let leaf = self.free_leaves.pop()?;
        let leaf_key = derive_key(css, "pbcd-lkh-leaf", KEY_LEN);
        self.keys[leaf] = Some(leaf_key.clone());
        self.members.insert(nym.to_string(), leaf);
        let messages = self.refresh_path(leaf, rng);
        let mut member = LkhMember {
            leaf,
            keys: BTreeMap::from([(leaf, leaf_key)]),
        };
        member.apply(&messages);
        Some((member, messages))
    }

    /// Removes a member and refreshes its path (forward secrecy).
    pub fn leave<R: RngCore + ?Sized>(
        &mut self,
        nym: &str,
        rng: &mut R,
    ) -> Option<Vec<RekeyMessage>> {
        let leaf = self.members.remove(nym)?;
        self.keys[leaf] = None;
        self.free_leaves.push(leaf);
        Some(self.refresh_path(leaf, rng))
    }

    /// Replaces every key on the path from `leaf`'s parent to the root,
    /// wrapping each new key under the keys of the node's occupied
    /// children.
    fn refresh_path<R: RngCore + ?Sized>(&mut self, leaf: usize, rng: &mut R) -> Vec<RekeyMessage> {
        let mut messages = Vec::new();
        let mut node = leaf;
        while node != 0 {
            node = (node - 1) / 2;
            let (l, r) = (2 * node + 1, 2 * node + 2);
            if self.keys[l].is_none() && self.keys[r].is_none() {
                self.keys[node] = None;
                continue;
            }
            let mut new_key = vec![0u8; KEY_LEN];
            rng.fill_bytes(&mut new_key);
            for child in [l, r] {
                if let Some(child_key) = &self.keys[child] {
                    let wrap = AuthKey::from_master(child_key);
                    messages.push(RekeyMessage {
                        node,
                        wrapping_node: child,
                        wrapped: wrap.encrypt(rng, &new_key),
                    });
                }
            }
            self.keys[node] = Some(new_key);
        }
        messages
    }

    /// Total broadcast bytes for a batch of rekey messages.
    pub fn messages_size(messages: &[RekeyMessage]) -> usize {
        messages.iter().map(|m| 16 + m.wrapped.len()).sum()
    }

    /// Tree capacity (leaves).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl LkhMember {
    /// Applies a broadcast rekey batch, learning every new path key it is
    /// entitled to. Iterates to a fixpoint because a batch may wrap a
    /// parent key under another key from the same batch.
    pub fn apply(&mut self, messages: &[RekeyMessage]) {
        loop {
            let mut progressed = false;
            for msg in messages {
                if self.keys.contains_key(&msg.node) {
                    // Key already replaced this round? Only replace once per
                    // batch: later wraps of the same node carry the same key.
                    continue;
                }
                if let Some(wrapping) = self.keys.get(&msg.wrapping_node) {
                    if let Ok(new_key) = AuthKey::from_master(wrapping).decrypt(&msg.wrapped) {
                        self.keys.insert(msg.node, new_key);
                        progressed = true;
                    }
                }
            }
            if !progressed {
                return;
            }
        }
    }

    /// Applies a batch that *replaces* keys this member already holds
    /// (leave rekeys): stale path keys are dropped first.
    pub fn apply_replacing(&mut self, messages: &[RekeyMessage]) {
        let replaced: Vec<usize> = messages.iter().map(|m| m.node).collect();
        for node in replaced {
            self.keys.remove(&node);
        }
        self.apply(messages);
    }

    /// The member's view of the group key.
    pub fn group_key(&self) -> Option<&Vec<u8>> {
        self.keys.get(&0)
    }

    /// The member's leaf node index.
    pub fn leaf(&self) -> usize {
        self.leaf
    }

    /// Number of keys held — O(log capacity).
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1000)
    }

    #[test]
    fn join_establishes_shared_group_key() {
        let mut pubr = LkhPublisher::new(8);
        let mut r = rng();
        let (alice, _) = pubr.join("alice", b"css-alice", &mut r).unwrap();
        assert_eq!(alice.group_key(), pubr.group_key());
        let (bob, msgs) = pubr.join("bob", b"css-bob", &mut r).unwrap();
        assert_eq!(bob.group_key(), pubr.group_key());
        assert!(!msgs.is_empty());
    }

    #[test]
    fn existing_members_follow_joins() {
        let mut pubr = LkhPublisher::new(8);
        let mut r = rng();
        let (mut alice, _) = pubr.join("alice", b"a", &mut r).unwrap();
        let (bob, msgs) = pubr.join("bob", b"b", &mut r).unwrap();
        alice.apply_replacing(&msgs);
        assert_eq!(alice.group_key(), pubr.group_key());
        assert_eq!(bob.group_key(), pubr.group_key());
    }

    #[test]
    fn backward_secrecy_on_join() {
        let mut pubr = LkhPublisher::new(8);
        let mut r = rng();
        let (alice, _) = pubr.join("alice", b"a", &mut r).unwrap();
        let old_root = pubr.group_key().unwrap().clone();
        let (carol, _) = pubr.join("carol", b"c", &mut r).unwrap();
        // Carol cannot know the pre-join key; the root changed.
        assert_ne!(pubr.group_key().unwrap(), &old_root);
        assert_eq!(carol.group_key(), pubr.group_key());
        let _ = alice;
    }

    #[test]
    fn forward_secrecy_on_leave() {
        let mut pubr = LkhPublisher::new(8);
        let mut r = rng();
        let (mut alice, _) = pubr.join("alice", b"a", &mut r).unwrap();
        let (bob, m2) = pubr.join("bob", b"b", &mut r).unwrap();
        alice.apply_replacing(&m2);
        let mut bob = bob;
        let msgs = pubr.leave("alice", &mut r).unwrap();
        bob.apply_replacing(&msgs);
        assert_eq!(bob.group_key(), pubr.group_key());
        // Alice processes the same broadcast but cannot decrypt the new
        // path keys (her leaf key no longer wraps anything).
        let mut stale_alice_keys = alice.keys.clone();
        alice.apply_replacing(&msgs);
        assert_ne!(alice.group_key(), pubr.group_key());
        stale_alice_keys.remove(&0);
        let _ = stale_alice_keys;
    }

    #[test]
    fn rekey_messages_are_logarithmic() {
        let mut pubr = LkhPublisher::new(64);
        let mut r = rng();
        let mut members = Vec::new();
        for i in 0..64 {
            let nym = format!("m{i}");
            let css = format!("css{i}");
            let (m, msgs) = pubr.join(&nym, css.as_bytes(), &mut r).unwrap();
            for existing in &mut members {
                let m: &mut LkhMember = existing;
                m.apply_replacing(&msgs);
            }
            members.push(m);
        }
        // A leave in a full 64-leaf tree touches log2(64) = 6 path nodes,
        // each wrapped under ≤ 2 children ⇒ ≤ 12 messages.
        let msgs = pubr.leave("m13", &mut r).unwrap();
        assert!(msgs.len() <= 12, "got {} messages", msgs.len());
        assert!(msgs.len() >= 6);
        // Everyone else still follows.
        for (i, m) in members.iter_mut().enumerate() {
            if i == 13 {
                continue;
            }
            m.apply_replacing(&msgs);
            assert_eq!(m.group_key(), pubr.group_key(), "member {i}");
        }
    }

    #[test]
    fn member_state_is_logarithmic() {
        let mut pubr = LkhPublisher::new(64);
        let mut r = rng();
        let (m, _) = pubr.join("x", b"css", &mut r).unwrap();
        // Leaf + path to root: ≤ log2(64) + 1 = 7 keys.
        assert!(m.key_count() <= 7);
    }

    #[test]
    fn capacity_exhaustion_and_duplicate_joins() {
        let mut pubr = LkhPublisher::new(2);
        let mut r = rng();
        assert!(pubr.join("a", b"a", &mut r).is_some());
        assert!(pubr.join("a", b"a2", &mut r).is_none(), "duplicate nym");
        assert!(pubr.join("b", b"b", &mut r).is_some());
        assert!(pubr.join("c", b"c", &mut r).is_none(), "tree full");
        assert!(pubr.leave("a", &mut r).is_some());
        assert!(pubr.join("c", b"c", &mut r).is_some(), "slot reclaimed");
        assert!(pubr.leave("zz", &mut r).is_none());
    }
}
