//! Property-based tests for the GKM schemes: soundness and exclusion hold
//! for arbitrary membership shapes, CSS lengths and scheme parameters.

use pbcd_gkm::{AccessRow, AcvBgkm, AcvPublicInfo, MarkerGkm, SecureLockGkm, ShardedAcvBgkm};
use pbcd_math::FpCtx;
use proptest::prelude::*;
use rand::{RngCore, SeedableRng};

fn rows_from_seed(seed: u64, count: usize, css_len: usize) -> Vec<AccessRow> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let mut css = vec![0u8; css_len];
            rng.fill_bytes(&mut css);
            AccessRow {
                nym: format!("pn-{i:04}"),
                css_concat: css,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn acv_soundness_and_exclusion(
        seed in any::<u64>(),
        count in 1usize..24,
        css_len in 1usize..64,
        extra in 0usize..8,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xACE);
        let rows = rows_from_seed(seed, count, css_len);
        let scheme = AcvBgkm::new(FpCtx::new(pbcd_math::gkm_q80()), 2, extra);
        let (key, info) = scheme.rekey(&rows, &mut rng);
        prop_assert_eq!(info.zs.len(), (count + extra).max(1));
        for row in &rows {
            prop_assert_eq!(scheme.derive_key(&info, &row.css_concat), key.clone());
        }
        // An outsider CSS (fresh random bytes) never derives the key.
        let mut outsider = vec![0u8; css_len];
        rng.fill_bytes(&mut outsider);
        if !rows.iter().any(|r| r.css_concat == outsider) {
            prop_assert_ne!(scheme.derive_key(&info, &outsider), key);
        }
    }

    #[test]
    fn acv_rekey_invalidates_prior_keys(seed in any::<u64>(), count in 1usize..16) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF);
        let rows = rows_from_seed(seed, count, 16);
        let scheme = AcvBgkm::default();
        let (k1, i1) = scheme.rekey(&rows, &mut rng);
        let (k2, i2) = scheme.rekey(&rows, &mut rng);
        prop_assert_ne!(&k1, &k2);
        // Keys derived from the *old* info still equal the old key, not the new.
        prop_assert_eq!(scheme.derive_key(&i1, &rows[0].css_concat), k1);
        prop_assert_eq!(scheme.derive_key(&i2, &rows[0].css_concat), k2);
    }

    #[test]
    fn acv_public_info_roundtrip(seed in any::<u64>(), count in 0usize..16) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC0DE);
        let rows = rows_from_seed(seed, count, 16);
        let scheme = AcvBgkm::default();
        let (_, info) = scheme.rekey(&rows, &mut rng);
        let enc = info.encode();
        prop_assert_eq!(AcvPublicInfo::decode(&enc), Some(info));
        // Any truncation fails to decode.
        for cut in [0, 1, enc.len() / 2, enc.len().saturating_sub(1)] {
            if cut < enc.len() {
                prop_assert_eq!(AcvPublicInfo::decode(&enc[..cut]), None);
            }
        }
    }

    #[test]
    fn sharded_agrees_with_flat_on_membership(
        seed in any::<u64>(),
        count in 1usize..32,
        cap in 1usize..16,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x54A2);
        let rows = rows_from_seed(seed, count, 16);
        let sharded = ShardedAcvBgkm::new(AcvBgkm::default(), cap);
        let (key, info) = sharded.rekey(&rows, &mut rng);
        prop_assert_eq!(info.num_shards as usize, count.div_ceil(cap).max(1));
        for row in &rows {
            prop_assert_eq!(sharded.derive_key(&info, &row.nym, &row.css_concat), key.clone());
        }
    }

    #[test]
    fn marker_scheme_membership(seed in any::<u64>(), count in 0usize..24) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x3A3);
        let rows = rows_from_seed(seed, count, 16);
        let scheme = MarkerGkm::new();
        let (key, info) = scheme.rekey(&rows, &mut rng);
        for row in &rows {
            prop_assert_eq!(scheme.derive_key(&info, &row.css_concat), Some(key.clone()));
        }
        let mut outsider = vec![0u8; 16];
        rng.fill_bytes(&mut outsider);
        if !rows.iter().any(|r| r.css_concat == outsider) {
            prop_assert_eq!(scheme.derive_key(&info, &outsider), None);
        }
    }

    #[test]
    fn secure_lock_membership(seed in any::<u64>(), count in 0usize..10) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x10C4);
        let rows = rows_from_seed(seed, count, 16);
        let scheme = SecureLockGkm::new();
        let (key, info) = scheme.rekey(&rows, &mut rng);
        for row in &rows {
            prop_assert_eq!(scheme.derive_key(&info, &row.css_concat), key.clone());
        }
    }
}
