//! Property-based tests for the document layer: XML roundtrips,
//! segmentation/reassembly losslessness and container codec robustness.

use pbcd_docs::{
    parse, reassemble, segment, BroadcastContainer, Element, EncryptedGroup, EncryptedSegment,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Recursively generated XML trees with text and attributes.
fn arb_element() -> impl Strategy<Value = Element> {
    let name = "[a-zA-Z][a-zA-Z0-9]{0,6}";
    let text = "[ -~&&[^<>&\"']]{0,16}"; // printable ASCII minus markup
    let leaf = (name, prop::option::of(text)).prop_map(|(n, t)| {
        let el = Element::new(&n);
        match t {
            Some(t) if !t.trim().is_empty() => el.text(t.trim()),
            _ => el,
        }
    });
    leaf.prop_recursive(3, 24, 4, move |inner| {
        (
            "[a-zA-Z][a-zA-Z0-9]{0,6}",
            prop::collection::vec(("[a-z]{1,5}", "[a-zA-Z0-9 ]{0,8}"), 0..3),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(n, attrs, children)| {
                let mut el = Element::new(&n);
                for (k, v) in attrs {
                    el = el.attr(&k, &v);
                }
                for c in children {
                    el = el.child(c);
                }
                el
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xml_roundtrip_compact_and_pretty(doc in arb_element()) {
        let compact = parse(&doc.to_xml()).expect("compact reparse");
        prop_assert_eq!(&compact, &doc);
        let pretty = parse(&doc.to_xml_pretty()).expect("pretty reparse");
        prop_assert_eq!(&pretty, &doc);
    }

    #[test]
    fn segmentation_reassembly_is_lossless(doc in arb_element(), picks in prop::collection::vec(any::<bool>(), 8)) {
        // Choose up to 8 tag names that happen to exist in the tree.
        let mut tags: Vec<String> = Vec::new();
        collect_tags(&doc, &mut tags);
        tags.sort();
        tags.dedup();
        // The root tag cannot be a segment (segments replace children).
        tags.retain(|t| t != &doc.name);
        let chosen: Vec<&str> = tags
            .iter()
            .zip(picks.iter().chain(std::iter::repeat(&false)))
            .filter(|(_, &keep)| keep)
            .map(|(t, _)| t.as_str())
            .collect();
        let seg = segment(&doc, "d", &chosen);
        let all: BTreeMap<u32, Element> = seg
            .segments
            .iter()
            .map(|s| (s.id, s.content.clone()))
            .collect();
        prop_assert_eq!(reassemble(&seg.skeleton, &all), doc);
    }

    #[test]
    fn container_roundtrip(
        epoch in any::<u64>(),
        name in "[a-zA-Z0-9._-]{0,16}",
        skeleton in "[ -~&&[^\"]]{0,64}",
        groups in prop::collection::vec(
            (
                any::<u32>(),
                prop::collection::vec(any::<u8>(), 0..64),
                prop::collection::vec(
                    (any::<u32>(), "[a-zA-Z]{1,8}", prop::collection::vec(any::<u8>(), 0..64)),
                    0..4,
                ),
            ),
            0..4,
        ),
    ) {
        let container = BroadcastContainer {
            epoch,
            document_name: name,
            skeleton_xml: skeleton,
            groups: groups
                .into_iter()
                .map(|(config_id, key_info, segs)| EncryptedGroup {
                    config_id,
                    key_info,
                    segments: segs
                        .into_iter()
                        .map(|(segment_id, tag, ciphertext)| EncryptedSegment {
                            segment_id,
                            tag,
                            ciphertext,
                        })
                        .collect(),
                })
                .collect(),
        };
        let enc = container.encode().expect("bounded fields encode");
        prop_assert_eq!(BroadcastContainer::decode(&enc), Ok(container));
    }

    #[test]
    fn container_decode_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = BroadcastContainer::decode(&data);
    }

    #[test]
    fn xml_parse_never_panics_on_garbage(s in "[ -~]{0,128}") {
        let _ = parse(&s);
    }
}

fn collect_tags(el: &Element, out: &mut Vec<String>) {
    out.push(el.name.clone());
    for c in el.child_elements() {
        collect_tags(c, out);
    }
}
