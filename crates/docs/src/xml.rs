//! A small XML subset: elements, attributes, text, comments.
//!
//! The paper's motivating workload is selective dissemination of XML
//! documents (EHR.xml in Example 4); this module provides enough XML to
//! parse, segment, redact and reassemble such documents. Not supported (and
//! rejected with errors rather than mis-parsed): DTDs, CDATA, processing
//! instructions other than the leading `<?xml …?>` declaration, and
//! namespaces beyond plain-prefix tag names.

/// Parse errors with byte positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl core::fmt::Display for XmlError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "XML error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for XmlError {}

/// An XML element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

/// An XML node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// Text content (whitespace-trimmed; empty text is dropped).
    Text(String),
}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: adds an attribute.
    pub fn attr(mut self, key: &str, value: &str) -> Self {
        self.attributes.push((key.to_string(), value.to_string()));
        self
    }

    /// Builder: appends a child element.
    pub fn child(mut self, el: Element) -> Self {
        self.children.push(Node::Element(el));
        self
    }

    /// Builder: appends text content.
    pub fn text(mut self, t: &str) -> Self {
        self.children.push(Node::Text(t.to_string()));
        self
    }

    /// Attribute lookup.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Child elements (skipping text nodes).
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// Depth-first search for the first descendant element (or self) with
    /// the given tag name.
    pub fn find(&self, name: &str) -> Option<&Element> {
        if self.name == name {
            return Some(self);
        }
        self.child_elements().find_map(|c| c.find(name))
    }

    /// Concatenated text content of this element's direct text children.
    pub fn direct_text(&self) -> String {
        self.children
            .iter()
            .filter_map(|n| match n {
                Node::Text(t) => Some(t.as_str()),
                Node::Element(_) => None,
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Serializes to a compact XML string.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_xml(&mut out, 0, false);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_xml_pretty(&self) -> String {
        let mut out = String::new();
        self.write_xml(&mut out, 0, true);
        out
    }

    fn write_xml(&self, out: &mut String, depth: usize, pretty: bool) {
        let pad = if pretty {
            "  ".repeat(depth)
        } else {
            String::new()
        };
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            if pretty {
                out.push('\n');
            }
            return;
        }
        out.push('>');
        let only_text = self.children.iter().all(|n| matches!(n, Node::Text(_)));
        if pretty && !only_text {
            out.push('\n');
        }
        for child in &self.children {
            match child {
                Node::Element(e) => e.write_xml(out, depth + 1, pretty),
                Node::Text(t) => {
                    if pretty && !only_text {
                        out.push_str(&"  ".repeat(depth + 1));
                    }
                    out.push_str(&escape(t));
                    if pretty && !only_text {
                        out.push('\n');
                    }
                }
            }
        }
        if pretty && !only_text {
            out.push_str(&pad);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
        if pretty {
            out.push('\n');
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Parses a single XML document (one root element, optional leading
/// declaration, comments allowed anywhere).
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_ws_and_comments()?;
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> XmlError {
        XmlError {
            position: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                let end = find_from(self.bytes, self.pos + 4, "-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.pos = end + 3;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            let end = find_from(self.bytes, self.pos, "?>")
                .ok_or_else(|| self.err("unterminated XML declaration"))?;
            self.pos = end + 2;
        }
        self.skip_ws_and_comments()
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut el = Element::new(&name);
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    if !self.starts_with("/>") {
                        return Err(self.err("expected '/>'"));
                    }
                    self.pos += 2;
                    return Ok(el);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek();
                    if !matches!(quote, Some(b'"') | Some(b'\'')) {
                        return Err(self.err("expected quoted attribute value"));
                    }
                    let q = quote.expect("checked") as char;
                    self.pos += 1;
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c as char == q {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek().map(|c| c as char) != Some(q) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]);
                    el.attributes.push((key, unescape(&raw)));
                    self.pos += 1;
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        // Children until the matching close tag.
        loop {
            if self.starts_with("<!--") {
                let end = find_from(self.bytes, self.pos + 4, "-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.pos = end + 3;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(&format!(
                        "mismatched close tag: expected </{name}>, found </{close}>"
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' after close tag"));
                }
                self.pos += 1;
                return Ok(el);
            }
            match self.peek() {
                Some(b'<') => {
                    let child = self.parse_element()?;
                    el.children.push(Node::Element(child));
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let text = String::from_utf8_lossy(&self.bytes[start..self.pos]);
                    let trimmed = text.trim();
                    if !trimmed.is_empty() {
                        el.children.push(Node::Text(unescape(trimmed)));
                    }
                }
                None => return Err(self.err(&format!("unclosed element <{name}>"))),
            }
        }
    }
}

fn find_from(haystack: &[u8], from: usize, needle: &str) -> Option<usize> {
    let n = needle.as_bytes();
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(n.len())
        .position(|w| w == n)
        .map(|i| i + from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_document() {
        let doc = parse("<root><a>hello</a><b x=\"1\"/></root>").unwrap();
        assert_eq!(doc.name, "root");
        assert_eq!(doc.children.len(), 2);
        assert_eq!(doc.find("a").unwrap().direct_text(), "hello");
        assert_eq!(doc.find("b").unwrap().get_attr("x"), Some("1"));
        assert!(doc.find("c").is_none());
    }

    #[test]
    fn parse_with_prolog_comments_whitespace() {
        let src = r#"<?xml version="1.0"?>
            <!-- header comment -->
            <PatientRecord>
                <!-- inner comment -->
                <ContactInfo>   Jane Doe  </ContactInfo>
            </PatientRecord>"#;
        let doc = parse(src).unwrap();
        assert_eq!(doc.name, "PatientRecord");
        assert_eq!(doc.find("ContactInfo").unwrap().direct_text(), "Jane Doe");
    }

    #[test]
    fn roundtrip_compact() {
        let src = "<r a=\"v\"><x>t</x><y/><z>1</z></r>";
        let doc = parse(src).unwrap();
        assert_eq!(doc.to_xml(), src);
        // Pretty output reparses to the same tree.
        let again = parse(&doc.to_xml_pretty()).unwrap();
        assert_eq!(again, doc);
    }

    #[test]
    fn escaping_roundtrip() {
        let doc = Element::new("t").attr("a", "x<>&\"y").text("5 < 6 & 7 > 2");
        let reparsed = parse(&doc.to_xml()).unwrap();
        assert_eq!(reparsed.get_attr("a"), Some("x<>&\"y"));
        assert_eq!(reparsed.direct_text(), "5 < 6 & 7 > 2");
    }

    #[test]
    fn errors_have_positions() {
        assert!(parse("<a><b></a>").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse("<a></a><b></b>").is_err());
        assert!(parse("<a x=1></a>").is_err());
        assert!(parse("<a><!-- no end </a>").is_err());
        assert!(parse("").is_err());
        let err = parse("<a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn nested_depth() {
        let mut src = String::new();
        for i in 0..50 {
            src.push_str(&format!("<n{i}>"));
        }
        for i in (0..50).rev() {
            src.push_str(&format!("</n{i}>"));
        }
        let doc = parse(&src).unwrap();
        assert!(doc.find("n49").is_some());
    }

    #[test]
    fn builder_api() {
        let doc = Element::new("PatientRecord")
            .child(Element::new("ContactInfo").text("Alice"))
            .child(Element::new("BillingInfo").attr("currency", "USD"));
        assert_eq!(doc.child_elements().count(), 2);
        assert_eq!(doc.find("ContactInfo").unwrap().direct_text(), "Alice");
    }
}
