//! Document segmentation (paper §V-C): splitting a document into
//! subdocuments along policy boundaries, and reassembling what a subscriber
//! could decrypt.
//!
//! Segmentation replaces each policy-relevant element with a
//! `<pbcd-segment id="…"/>` placeholder in the *skeleton*; the extracted
//! elements become numbered segments that the publisher encrypts per policy
//! configuration. Reassembly substitutes decrypted segments back and marks
//! inaccessible ones `<pbcd-redacted/>`.

use crate::xml::{Element, Node};
use std::collections::BTreeMap;

/// Placeholder tag used in skeletons.
pub const PLACEHOLDER_TAG: &str = "pbcd-segment";
/// Tag substituted for segments the subscriber could not decrypt.
pub const REDACTED_TAG: &str = "pbcd-redacted";

/// An extracted subdocument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Stable id referenced by the skeleton placeholder.
    pub id: u32,
    /// The original tag name (the policy object name).
    pub tag: String,
    /// The extracted element.
    pub content: Element,
}

/// A segmented document: skeleton plus extracted segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentedDocument {
    /// Document name (the `D` of the paper's `(s, o, D)` policies).
    pub name: String,
    /// The document with segments replaced by placeholders.
    pub skeleton: Element,
    /// Extracted segments in document order.
    pub segments: Vec<Segment>,
}

/// Splits `doc` along the given subdocument tag names (outermost match
/// wins; nested matches inside an extracted segment stay embedded in it,
/// mirroring the paper's Example 4 where `acp₃` covers the whole
/// `ClinicalRecord` subtree).
pub fn segment(doc: &Element, doc_name: &str, subdoc_tags: &[&str]) -> SegmentedDocument {
    let mut segments = Vec::new();
    let skeleton = walk(doc, subdoc_tags, &mut segments);
    SegmentedDocument {
        name: doc_name.to_string(),
        skeleton,
        segments,
    }
}

fn walk(el: &Element, tags: &[&str], out: &mut Vec<Segment>) -> Element {
    let mut clone = Element::new(&el.name);
    clone.attributes = el.attributes.clone();
    for child in &el.children {
        match child {
            Node::Text(t) => clone.children.push(Node::Text(t.clone())),
            Node::Element(e) => {
                if tags.contains(&e.name.as_str()) {
                    let id = out.len() as u32;
                    out.push(Segment {
                        id,
                        tag: e.name.clone(),
                        content: e.clone(),
                    });
                    clone.children.push(Node::Element(
                        Element::new(PLACEHOLDER_TAG).attr("id", &id.to_string()),
                    ));
                } else {
                    clone.children.push(Node::Element(walk(e, tags, out)));
                }
            }
        }
    }
    clone
}

/// Reassembles a skeleton with the segments a subscriber managed to
/// decrypt; missing segments become `<pbcd-redacted/>`.
pub fn reassemble(skeleton: &Element, decrypted: &BTreeMap<u32, Element>) -> Element {
    let mut clone = Element::new(&skeleton.name);
    clone.attributes = skeleton.attributes.clone();
    for child in &skeleton.children {
        match child {
            Node::Text(t) => clone.children.push(Node::Text(t.clone())),
            Node::Element(e) if e.name == PLACEHOLDER_TAG => {
                let id: Option<u32> = e.get_attr("id").and_then(|s| s.parse().ok());
                match id.and_then(|i| decrypted.get(&i)) {
                    Some(content) => clone.children.push(Node::Element(content.clone())),
                    None => clone
                        .children
                        .push(Node::Element(Element::new(REDACTED_TAG))),
                }
            }
            Node::Element(e) => clone.children.push(Node::Element(reassemble(e, decrypted))),
        }
    }
    clone
}

/// Generates an EHR.xml document with the exact structure of the paper's
/// Example 4, filled with synthetic content for `patient`.
pub fn ehr_document(patient: &str) -> Element {
    Element::new("PatientRecord")
        .child(
            Element::new("ContactInfo")
                .child(Element::new("Name").text(patient))
                .child(Element::new("Phone").text("765-555-0100"))
                .child(Element::new("Address").text("101 Hospital Way, West Lafayette, IN")),
        )
        .child(
            Element::new("BillingInfo")
                .child(Element::new("Insurer").text("Acme Health"))
                .child(Element::new("AccountNo").text("4417-3392")),
        )
        .child(
            Element::new("ClinicalRecord")
                .child(
                    Element::new("HistoryOfPresentIllness")
                        .text("Patient reports intermittent chest pain for two weeks."),
                )
                .child(
                    Element::new("PastMedicalHistory")
                        .text("Hypertension diagnosed 2004; appendectomy 1998."),
                )
                .child(
                    Element::new("Medication")
                        .child(Element::new("Prescription").text("Lisinopril 10mg daily"))
                        .child(Element::new("Prescription").text("Aspirin 81mg daily")),
                )
                .child(Element::new("AlergiesAndAdverseReactions").text("Penicillin: rash."))
                .child(Element::new("FamilyHistory").text("Father: CAD; Mother: T2DM."))
                .child(Element::new("SocialHistory").text("Non-smoker; occasional alcohol."))
                .child(
                    Element::new("PhysicalExams")
                        .child(Element::new("Weight").text("82kg"))
                        .child(Element::new("Temperature").text("36.8C"))
                        .child(Element::new("SkinTest").text("negative")),
                )
                .child(
                    Element::new("LabRecords")
                        .child(Element::new("XRay").text("chest x-ray: no acute findings"))
                        .child(Element::new("Bloodwork").text("LDL 131 mg/dL")),
                )
                .child(Element::new("Plan").text("Stress test; follow-up in 2 weeks.")),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    const EHR_TAGS: [&str; 6] = [
        "ContactInfo",
        "BillingInfo",
        "Medication",
        "PhysicalExams",
        "LabRecords",
        "Plan",
    ];

    #[test]
    fn segmentation_extracts_expected_tags() {
        let doc = ehr_document("Jane Doe");
        let seg = segment(&doc, "EHR.xml", &EHR_TAGS);
        assert_eq!(seg.segments.len(), 6);
        let tags: Vec<&str> = seg.segments.iter().map(|s| s.tag.as_str()).collect();
        assert_eq!(
            tags,
            vec![
                "ContactInfo",
                "BillingInfo",
                "Medication",
                "PhysicalExams",
                "LabRecords",
                "Plan"
            ]
        );
        // Skeleton has placeholders where segments were.
        let xml = seg.skeleton.to_xml();
        assert!(xml.contains(PLACEHOLDER_TAG));
        assert!(
            !xml.contains("Lisinopril"),
            "extracted content must leave skeleton"
        );
        // Non-segmented siblings remain.
        assert!(xml.contains("SocialHistory"));
    }

    #[test]
    fn full_reassembly_is_lossless() {
        let doc = ehr_document("Jane Doe");
        let seg = segment(&doc, "EHR.xml", &EHR_TAGS);
        let all: BTreeMap<u32, Element> = seg
            .segments
            .iter()
            .map(|s| (s.id, s.content.clone()))
            .collect();
        assert_eq!(reassemble(&seg.skeleton, &all), doc);
    }

    #[test]
    fn partial_reassembly_redacts_missing() {
        let doc = ehr_document("Jane Doe");
        let seg = segment(&doc, "EHR.xml", &EHR_TAGS);
        // Only ContactInfo decrypted (a receptionist's view).
        let only_contact: BTreeMap<u32, Element> = seg
            .segments
            .iter()
            .filter(|s| s.tag == "ContactInfo")
            .map(|s| (s.id, s.content.clone()))
            .collect();
        let view = reassemble(&seg.skeleton, &only_contact);
        let xml = view.to_xml();
        assert!(xml.contains("Jane Doe"));
        assert!(!xml.contains("Lisinopril"));
        assert!(xml.contains(REDACTED_TAG));
    }

    #[test]
    fn outermost_match_wins_for_nested_tags() {
        // ClinicalRecord contains Medication; extracting ClinicalRecord
        // keeps Medication embedded (the acp₃ "whole record" case).
        let doc = ehr_document("X");
        let seg = segment(&doc, "EHR.xml", &["ClinicalRecord", "Medication"]);
        assert_eq!(seg.segments.len(), 1);
        assert_eq!(seg.segments[0].tag, "ClinicalRecord");
        assert!(seg.segments[0].content.find("Medication").is_some());
    }

    #[test]
    fn empty_tag_list_extracts_nothing() {
        let doc = ehr_document("X");
        let seg = segment(&doc, "EHR.xml", &[]);
        assert!(seg.segments.is_empty());
        assert_eq!(seg.skeleton, doc);
    }

    #[test]
    fn repeated_tags_each_become_segments() {
        let doc = Element::new("r")
            .child(Element::new("s").text("one"))
            .child(Element::new("s").text("two"));
        let seg = segment(&doc, "d", &["s"]);
        assert_eq!(seg.segments.len(), 2);
        assert_ne!(seg.segments[0].id, seg.segments[1].id);
        let all: BTreeMap<u32, Element> = seg
            .segments
            .iter()
            .map(|s| (s.id, s.content.clone()))
            .collect();
        assert_eq!(reassemble(&seg.skeleton, &all), doc);
    }
}
