//! Length-prefixed binary encoding helpers over the `bytes` crate.
//!
//! All multi-byte integers are big-endian; variable-length fields carry a
//! `u32` length prefix. Both directions are strict: truncated or oversized
//! inputs yield [`WireError`] instead of panicking, and *encoding* an
//! oversized field fails the same way — a hostile field can never abort a
//! thread that is framing it (e.g. a broker relaying untrusted containers).

use bytes::{Buf, BufMut};

/// Maximum length accepted for a single variable-length field (16 MiB) —
/// a sanity bound against corrupt length prefixes.
pub const MAX_FIELD_LEN: usize = 16 * 1024 * 1024;

/// Encoding/decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the announced field length.
    Truncated,
    /// A length prefix exceeded [`MAX_FIELD_LEN`].
    FieldTooLong(usize),
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// Unexpected magic bytes or version.
    BadHeader,
    /// A field decoded structurally but carried an invalid value (e.g. a
    /// byte string that is not a group element, or a non-canonical scalar).
    InvalidValue,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Truncated => write!(f, "input truncated"),
            Self::FieldTooLong(n) => write!(f, "field length {n} exceeds limit"),
            Self::InvalidUtf8 => write!(f, "invalid UTF-8 in string field"),
            Self::BadHeader => write!(f, "bad magic or version"),
            Self::InvalidValue => write!(f, "structurally valid but semantically invalid field"),
        }
    }
}

impl std::error::Error for WireError {}

/// Appends a length-prefixed byte field; rejects oversized fields instead
/// of panicking.
pub fn put_bytes(buf: &mut impl BufMut, data: &[u8]) -> Result<(), WireError> {
    if data.len() > MAX_FIELD_LEN {
        return Err(WireError::FieldTooLong(data.len()));
    }
    buf.put_u32(data.len() as u32);
    buf.put_slice(data);
    Ok(())
}

/// Reads a length-prefixed byte field.
pub fn get_bytes(buf: &mut impl Buf) -> Result<Vec<u8>, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let len = buf.get_u32() as usize;
    if len > MAX_FIELD_LEN {
        return Err(WireError::FieldTooLong(len));
    }
    if buf.remaining() < len {
        return Err(WireError::Truncated);
    }
    let mut out = vec![0u8; len];
    buf.copy_to_slice(&mut out);
    Ok(out)
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut impl BufMut, s: &str) -> Result<(), WireError> {
    put_bytes(buf, s.as_bytes())
}

/// Reads a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut impl Buf) -> Result<String, WireError> {
    String::from_utf8(get_bytes(buf)?).map_err(|_| WireError::InvalidUtf8)
}

/// Reads a fixed-width byte array (no length prefix) — for fields whose
/// width is part of the format, e.g. nonces and hash-sized words.
pub fn get_fixed<const N: usize>(buf: &mut impl Buf) -> Result<[u8; N], WireError> {
    if buf.remaining() < N {
        return Err(WireError::Truncated);
    }
    let mut out = [0u8; N];
    buf.copy_to_slice(&mut out);
    Ok(out)
}

/// Reads a `u8`, checking availability.
pub fn get_u8(buf: &mut impl Buf) -> Result<u8, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u8())
}

/// Reads a `u32`, checking availability.
pub fn get_u32(buf: &mut impl Buf) -> Result<u32, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u32())
}

/// Reads a `u64`, checking availability.
pub fn get_u64(buf: &mut impl Buf) -> Result<u64, WireError> {
    if buf.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn roundtrip_fields() {
        let mut buf = BytesMut::new();
        put_bytes(&mut buf, b"hello").unwrap();
        put_str(&mut buf, "world").unwrap();
        buf.put_u32(42);
        buf.put_u64(7);
        let mut r = buf.freeze();
        assert_eq!(get_bytes(&mut r).unwrap(), b"hello");
        assert_eq!(get_str(&mut r).unwrap(), "world");
        assert_eq!(get_u32(&mut r).unwrap(), 42);
        assert_eq!(get_u64(&mut r).unwrap(), 7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_detected() {
        let mut buf = BytesMut::new();
        put_bytes(&mut buf, b"hello").unwrap();
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(..cut);
            assert_eq!(
                get_bytes(&mut partial),
                Err(WireError::Truncated),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(u32::MAX);
        let mut r = buf.freeze();
        assert!(matches!(get_bytes(&mut r), Err(WireError::FieldTooLong(_))));
    }

    #[test]
    fn oversized_field_fails_encode_without_panicking() {
        let huge = vec![0u8; MAX_FIELD_LEN + 1];
        let mut buf = BytesMut::new();
        assert_eq!(
            put_bytes(&mut buf, &huge),
            Err(WireError::FieldTooLong(MAX_FIELD_LEN + 1))
        );
        // Nothing was written: a failed field leaves the buffer untouched.
        assert!(buf.is_empty());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        put_bytes(&mut buf, &[0xff, 0xfe]).unwrap();
        let mut r = buf.freeze();
        assert_eq!(get_str(&mut r), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn fixed_and_u8_fields() {
        let mut buf = BytesMut::new();
        buf.put_slice(&[1, 2, 3, 4]);
        buf.put_u8(9);
        let mut r = buf.freeze();
        assert_eq!(get_fixed::<4>(&mut r).unwrap(), [1, 2, 3, 4]);
        assert_eq!(get_u8(&mut r).unwrap(), 9);
        assert_eq!(get_u8(&mut r), Err(WireError::Truncated));
        let mut short: &[u8] = &[1, 2];
        assert_eq!(get_fixed::<3>(&mut short), Err(WireError::Truncated));
    }

    #[test]
    fn empty_fields() {
        let mut buf = BytesMut::new();
        put_bytes(&mut buf, b"").unwrap();
        put_str(&mut buf, "").unwrap();
        let mut r = buf.freeze();
        assert_eq!(get_bytes(&mut r).unwrap(), Vec::<u8>::new());
        assert_eq!(get_str(&mut r).unwrap(), "");
    }
}
