//! # pbcd-docs
//!
//! Document modelling for the PBCD workspace:
//!
//! * [`xml`] — an XML-lite parser/serializer (the paper disseminates XML
//!   documents; Example 4's EHR.xml),
//! * [`segment`](mod@segment) — policy-driven segmentation into subdocuments, plus
//!   subscriber-side reassembly with redaction,
//! * [`container`] — the broadcast wire format: skeleton + per-policy-
//!   configuration encrypted segments + opaque GKM key material,
//! * [`wire`] — strict length-prefixed binary encoding helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod container;
pub mod segment;
pub mod wire;
pub mod xml;

pub use container::{BroadcastContainer, EncryptedGroup, EncryptedSegment};
pub use segment::{
    ehr_document, reassemble, segment, Segment, SegmentedDocument, PLACEHOLDER_TAG, REDACTED_TAG,
};
pub use wire::WireError;
pub use xml::{parse, Element, Node, XmlError};
