//! The broadcast container: the single artifact the publisher broadcasts.
//!
//! Per the paper, a broadcast carries, for every policy configuration, the
//! encrypted subdocuments plus the public key-derivation values
//! (`X, z₁…z_N`). The container treats that key material as an opaque blob
//! produced by the GKM layer, keeping this crate independent of the key
//! management scheme. Layout (all fields length-prefixed, big-endian):
//!
//! ```text
//! magic "PBCD" ‖ version u32 ‖ epoch u64 ‖ document_name ‖ skeleton_xml ‖
//!   group_count u32 ‖ group*
//! group   := config_id u32 ‖ key_info ‖ segment_count u32 ‖ segment*
//! segment := segment_id u32 ‖ tag ‖ ciphertext
//! ```

use crate::wire::{get_bytes, get_str, get_u32, get_u64, put_bytes, put_str, WireError};
use bytes::{Buf, BufMut, BytesMut};

const MAGIC: &[u8; 4] = b"PBCD";
const VERSION: u32 = 1;

/// One encrypted subdocument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptedSegment {
    /// Segment id matching the skeleton placeholder.
    pub segment_id: u32,
    /// Original tag name (public metadata, like the XML tag itself).
    pub tag: String,
    /// Authenticated ciphertext of the serialized element.
    pub ciphertext: Vec<u8>,
}

/// All segments sharing one policy configuration, plus the public key
/// material for that configuration's group key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptedGroup {
    /// Publisher-assigned configuration id.
    pub config_id: u32,
    /// Opaque GKM public info (`X, z₁…z_N` serialized); empty for the
    /// "nobody can access" empty configuration.
    pub key_info: Vec<u8>,
    /// The encrypted segments.
    pub segments: Vec<EncryptedSegment>,
}

/// A complete broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastContainer {
    /// Rekey epoch — bumped on every join/leave/revocation rekey.
    pub epoch: u64,
    /// Document name.
    pub document_name: String,
    /// Plaintext skeleton (structure is public; contents are not).
    pub skeleton_xml: String,
    /// Per-configuration encrypted groups.
    pub groups: Vec<EncryptedGroup>,
}

impl BroadcastContainer {
    /// Serializes to the wire format. Fails (instead of panicking) when any
    /// field exceeds [`crate::wire::MAX_FIELD_LEN`], so encoding a hostile
    /// container can never abort the encoding thread.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut buf = BytesMut::with_capacity(self.size_bytes());
        buf.put_slice(MAGIC);
        buf.put_u32(VERSION);
        buf.put_u64(self.epoch);
        put_str(&mut buf, &self.document_name)?;
        put_str(&mut buf, &self.skeleton_xml)?;
        buf.put_u32(self.groups.len() as u32);
        for g in &self.groups {
            buf.put_u32(g.config_id);
            put_bytes(&mut buf, &g.key_info)?;
            buf.put_u32(g.segments.len() as u32);
            for s in &g.segments {
                buf.put_u32(s.segment_id);
                put_str(&mut buf, &s.tag)?;
                put_bytes(&mut buf, &s.ciphertext)?;
            }
        }
        Ok(buf.to_vec())
    }

    /// Parses and validates the wire format.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        let mut buf = data;
        if buf.remaining() < 8 {
            return Err(WireError::Truncated);
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(WireError::BadHeader);
        }
        if buf.get_u32() != VERSION {
            return Err(WireError::BadHeader);
        }
        let epoch = get_u64(&mut buf)?;
        let document_name = get_str(&mut buf)?;
        let skeleton_xml = get_str(&mut buf)?;
        let group_count = get_u32(&mut buf)? as usize;
        // Each group needs ≥ 12 bytes; bound against corrupt counts.
        if group_count > data.len() / 12 + 1 {
            return Err(WireError::Truncated);
        }
        let mut groups = Vec::with_capacity(group_count.min(1024));
        for _ in 0..group_count {
            let config_id = get_u32(&mut buf)?;
            let key_info = get_bytes(&mut buf)?;
            let segment_count = get_u32(&mut buf)? as usize;
            if segment_count > data.len() / 12 + 1 {
                return Err(WireError::Truncated);
            }
            let mut segments = Vec::with_capacity(segment_count.min(1024));
            for _ in 0..segment_count {
                let segment_id = get_u32(&mut buf)?;
                let tag = get_str(&mut buf)?;
                let ciphertext = get_bytes(&mut buf)?;
                segments.push(EncryptedSegment {
                    segment_id,
                    tag,
                    ciphertext,
                });
            }
            groups.push(EncryptedGroup {
                config_id,
                key_info,
                segments,
            });
        }
        if buf.remaining() != 0 {
            return Err(WireError::BadHeader);
        }
        Ok(Self {
            epoch,
            document_name,
            skeleton_xml,
            groups,
        })
    }

    /// Total broadcast size in bytes (what [`Self::encode`] would emit),
    /// computed without materializing the encoding.
    pub fn size_bytes(&self) -> usize {
        let mut n = 4 + 4 + 8; // magic ‖ version ‖ epoch
        n += 4 + self.document_name.len();
        n += 4 + self.skeleton_xml.len();
        n += 4; // group count
        for g in &self.groups {
            n += 4 + 4 + g.key_info.len() + 4;
            for s in &g.segments {
                n += 4 + 4 + s.tag.len() + 4 + s.ciphertext.len();
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BroadcastContainer {
        BroadcastContainer {
            epoch: 3,
            document_name: "EHR.xml".into(),
            skeleton_xml: "<PatientRecord><pbcd-segment id=\"0\"/></PatientRecord>".into(),
            groups: vec![
                EncryptedGroup {
                    config_id: 0,
                    key_info: vec![1, 2, 3, 4],
                    segments: vec![EncryptedSegment {
                        segment_id: 0,
                        tag: "ContactInfo".into(),
                        ciphertext: vec![9; 100],
                    }],
                },
                EncryptedGroup {
                    config_id: 1,
                    key_info: vec![],
                    segments: vec![],
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let enc = c.encode().unwrap();
        assert_eq!(enc.len(), c.size_bytes());
        assert_eq!(BroadcastContainer::decode(&enc).unwrap(), c);
    }

    #[test]
    fn oversized_field_fails_encode() {
        let mut c = sample();
        c.groups[0].segments[0].ciphertext = vec![0; crate::wire::MAX_FIELD_LEN + 1];
        assert!(matches!(c.encode(), Err(WireError::FieldTooLong(_))));
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut enc = sample().encode().unwrap();
        enc[0] = b'X';
        assert_eq!(BroadcastContainer::decode(&enc), Err(WireError::BadHeader));
        let mut enc = sample().encode().unwrap();
        enc[7] = 99; // version byte
        assert_eq!(BroadcastContainer::decode(&enc), Err(WireError::BadHeader));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let enc = sample().encode().unwrap();
        for cut in 0..enc.len() {
            assert!(
                BroadcastContainer::decode(&enc[..cut]).is_err(),
                "cut={cut} must not decode"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut enc = sample().encode().unwrap();
        enc.push(0);
        assert!(BroadcastContainer::decode(&enc).is_err());
    }

    #[test]
    fn empty_container() {
        let c = BroadcastContainer {
            epoch: 0,
            document_name: String::new(),
            skeleton_xml: String::new(),
            groups: vec![],
        };
        assert_eq!(BroadcastContainer::decode(&c.encode().unwrap()).unwrap(), c);
    }

    #[test]
    fn size_reflects_payload() {
        let mut c = sample();
        let before = c.size_bytes();
        c.groups[0].segments[0].ciphertext = vec![9; 1000];
        assert_eq!(c.size_bytes(), before + 900);
    }
}
