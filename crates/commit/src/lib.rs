//! # pbcd-commit
//!
//! Pedersen commitments (paper §IV-B) over any [`CyclicGroup`] backend.
//!
//! A commitment to `x ∈ F_p` with randomness `r ∈ F_p` is `c = g^x · h^r`,
//! where `g, h` are group generators with unknown relative discrete
//! logarithm. The scheme is unconditionally hiding and computationally
//! binding under the DL assumption. OCBE relies on the homomorphic
//! operations exposed here (`c · g^{−x₀}`, products of bit commitments
//! weighted by powers of two).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pbcd_group::{CyclicGroup, Scalar};
use rand::RngCore;

/// A Pedersen commitment: a single group element.
pub struct Commitment<G: CyclicGroup> {
    elem: G::Elem,
}

// Manual impls: derives would wrongly require `G: PartialEq` etc. even
// though only `G::Elem` (always comparable per the trait bounds) is stored.
impl<G: CyclicGroup> Clone for Commitment<G> {
    fn clone(&self) -> Self {
        Self {
            elem: self.elem.clone(),
        }
    }
}

impl<G: CyclicGroup> PartialEq for Commitment<G> {
    fn eq(&self, other: &Self) -> bool {
        self.elem == other.elem
    }
}

impl<G: CyclicGroup> Eq for Commitment<G> {}

impl<G: CyclicGroup> core::fmt::Debug for Commitment<G> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Commitment({:?})", self.elem)
    }
}

/// The private opening `(x, r)` of a commitment.
#[derive(Clone, Debug)]
pub struct Opening {
    /// Committed value.
    pub value: Scalar,
    /// Blinding randomness.
    pub randomness: Scalar,
}

/// Pedersen commitment scheme bound to a group backend.
///
/// Uses the backend's fixed `g` (generator) and `h` (hashed-in second
/// generator) so that *nobody* — including the committer — knows
/// `log_g(h)`.
#[derive(Clone)]
pub struct Pedersen<G: CyclicGroup> {
    group: G,
}

impl<G: CyclicGroup> Pedersen<G> {
    /// Creates the scheme over `group`.
    pub fn new(group: G) -> Self {
        Self { group }
    }

    /// The underlying group.
    pub fn group(&self) -> &G {
        &self.group
    }

    /// Commits to `value` with fresh randomness.
    pub fn commit<R: RngCore + ?Sized>(
        &self,
        value: &Scalar,
        rng: &mut R,
    ) -> (Commitment<G>, Opening) {
        let randomness = self.group.random_scalar(rng);
        let c = self.commit_with(value, &randomness);
        (
            c,
            Opening {
                value: value.clone(),
                randomness,
            },
        )
    }

    /// Commits to a small integer value (identity attributes are encoded as
    /// integers below `2^ℓ` in the paper).
    pub fn commit_u64<R: RngCore + ?Sized>(
        &self,
        value: u64,
        rng: &mut R,
    ) -> (Commitment<G>, Opening) {
        let v = self.group.scalar_ctx().from_u64(value);
        self.commit(&v, rng)
    }

    /// Deterministic commitment with caller-chosen randomness.
    ///
    /// Runs on the backend's fixed-base tables for `g` and `h`
    /// ([`CyclicGroup::pedersen_gh`]) — this is the hot path of issuance,
    /// registration proofs and commitment verification alike.
    pub fn commit_with(&self, value: &Scalar, randomness: &Scalar) -> Commitment<G> {
        Commitment {
            elem: self.group.pedersen_gh(value, randomness),
        }
    }

    /// Verifies an opening: `c == g^x · h^r`.
    pub fn verify_open(&self, c: &Commitment<G>, opening: &Opening) -> bool {
        self.commit_with(&opening.value, &opening.randomness) == *c
    }

    /// Homomorphic product: commits to `x₁ + x₂` under `r₁ + r₂`.
    pub fn mul(&self, a: &Commitment<G>, b: &Commitment<G>) -> Commitment<G> {
        Commitment {
            elem: self.group.op(&a.elem, &b.elem),
        }
    }

    /// Homomorphic quotient: commits to `x₁ − x₂` under `r₁ − r₂`.
    pub fn div(&self, a: &Commitment<G>, b: &Commitment<G>) -> Commitment<G> {
        Commitment {
            elem: self.group.div(&a.elem, &b.elem),
        }
    }

    /// `c · g^{−delta}`: shifts the committed value down by `delta`, leaving
    /// the randomness untouched (the EQ-/GE-OCBE "difference" commitment).
    pub fn shift_value(&self, c: &Commitment<G>, delta: &Scalar) -> Commitment<G> {
        let g_neg = self.group.exp_g(&-delta);
        Commitment {
            elem: self.group.op(&c.elem, &g_neg),
        }
    }

    /// `g^{delta} · c^{−1}`: commits to `delta − x` under `−r` (the LE-OCBE
    /// mirror of [`Pedersen::shift_value`]).
    pub fn shift_value_reversed(&self, c: &Commitment<G>, delta: &Scalar) -> Commitment<G> {
        let g_delta = self.group.exp_g(delta);
        Commitment {
            elem: self.group.div(&g_delta, &c.elem),
        }
    }

    /// `c^k`: commits to `k·x` under `k·r`.
    pub fn pow(&self, c: &Commitment<G>, k: &Scalar) -> Commitment<G> {
        Commitment {
            elem: self.group.exp(&c.elem, k),
        }
    }

    /// `Π cᵢ^{2^i}` — the weighted product the GE/LE-OCBE sender uses to
    /// check bit decompositions, evaluated Horner-style (msb first) by
    /// the backend ([`CyclicGroup::prod_pow2`] — projective backends run
    /// the whole chain with one final normalization).
    pub fn weighted_product(&self, commitments: &[Commitment<G>]) -> Commitment<G> {
        let elems: Vec<G::Elem> = commitments.iter().map(|c| c.elem.clone()).collect();
        Commitment {
            elem: self.group.prod_pow2(&elems),
        }
    }

    /// Canonical encoding of a commitment.
    pub fn serialize(&self, c: &Commitment<G>) -> Vec<u8> {
        self.group.serialize(&c.elem)
    }

    /// Parses and validates an encoded commitment.
    pub fn deserialize(&self, bytes: &[u8]) -> Option<Commitment<G>> {
        self.group
            .deserialize(bytes)
            .map(|elem| Commitment { elem })
    }
}

impl<G: CyclicGroup> Commitment<G> {
    /// The underlying group element.
    pub fn element(&self) -> &G::Elem {
        &self.elem
    }

    /// Wraps a raw group element as a commitment.
    pub fn from_element(elem: G::Elem) -> Self {
        Self { elem }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbcd_group::{ModpGroup, P256Group};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(101)
    }

    fn exercise_backend<G: CyclicGroup>(group: G) {
        let ped = Pedersen::new(group.clone());
        let sc = group.scalar_ctx().clone();
        let mut r = rng();

        // Commit/open roundtrip.
        let v = sc.from_u64(28);
        let (c, o) = ped.commit(&v, &mut r);
        assert!(ped.verify_open(&c, &o));

        // Opening with the wrong value or randomness fails.
        let bad_v = Opening {
            value: sc.from_u64(29),
            randomness: o.randomness.clone(),
        };
        assert!(!ped.verify_open(&c, &bad_v));
        let bad_r = Opening {
            value: o.value.clone(),
            randomness: &o.randomness + &sc.one(),
        };
        assert!(!ped.verify_open(&c, &bad_r));

        // Hiding: same value, fresh randomness ⇒ different commitments.
        let (c2, _) = ped.commit(&v, &mut r);
        assert_ne!(c, c2);

        // Homomorphisms.
        let a = sc.from_u64(11);
        let b = sc.from_u64(31);
        let (ca, oa) = ped.commit(&a, &mut r);
        let (cb, ob) = ped.commit(&b, &mut r);
        let sum = ped.mul(&ca, &cb);
        assert!(ped.verify_open(
            &sum,
            &Opening {
                value: &a + &b,
                randomness: &oa.randomness + &ob.randomness,
            }
        ));
        let diff = ped.div(&ca, &cb);
        assert!(ped.verify_open(
            &diff,
            &Opening {
                value: &a - &b,
                randomness: &oa.randomness - &ob.randomness,
            }
        ));

        // shift_value: c · g^{−x0} commits to (x − x0, r).
        let x0 = sc.from_u64(5);
        let shifted = ped.shift_value(&ca, &x0);
        assert!(ped.verify_open(
            &shifted,
            &Opening {
                value: &a - &x0,
                randomness: oa.randomness.clone(),
            }
        ));

        // shift_value_reversed: g^{x0} · c^{−1} commits to (x0 − x, −r).
        let rev = ped.shift_value_reversed(&ca, &x0);
        assert!(ped.verify_open(
            &rev,
            &Opening {
                value: &x0 - &a,
                randomness: -&oa.randomness,
            }
        ));

        // pow: c^k commits to (k·x, k·r).
        let k = sc.from_u64(7);
        let powed = ped.pow(&ca, &k);
        assert!(ped.verify_open(
            &powed,
            &Opening {
                value: &k * &a,
                randomness: &k * &oa.randomness,
            }
        ));

        // Serialization.
        let enc = ped.serialize(&ca);
        assert_eq!(ped.deserialize(&enc), Some(ca));
    }

    #[test]
    fn p256_backend() {
        exercise_backend(P256Group::new());
    }

    #[test]
    fn modp_backend() {
        exercise_backend(ModpGroup::new());
    }

    #[test]
    fn weighted_product_matches_bit_decomposition() {
        // Commit bitwise to d = Σ 2^i d_i with r = Σ 2^i r_i and check
        // Π c_i^{2^i} = g^d h^r — the exact GE-OCBE sender check.
        let group = P256Group::new();
        let ped = Pedersen::new(group.clone());
        let sc = group.scalar_ctx().clone();
        let mut r = rng();
        let d: u64 = 0b1011_0110;
        let ell = 8u32;
        let mut commitments = Vec::new();
        let mut r_total = sc.zero();
        let mut weight = sc.one();
        let two = sc.from_u64(2);
        for i in 0..ell {
            let bit = (d >> i) & 1;
            let (c, o) = ped.commit_u64(bit, &mut r);
            r_total = &r_total + &(&weight * &o.randomness);
            weight = &weight * &two;
            commitments.push(c);
        }
        let prod = ped.weighted_product(&commitments);
        assert!(ped.verify_open(
            &prod,
            &Opening {
                value: sc.from_u64(d),
                randomness: r_total,
            }
        ));
    }

    #[test]
    fn paper_example_1_shape() {
        // Example 1: Bob commits to age 28 with randomness 9270.
        let group = P256Group::new();
        let ped = Pedersen::new(group.clone());
        let sc = group.scalar_ctx().clone();
        let c = ped.commit_with(&sc.from_u64(28), &sc.from_u64(9270));
        assert!(ped.verify_open(
            &c,
            &Opening {
                value: sc.from_u64(28),
                randomness: sc.from_u64(9270),
            }
        ));
        // Deterministic: the same inputs give the same commitment.
        assert_eq!(c, ped.commit_with(&sc.from_u64(28), &sc.from_u64(9270)));
    }
}
