//! Property-based tests for the symmetric-crypto substrate.

use pbcd_crypto::{
    ct_eq, ctr_encrypt, derive_key, hkdf_expand, hkdf_extract, hmac, sha1, sha256, AuthKey, Hasher,
    Sha1, Sha256,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sha256_streaming_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..2048), split in any::<prop::sample::Index>()) {
        let cut = split.index(data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn sha1_streaming_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..2048), split in any::<prop::sample::Index>()) {
        let cut = split.index(data.len() + 1);
        let mut h = Sha1::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), sha1(&data));
    }

    #[test]
    fn hashes_are_injective_in_practice(a in prop::collection::vec(any::<u8>(), 0..256), b in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assume!(a != b);
        prop_assert_ne!(sha256(&a), sha256(&b));
        prop_assert_ne!(sha1(&a), sha1(&b));
    }

    #[test]
    fn hmac_distinct_keys_distinct_tags(key1 in prop::collection::vec(any::<u8>(), 1..64), key2 in prop::collection::vec(any::<u8>(), 1..64), msg in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assume!(key1 != key2);
        prop_assert_ne!(hmac::<Sha256>(&key1, &msg), hmac::<Sha256>(&key2, &msg));
    }

    #[test]
    fn hmac_output_lengths(key in prop::collection::vec(any::<u8>(), 0..200), msg in prop::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(hmac::<Sha256>(&key, &msg).len(), Sha256::OUTPUT_LEN);
        prop_assert_eq!(hmac::<Sha1>(&key, &msg).len(), Sha1::OUTPUT_LEN);
    }

    #[test]
    fn ctr_is_an_involution(key in prop::array::uniform32(any::<u8>()), nonce in prop::array::uniform12(any::<u8>()), data in prop::collection::vec(any::<u8>(), 0..1024)) {
        let ct = ctr_encrypt(&key, &nonce, &data);
        prop_assert_eq!(ctr_encrypt(&key, &nonce, &ct), data);
    }

    #[test]
    fn ctr_prefix_stability(key in prop::array::uniform32(any::<u8>()), nonce in prop::array::uniform12(any::<u8>()), data in prop::collection::vec(any::<u8>(), 1..512), cut in any::<prop::sample::Index>()) {
        // Encrypting a prefix yields the prefix of the encryption.
        let cut = 1 + cut.index(data.len());
        let full = ctr_encrypt(&key, &nonce, &data);
        let part = ctr_encrypt(&key, &nonce, &data[..cut]);
        prop_assert_eq!(&full[..cut], &part[..]);
    }

    #[test]
    fn authenc_roundtrip(master in prop::collection::vec(any::<u8>(), 1..64), pt in prop::collection::vec(any::<u8>(), 0..1024), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let key = AuthKey::from_master(&master);
        let ct = key.encrypt(&mut rng, &pt);
        prop_assert_eq!(key.decrypt(&ct).unwrap(), pt);
    }

    #[test]
    fn authenc_any_single_bitflip_detected(pt in prop::collection::vec(any::<u8>(), 0..128), pos in any::<prop::sample::Index>(), bit in 0u8..8, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let key = AuthKey::from_master(b"master");
        let mut ct = key.encrypt(&mut rng, &pt);
        let idx = pos.index(ct.len());
        ct[idx] ^= 1 << bit;
        prop_assert!(key.decrypt(&ct).is_err());
    }

    #[test]
    fn hkdf_prefix_property(prk in prop::collection::vec(any::<u8>(), 32..64), info in prop::collection::vec(any::<u8>(), 0..32), len1 in 1usize..100, len2 in 1usize..100) {
        let (short, long) = if len1 < len2 { (len1, len2) } else { (len2, len1) };
        let a = hkdf_expand(&prk, &info, short);
        let b = hkdf_expand(&prk, &info, long);
        prop_assert_eq!(&b[..short], &a[..]);
    }

    #[test]
    fn kdf_labels_are_domain_separated(master in prop::collection::vec(any::<u8>(), 1..64)) {
        let a = derive_key(&master, "label-a", 32);
        let b = derive_key(&master, "label-b", 32);
        prop_assert_ne!(a, b);
    }

    #[test]
    fn extract_depends_on_salt(ikm in prop::collection::vec(any::<u8>(), 1..64), s1 in prop::collection::vec(any::<u8>(), 1..32), s2 in prop::collection::vec(any::<u8>(), 1..32)) {
        prop_assume!(s1 != s2);
        prop_assert_ne!(hkdf_extract(&s1, &ikm), hkdf_extract(&s2, &ikm));
    }

    #[test]
    fn ct_eq_agrees_with_eq(a in prop::collection::vec(any::<u8>(), 0..64), b in prop::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }
}
