//! AES counter (CTR) mode.
//!
//! The counter block is `nonce (12 bytes) ‖ big-endian u32 counter`, the
//! layout used by standard AES-CTR/GCM constructions. Encryption and
//! decryption are the same keystream XOR.

use crate::aes::Aes;

/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

/// XORs `data` in place with the AES-CTR keystream for `(key, nonce)`.
///
/// Processing the same data twice with the same parameters restores it, so
/// this single function both encrypts and decrypts.
pub fn ctr_xor(aes: &Aes, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    let mut counter_block = [0u8; 16];
    counter_block[..NONCE_LEN].copy_from_slice(nonce);
    let mut counter: u32 = 1; // block 0 reserved (GCM convention)
    for chunk in data.chunks_mut(16) {
        counter_block[12..].copy_from_slice(&counter.to_be_bytes());
        let mut keystream = counter_block;
        aes.encrypt_block(&mut keystream);
        for (d, k) in chunk.iter_mut().zip(keystream.iter()) {
            *d ^= k;
        }
        counter = counter
            .checked_add(1)
            .expect("CTR counter exhausted (message too long)");
    }
}

/// Convenience: CTR-encrypts a copy of `data`.
pub fn ctr_encrypt(key: &[u8], nonce: &[u8; NONCE_LEN], data: &[u8]) -> Vec<u8> {
    let aes = Aes::new(key);
    let mut out = data.to_vec();
    ctr_xor(&aes, nonce, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut key = [0u8; 32];
        rng.fill_bytes(&mut key);
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut nonce);
        for len in [0usize, 1, 15, 16, 17, 100, 4096] {
            let mut data = vec![0u8; len];
            rng.fill_bytes(&mut data);
            let ct = ctr_encrypt(&key, &nonce, &data);
            assert_eq!(ct.len(), len);
            if len > 0 {
                assert_ne!(ct, data);
            }
            let pt = ctr_encrypt(&key, &nonce, &ct);
            assert_eq!(pt, data);
        }
    }

    #[test]
    fn different_nonces_differ() {
        let key = [7u8; 32];
        let data = vec![0u8; 64];
        let c1 = ctr_encrypt(&key, &[1; NONCE_LEN], &data);
        let c2 = ctr_encrypt(&key, &[2; NONCE_LEN], &data);
        assert_ne!(c1, c2);
    }

    #[test]
    fn keystream_blocks_are_distinct() {
        // Identical plaintext blocks must encrypt differently (stream mode).
        let key = [9u8; 16];
        let data = vec![0xaau8; 48];
        let ct = ctr_encrypt(&key, &[0; NONCE_LEN], &data);
        assert_ne!(ct[0..16], ct[16..32]);
        assert_ne!(ct[16..32], ct[32..48]);
    }

    #[test]
    fn partial_final_block() {
        let key = [1u8; 16];
        let nonce = [2u8; NONCE_LEN];
        let full = ctr_encrypt(&key, &nonce, &[0u8; 32]);
        let part = ctr_encrypt(&key, &nonce, &[0u8; 20]);
        assert_eq!(&full[..20], &part[..]);
    }
}
