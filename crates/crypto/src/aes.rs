//! AES-128/192/256 block cipher (FIPS 197), implemented from scratch.
//!
//! The paper requires "a semantically secure symmetric-key encryption
//! algorithm E, for example, AES". This module provides the block primitive;
//! [`crate::ctr`] builds the stream mode used by the envelopes and document
//! containers.

/// Forward S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Inverse S-box (for block decryption).
const INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

#[inline]
fn gmul(a: u8, mut b: u8) -> u8 {
    let mut a = a;
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 == 1 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

/// AES key sizes supported by [`Aes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AesKeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 192-bit key, 12 rounds.
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl AesKeySize {
    fn nk(self) -> usize {
        match self {
            Self::Aes128 => 4,
            Self::Aes192 => 6,
            Self::Aes256 => 8,
        }
    }

    fn rounds(self) -> usize {
        match self {
            Self::Aes128 => 10,
            Self::Aes192 => 12,
            Self::Aes256 => 14,
        }
    }

    /// Key length in bytes.
    pub fn key_len(self) -> usize {
        self.nk() * 4
    }
}

/// An AES instance with an expanded key schedule.
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    rounds: usize,
}

impl Aes {
    /// Expands `key` into a cipher instance. Panics if the key length is not
    /// 16, 24 or 32 bytes.
    pub fn new(key: &[u8]) -> Self {
        let size = match key.len() {
            16 => AesKeySize::Aes128,
            24 => AesKeySize::Aes192,
            32 => AesKeySize::Aes256,
            n => panic!("invalid AES key length {n}"),
        };
        let nk = size.nk();
        let rounds = size.rounds();
        let nwords = 4 * (rounds + 1);
        let mut w = vec![[0u8; 4]; nwords];
        for (i, word) in w.iter_mut().take(nk).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in nk..nwords {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }
        let round_keys = w
            .chunks_exact(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (i, word) in c.iter().enumerate() {
                    rk[4 * i..4 * i + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        Self { round_keys, rounds }
    }

    /// Encrypts a single 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..self.rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[self.rounds]);
    }

    /// Decrypts a single 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[self.rounds]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for round in (1..self.rounds).rev() {
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

// State is column-major: state[4*c + r] is row r, column c.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] =
            gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
        state[4 * c + 1] =
            gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
        state[4 * c + 2] =
            gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
        state[4 * c + 3] =
            gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_aes128() {
        let aes = Aes::new(&from_hex("000102030405060708090a0b0c0d0e0f"));
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_aes192() {
        let aes = Aes::new(&from_hex(
            "000102030405060708090a0b0c0d0e0f1011121314151617",
        ));
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("dda97ca4864cdfe06eaf70a0ec0d7191"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_aes256() {
        let aes = Aes::new(&from_hex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        ));
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn nist_sp800_38a_ecb_aes128() {
        // SP 800-38A F.1.1 first block.
        let aes = Aes::new(&from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
        let mut block: [u8; 16] = from_hex("6bc1bee22e409f96e93d7e117393172a")
            .try_into()
            .unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("3ad77bb40d7a3660a89ecaf32466ef97"));
    }

    #[test]
    fn encrypt_decrypt_roundtrip_random() {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for key_len in [16usize, 24, 32] {
            let mut key = vec![0u8; key_len];
            rng.fill_bytes(&mut key);
            let aes = Aes::new(&key);
            for _ in 0..50 {
                let mut block = [0u8; 16];
                rng.fill_bytes(&mut block);
                let orig = block;
                aes.encrypt_block(&mut block);
                assert_ne!(block, orig);
                aes.decrypt_block(&mut block);
                assert_eq!(block, orig);
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid AES key length")]
    fn bad_key_length_panics() {
        Aes::new(&[0u8; 17]);
    }

    #[test]
    fn gf_multiplication() {
        // Known GF(2^8) products.
        assert_eq!(gmul(0x57, 0x83), 0xc1);
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(xtime(0x57), 0xae);
        assert_eq!(xtime(0xae), 0x47);
    }
}
