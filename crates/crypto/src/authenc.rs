//! Authenticated encryption: AES-256-CTR with HMAC-SHA-256, encrypt-then-MAC.
//!
//! Used wherever the paper calls for the semantically secure cipher `E`:
//! OCBE envelope payloads and encrypted subdocuments. The wire layout is
//! `nonce (12) ‖ ciphertext ‖ tag (32)`.

use crate::aes::Aes;
use crate::ct::ct_eq;
use crate::ctr::{ctr_xor, NONCE_LEN};
use crate::hmac::Hmac;
use crate::kdf::derive_key;
use crate::sha256::Sha256;
use rand::RngCore;

/// Tag length in bytes (full HMAC-SHA-256 output).
pub const TAG_LEN: usize = 32;

/// Decryption failure: the ciphertext was truncated or the tag did not match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthDecryptError;

impl core::fmt::Display for AuthDecryptError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "authenticated decryption failed")
    }
}

impl std::error::Error for AuthDecryptError {}

/// A symmetric authenticated-encryption key.
///
/// The supplied master key material is stretched into independent
/// encryption and MAC keys via HKDF, so any byte string (e.g. a GKM group
/// key, or an OCBE session secret) can serve directly as key material.
#[derive(Clone)]
pub struct AuthKey {
    enc: Vec<u8>,
    mac: Vec<u8>,
}

impl AuthKey {
    /// Derives an authenticated-encryption key from arbitrary key material.
    pub fn from_master(master: &[u8]) -> Self {
        Self {
            enc: derive_key(master, "pbcd-authenc-enc", 32),
            mac: derive_key(master, "pbcd-authenc-mac", 32),
        }
    }

    /// Encrypts `plaintext` with a fresh random nonce.
    pub fn encrypt<R: RngCore + ?Sized>(&self, rng: &mut R, plaintext: &[u8]) -> Vec<u8> {
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut nonce);
        self.encrypt_with_nonce(&nonce, plaintext)
    }

    /// Encrypts with an explicit nonce (deterministic; for tests and
    /// reproducible fixtures — never reuse a nonce under one key).
    pub fn encrypt_with_nonce(&self, nonce: &[u8; NONCE_LEN], plaintext: &[u8]) -> Vec<u8> {
        let aes = Aes::new(&self.enc);
        let mut out = Vec::with_capacity(NONCE_LEN + plaintext.len() + TAG_LEN);
        out.extend_from_slice(nonce);
        let body_start = out.len();
        out.extend_from_slice(plaintext);
        ctr_xor(&aes, nonce, &mut out[body_start..]);
        let mut mac = Hmac::<Sha256>::new(&self.mac);
        mac.update(&out);
        let tag = mac.finalize();
        out.extend_from_slice(&tag);
        out
    }

    /// Verifies and decrypts a message produced by [`AuthKey::encrypt`].
    pub fn decrypt(&self, message: &[u8]) -> Result<Vec<u8>, AuthDecryptError> {
        if message.len() < NONCE_LEN + TAG_LEN {
            return Err(AuthDecryptError);
        }
        let (body, tag) = message.split_at(message.len() - TAG_LEN);
        let mut mac = Hmac::<Sha256>::new(&self.mac);
        mac.update(body);
        if !ct_eq(&mac.finalize(), tag) {
            return Err(AuthDecryptError);
        }
        let nonce: [u8; NONCE_LEN] = body[..NONCE_LEN].try_into().expect("length checked");
        let mut plaintext = body[NONCE_LEN..].to_vec();
        let aes = Aes::new(&self.enc);
        ctr_xor(&aes, &nonce, &mut plaintext);
        Ok(plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn roundtrip() {
        let mut r = rng();
        let key = AuthKey::from_master(b"some master key material");
        for len in [0usize, 1, 16, 100, 5000] {
            let pt = vec![0x5au8; len];
            let ct = key.encrypt(&mut r, &pt);
            assert_eq!(ct.len(), NONCE_LEN + len + TAG_LEN);
            assert_eq!(key.decrypt(&ct).unwrap(), pt);
        }
    }

    #[test]
    fn tamper_detection() {
        let mut r = rng();
        let key = AuthKey::from_master(b"k");
        let ct = key.encrypt(&mut r, b"attack at dawn");
        for i in 0..ct.len() {
            let mut bad = ct.clone();
            bad[i] ^= 1;
            assert_eq!(key.decrypt(&bad), Err(AuthDecryptError), "byte {i}");
        }
    }

    #[test]
    fn truncation_detected() {
        let mut r = rng();
        let key = AuthKey::from_master(b"k");
        let ct = key.encrypt(&mut r, b"hello");
        for cut in [0usize, 1, NONCE_LEN, ct.len() - 1] {
            assert!(key.decrypt(&ct[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn wrong_key_fails() {
        let mut r = rng();
        let ct = AuthKey::from_master(b"right key").encrypt(&mut r, b"secret");
        assert!(AuthKey::from_master(b"wrong key").decrypt(&ct).is_err());
    }

    #[test]
    fn fresh_nonces_randomize_ciphertext() {
        let mut r = rng();
        let key = AuthKey::from_master(b"k");
        let c1 = key.encrypt(&mut r, b"same plaintext");
        let c2 = key.encrypt(&mut r, b"same plaintext");
        assert_ne!(c1, c2);
    }

    #[test]
    fn deterministic_with_explicit_nonce() {
        let key = AuthKey::from_master(b"k");
        let n = [3u8; NONCE_LEN];
        assert_eq!(
            key.encrypt_with_nonce(&n, b"msg"),
            key.encrypt_with_nonce(&n, b"msg")
        );
    }
}
