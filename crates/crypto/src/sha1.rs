//! SHA-1 (FIPS 180-4), implemented from scratch.
//!
//! The paper's C++ system used OpenSSL's SHA-1 as the random-oracle hash
//! `H(·)`. SHA-1 is provided here for experiment fidelity; new protocol code
//! defaults to SHA-256.

use crate::Hasher;

const H0: [u32; 5] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0];

/// Streaming SHA-1 state.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffered: usize,
    length_bytes: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self {
            state: H0,
            buffer: [0; 64],
            buffered: 0,
            length_bytes: 0,
        }
    }
}

impl Sha1 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs data.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bytes = self
            .length_bytes
            .checked_add(data.len() as u64)
            .expect("SHA-1 input too long");
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            data = rest;
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finishes and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.length_bytes.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5a827999),
                1 => (b ^ c ^ d, 0x6ed9eba1),
                2 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let t = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = t;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Hasher for Sha1 {
    const BLOCK_LEN: usize = 64;
    const OUTPUT_LEN: usize = 20;

    fn update(&mut self, data: &[u8]) {
        Sha1::update(self, data);
    }

    fn finalize_vec(self) -> Vec<u8> {
        self.finalize().to_vec()
    }
}

/// One-shot SHA-1.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(777).collect();
        for split in [0usize, 1, 63, 64, 65, 776, 777] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha1(&data), "split={split}");
        }
    }
}
