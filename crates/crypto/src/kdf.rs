//! HKDF (RFC 5869) over HMAC-SHA-256, plus a tiny labeled-derivation helper.

use crate::hmac::{hmac, Hmac};
use crate::sha256::Sha256;

/// HKDF-Extract: `PRK = HMAC(salt, ikm)`.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> Vec<u8> {
    hmac::<Sha256>(salt, ikm)
}

/// HKDF-Expand: derives `len` bytes from a pseudorandom key and context info.
/// Panics if `len > 255 · 32`.
pub fn hkdf_expand(prk: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * 32, "HKDF output too long");
    let mut okm = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut mac = Hmac::<Sha256>::new(prk);
        mac.update(&t);
        mac.update(info);
        mac.update(&[counter]);
        t = mac.finalize();
        let take = (len - okm.len()).min(t.len());
        okm.extend_from_slice(&t[..take]);
        counter = counter.checked_add(1).expect("HKDF counter overflow");
    }
    okm
}

/// Full HKDF: extract-then-expand.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    hkdf_expand(&hkdf_extract(salt, ikm), info, len)
}

/// Derives a subkey of `len` bytes from `master` for a domain-separation
/// `label` — the workspace's uniform way to split a master secret into
/// encryption and MAC keys.
pub fn derive_key(master: &[u8], label: &str, len: usize) -> Vec<u8> {
    hkdf(b"pbcd-kdf-v1", master, label.as_bytes(), len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 5869 Test Case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt = from_hex("000102030405060708090a0b0c");
        let info = from_hex("f0f1f2f3f4f5f6f7f8f9");
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 Test Case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let okm = hkdf(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_lengths() {
        let prk = hkdf_extract(b"salt", b"ikm");
        for len in [1usize, 31, 32, 33, 64, 100] {
            assert_eq!(hkdf_expand(&prk, b"info", len).len(), len);
        }
        // Prefix property: shorter outputs are prefixes of longer ones.
        let long = hkdf_expand(&prk, b"info", 64);
        let short = hkdf_expand(&prk, b"info", 20);
        assert_eq!(&long[..20], &short[..]);
    }

    #[test]
    fn labels_separate_domains() {
        let master = b"master secret";
        let enc = derive_key(master, "enc", 32);
        let mac = derive_key(master, "mac", 32);
        assert_ne!(enc, mac);
        assert_eq!(derive_key(master, "enc", 32), enc);
    }
}
