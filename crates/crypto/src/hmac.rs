//! HMAC (RFC 2104) over any [`Hasher`] implementation.

use crate::Hasher;

/// Streaming HMAC.
pub struct Hmac<H: Hasher> {
    inner: H,
    outer_key: Vec<u8>,
}

impl<H: Hasher> Hmac<H> {
    /// Creates an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut padded = vec![0u8; H::BLOCK_LEN];
        if key.len() > H::BLOCK_LEN {
            let mut h = H::default();
            h.update(key);
            let digest = h.finalize_vec();
            padded[..digest.len()].copy_from_slice(&digest);
        } else {
            padded[..key.len()].copy_from_slice(key);
        }
        let ipad: Vec<u8> = padded.iter().map(|b| b ^ 0x36).collect();
        let opad: Vec<u8> = padded.iter().map(|b| b ^ 0x5c).collect();
        let mut inner = H::default();
        inner.update(&ipad);
        Self {
            inner,
            outer_key: opad,
        }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the tag (`H::OUTPUT_LEN` bytes).
    pub fn finalize(self) -> Vec<u8> {
        let inner_digest = self.inner.finalize_vec();
        let mut outer = H::default();
        outer.update(&self.outer_key);
        outer.update(&inner_digest);
        outer.finalize_vec()
    }
}

/// One-shot HMAC.
pub fn hmac<H: Hasher>(key: &[u8], data: &[u8]) -> Vec<u8> {
    let mut mac = Hmac::<H>::new(key);
    mac.update(data);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::Sha1;
    use crate::sha256::Sha256;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac::<Sha256>(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac::<Sha256>(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3_long_data() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac::<Sha256>(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac::<Sha256>(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 2202 test vectors for HMAC-SHA-1.
    #[test]
    fn rfc2202_sha1_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac::<Sha1>(&key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    #[test]
    fn rfc2202_sha1_case2() {
        assert_eq!(
            hex(&hmac::<Sha1>(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = b"streaming key";
        let data = b"hello hmac world, split across updates";
        let mut mac = Hmac::<Sha256>::new(key);
        mac.update(&data[..10]);
        mac.update(&data[10..]);
        assert_eq!(mac.finalize(), hmac::<Sha256>(key, data));
    }
}
