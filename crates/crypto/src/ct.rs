//! Constant-time byte comparison.

/// Compares two byte slices without early exit on mismatch.
///
/// Returns `false` immediately only for length mismatch (lengths are public
/// in every protocol message this workspace produces).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::ct_eq;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(ct_eq(&[0u8; 64], &[0u8; 64]));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"", b"x"));
        // Differences at every position are caught.
        let base = [0u8; 32];
        for i in 0..32 {
            let mut other = base;
            other[i] = 1;
            assert!(!ct_eq(&base, &other));
        }
    }
}
