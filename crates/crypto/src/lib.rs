//! # pbcd-crypto
//!
//! Symmetric cryptography for the PBCD workspace, implemented from scratch
//! and validated against published test vectors:
//!
//! * [`sha1`](mod@sha1) / [`sha256`](mod@sha256) — FIPS 180-4 hash functions (the paper's random
//!   oracle `H(·)`; the original system used OpenSSL SHA-1),
//! * [`hmac`](mod@hmac) — RFC 2104 MAC over any [`Hasher`],
//! * [`aes`] / [`ctr`] — FIPS 197 block cipher + counter mode (the paper's
//!   semantically secure cipher `E`),
//! * [`kdf`] — RFC 5869 HKDF,
//! * [`authenc`] — encrypt-then-MAC authenticated encryption,
//! * [`ct`] — constant-time comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod authenc;
pub mod ct;
pub mod ctr;
pub mod hmac;
pub mod kdf;
pub mod sha1;
pub mod sha256;

/// A streaming hash function, generic glue for [`hmac::Hmac`] and protocol
/// code that is parameterized over the random-oracle instantiation.
pub trait Hasher: Default {
    /// Internal block length in bytes (HMAC padding unit).
    const BLOCK_LEN: usize;
    /// Digest length in bytes.
    const OUTPUT_LEN: usize;

    /// Absorbs data.
    fn update(&mut self, data: &[u8]);
    /// Finishes, returning `OUTPUT_LEN` bytes.
    fn finalize_vec(self) -> Vec<u8>;

    /// One-shot digest over the concatenation of `parts`.
    fn digest_concat(parts: &[&[u8]]) -> Vec<u8> {
        let mut h = Self::default();
        for p in parts {
            h.update(p);
        }
        h.finalize_vec()
    }
}

pub use aes::{Aes, AesKeySize};
pub use authenc::{AuthDecryptError, AuthKey, TAG_LEN};
pub use ct::ct_eq;
pub use ctr::{ctr_encrypt, ctr_xor, NONCE_LEN};
pub use hmac::{hmac, Hmac};
pub use kdf::{derive_key, hkdf, hkdf_expand, hkdf_extract};
pub use sha1::{sha1, Sha1};
pub use sha256::{sha256, sha256_concat, Sha256};
