//! Histogram correctness: pinned bucket boundaries, monotone CDF,
//! quantiles checked against a sorted-reference implementation on random
//! samples, and exact totals under concurrent recording.

use pbcd_telemetry::{bucket_index, bucket_upper_bound, Histogram, BUCKET_COUNT};
use proptest::prelude::*;
use std::thread;

#[test]
fn bucket_boundaries_are_pinned() {
    // Bucket 0 holds exactly the value 0.
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_upper_bound(0), 0);
    // Bucket i (1 ≤ i < BUCKET_COUNT-1) holds [2^(i-1), 2^i).
    for i in 1..BUCKET_COUNT - 1 {
        let lo = 1u64 << (i - 1);
        let hi = (1u64 << i) - 1;
        assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
        assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
        assert_eq!(bucket_upper_bound(i), hi);
    }
    // Everything at or above 2^(BUCKET_COUNT-2) lands in the overflow
    // bucket, whose reported upper bound is u64::MAX.
    let overflow_lo = 1u64 << (BUCKET_COUNT - 2);
    assert_eq!(bucket_index(overflow_lo), BUCKET_COUNT - 1);
    assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    assert_eq!(bucket_upper_bound(BUCKET_COUNT - 1), u64::MAX);
}

#[test]
fn empty_histogram_snapshot_is_all_zero() {
    let snap = Histogram::new().snapshot();
    assert_eq!(snap.count, 0);
    assert_eq!(snap.p50, 0);
    assert_eq!(snap.p90, 0);
    assert_eq!(snap.p99, 0);
    assert_eq!(snap.max, 0);
}

#[test]
fn single_value_pins_every_statistic_to_its_bucket() {
    let h = Histogram::new();
    h.record(1000); // bucket 10: [512, 1023]
    let snap = h.snapshot();
    assert_eq!(snap.count, 1);
    assert_eq!(snap.p50, 1023);
    assert_eq!(snap.p90, 1023);
    assert_eq!(snap.p99, 1023);
    assert_eq!(snap.max, 1023);
}

#[test]
fn concurrent_recording_sums_exactly() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 10_000;
    let h = Histogram::new();
    thread::scope(|scope| {
        for t in 0..THREADS {
            let h = h.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread across many buckets so threads collide on slots.
                    h.record((t * PER_THREAD + i) as u64);
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count, (THREADS * PER_THREAD) as u64);
    assert_eq!(snap.counts.iter().sum::<u64>(), snap.count);
}

/// Reference quantile on the raw samples: smallest sample value `v` such
/// that at least `⌈q·n⌉` samples are ≤ `v`.
fn reference_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[target - 1]
}

proptest! {
    #[test]
    fn cdf_is_monotone_and_totals_match(values in prop::collection::vec(any::<u64>(), 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.counts.iter().sum::<u64>(), snap.count);
        // Quantiles are monotone in q.
        prop_assert!(snap.p50 <= snap.p90);
        prop_assert!(snap.p90 <= snap.p99);
        prop_assert!(snap.p99 <= snap.max);
        // The CDF over buckets is monotone by construction; check the
        // quantile function against it for a sweep of q values.
        let mut prev = 0u64;
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = snap.quantile(q);
            prop_assert!(v >= prev, "quantile({}) = {} < {}", q, v, prev);
            prev = v;
        }
    }

    #[test]
    fn quantiles_agree_with_sorted_reference(
        values in prop::collection::vec(0u64..2_000_000_000, 1..300),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        for (q, got) in [(0.5, snap.p50), (0.99, snap.p99)] {
            let want = reference_quantile(&sorted, q);
            // The histogram reports the inclusive upper bound of the
            // bucket the reference quantile falls into: same bucket,
            // never a smaller value, less than 2x above.
            prop_assert_eq!(bucket_index(got), bucket_index(want),
                "q={} reference {} reported {}", q, want, got);
            prop_assert!(got >= want);
        }
    }

    #[test]
    fn every_value_lands_in_its_pinned_bucket(v in any::<u64>()) {
        let h = Histogram::new();
        h.record(v);
        let snap = h.snapshot();
        let i = bucket_index(v);
        prop_assert_eq!(snap.counts[i], 1);
        // The bucket really covers v.
        prop_assert!(v <= bucket_upper_bound(i));
        if i > 0 {
            prop_assert!(v > bucket_upper_bound(i - 1));
        }
    }
}
