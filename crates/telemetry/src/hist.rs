//! Log-bucketed latency histograms.
//!
//! A [`Histogram`] sorts recorded values (nanoseconds, by convention) into
//! power-of-two buckets: bucket `0` holds the value `0`, bucket `i ≥ 1`
//! holds `[2^(i-1), 2^i)`, and the last bucket absorbs everything at or
//! above `2^(BUCKET_COUNT-2)` (≈ 4.6 minutes in nanoseconds — far beyond
//! any latency this workspace measures). Recording is a single relaxed
//! `fetch_add` on a pre-resolved bucket slot, so a histogram handle can sit
//! on the broker's publish hot path without a measurable cost.
//!
//! Snapshots derive count, quantiles, and max from the bucket counts alone.
//! A reported quantile is the *inclusive upper bound* of the bucket the
//! quantile falls into, so it over-estimates the true sample quantile by
//! less than 2× — the right trade for a fixed-size, lock-free recorder.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of buckets: `0`, then one per power of two up to `2^38`, then an
/// overflow bucket. 40 slots × 8 bytes keeps a histogram in a cache line
/// pair's neighbourhood.
pub const BUCKET_COUNT: usize = 40;

/// Bucket index for a recorded value: `0 → 0`, otherwise one plus the
/// position of the highest set bit, clamped into the overflow bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKET_COUNT - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the overflow
/// bucket, whose true range is unbounded).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKET_COUNT - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free, fixed-size latency histogram handle.
///
/// Cloning is cheap (an `Arc` bump) and every clone records into the same
/// buckets; this is how the registry hands hot paths a pre-resolved handle
/// so no name lookup happens per record.
#[derive(Clone)]
pub struct Histogram {
    buckets: Arc<[AtomicU64]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh histogram with all buckets zero.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: Arc::from(buckets),
        }
    }

    /// Records one value (nanoseconds by convention): exactly one relaxed
    /// atomic add.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a [`Duration`], saturating at `u64::MAX` nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records the time elapsed since `start`.
    #[inline]
    pub fn record_since(&self, start: Instant) {
        self.record_duration(start.elapsed());
    }

    /// A point-in-time copy of the bucket counts with derived statistics.
    ///
    /// Buckets are read individually (relaxed), so a snapshot racing
    /// concurrent recording may split a record across `count` and a bucket;
    /// every value recorded before the snapshot started is included.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKET_COUNT];
        for (slot, bucket) in counts.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot::from_counts(counts)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("p50", &snap.p50)
            .field("max", &snap.max)
            .finish()
    }
}

/// Derived view of a histogram at one point in time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_index`] for the bucket layout).
    pub counts: [u64; BUCKET_COUNT],
    /// Total number of recorded values.
    pub count: u64,
    /// Median (bucket upper bound, see module docs).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Upper bound of the highest non-empty bucket; 0 when empty.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Builds the derived statistics from raw bucket counts.
    pub fn from_counts(counts: [u64; BUCKET_COUNT]) -> Self {
        let count: u64 = counts.iter().sum();
        let max = counts
            .iter()
            .rposition(|&c| c > 0)
            .map(bucket_upper_bound)
            .unwrap_or(0);
        let mut snap = HistogramSnapshot {
            counts,
            count,
            p50: 0,
            p90: 0,
            p99: 0,
            max,
        };
        snap.p50 = snap.quantile(0.50);
        snap.p90 = snap.quantile(0.90);
        snap.p99 = snap.quantile(0.99);
        snap
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket upper bound: the value
    /// `v` such that at least `⌈q·count⌉` recorded values were `≤ v`.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        self.max
    }
}
