//! Unified telemetry plane for the pbcd workspace: a dependency-free
//! metrics registry, log-bucketed latency histograms, a bounded trace-event
//! ring, and a Prometheus-style text exposition format.
//!
//! Everything here is `std`-only (the workspace builds fully offline) and
//! designed around one constraint: **recording must be lock-free and
//! near-free**. Hot paths hold pre-resolved [`Counter`] / [`Gauge`] /
//! [`Histogram`] handles (cheap `Arc` clones obtained once at setup), so a
//! record is a single relaxed atomic add — no name lookup, no locking, no
//! allocation.
//!
//! The [`Registry`] is the cold-path side: it names metrics, hands out
//! handles, and produces point-in-time [`Snapshot`]s. A snapshot is taken
//! under the registry's one internal lock and reads every metric in a
//! single pass, which is what gives callers a *consistent read path*: all
//! values in one snapshot were observed in one critical section, so a
//! stats view built from a snapshot can never pair a counter from "now"
//! with a gauge from "later". (Individual atomic loads are still relaxed;
//! the consistency contract is "one pass, one point in time", not a
//! globally serialized cut.)
//!
//! ```
//! use pbcd_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let publishes = registry.counter("broker_publishes_total");
//! let latency = registry.histogram("broker_publish_ack_ns");
//!
//! publishes.inc();
//! latency.record(12_345);
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("broker_publishes_total"), Some(1));
//! println!("{}", snap.render_text());
//! ```
//!
//! Metric names follow the Prometheus convention `name{label="value"}`;
//! the label part, when present, is simply part of the registered name
//! (e.g. `broker_subscriber_drops_total{cause="queue_overflow"}`), and the
//! renderer splices histogram quantile labels into an existing label set.

mod hist;
mod trace;

pub use hist::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, BUCKET_COUNT};
pub use trace::{TraceEvent, TraceKind, TraceLog};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonically increasing event counter.
///
/// Clones share the same underlying cell; recording is one relaxed atomic
/// add.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero, not attached to any registry.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (queue depth, retained bytes, …).
///
/// Clones share the same underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh gauge at zero, not attached to any registry.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero (concurrent add/sub races may
    /// briefly over- or under-shoot; gauges are instantaneous readings,
    /// not ledgers).
    #[inline]
    pub fn sub(&self, n: u64) {
        // fetch_update with saturating_sub never wraps below zero.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One registered metric (registry-internal).
#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A point-in-time value of one metric inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram snapshot (boxed: a snapshot carries its full bucket
    /// array).
    Histogram(Box<HistogramSnapshot>),
}

/// Names and snapshots metrics; the cold-path half of the telemetry plane.
///
/// Handle lookup (`counter`/`gauge`/`histogram`) takes the registry's one
/// mutex; hot paths call it once at setup and keep the returned handle.
/// Every registry also owns a [`TraceLog`] ring and a start instant that
/// anchors [`Registry::now_ns`] timestamps.
pub struct Registry {
    start: Instant,
    metrics: Mutex<BTreeMap<String, Metric>>,
    trace: TraceLog,
}

/// Default capacity of a registry's trace-event ring.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry with the default trace capacity.
    pub fn new() -> Registry {
        Registry::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An empty registry whose trace ring retains `capacity` events.
    pub fn with_trace_capacity(capacity: usize) -> Registry {
        Registry {
            start: Instant::now(),
            metrics: Mutex::new(BTreeMap::new()),
            trace: TraceLog::new(capacity),
        }
    }

    /// Nanoseconds since this registry was created (trace timestamps).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The trace-event ring.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Returns the counter registered under `name`, registering it first
    /// if needed.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind — that
    /// is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!(
                "metric {name:?} already registered as {}",
                other.kind_name()
            ),
        }
    }

    /// Returns the gauge registered under `name`, registering it first if
    /// needed.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!(
                "metric {name:?} already registered as {}",
                other.kind_name()
            ),
        }
    }

    /// Returns the histogram registered under `name`, registering it first
    /// if needed.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.register(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!(
                "metric {name:?} already registered as {}",
                other.kind_name()
            ),
        }
    }

    fn register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock().expect("telemetry registry poisoned");
        metrics.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// A point-in-time snapshot of every registered metric.
    ///
    /// This is the **single read path** for stats views: all metrics are
    /// read in one pass under the registry lock, so values inside one
    /// snapshot belong to one point in time (see the crate docs for the
    /// precise contract).
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("telemetry registry poisoned");
        let entries = metrics
            .iter()
            .map(|(name, m)| {
                let value = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { entries }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let metrics = self.metrics.lock().expect("telemetry registry poisoned");
        f.debug_struct("Registry")
            .field("metrics", &metrics.len())
            .field("trace", &self.trace)
            .finish()
    }
}

/// A point-in-time view of a whole [`Registry`], ordered by metric name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` pairs in lexicographic name order.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// The value registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter value under `name` (`None` if absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value under `name` (`None` if absent or not a gauge).
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram snapshot under `name` (`None` if absent or not a
    /// histogram).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Renders the snapshot in the Prometheus-style text format.
    ///
    /// Counters and gauges render as `name value`; a histogram `h` renders
    /// as `h{quantile="0.5"}`, `h{quantile="0.9"}`, `h{quantile="0.99"}`,
    /// `h_max`, and `h_count` lines. A `{label="…"}` set already present
    /// in the registered name is preserved (quantile labels are spliced
    /// into it). Values are integers; one line per value, `\n`-terminated.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Histogram(h) => {
                    let (base, labels) = split_labels(name);
                    for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                        let _ = match labels {
                            Some(l) => writeln!(out, "{base}{{{l},quantile=\"{q}\"}} {v}"),
                            None => writeln!(out, "{base}{{quantile=\"{q}\"}} {v}"),
                        };
                    }
                    let _ = match labels {
                        Some(l) => writeln!(
                            out,
                            "{base}_max{{{l}}} {}\n{base}_count{{{l}}} {}",
                            h.max, h.count
                        ),
                        None => writeln!(out, "{base}_max {}\n{base}_count {}", h.max, h.count),
                    };
                }
            }
        }
        out
    }
}

/// Splits `name{label="x"}` into `("name", Some("label=\"x\""))`;
/// names without labels return `(name, None)`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match (name.find('{'), name.ends_with('}')) {
        (Some(open), true) => (&name[..open], Some(&name[open + 1..name.len() - 1])),
        _ => (name, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("a_total");
        let g = r.gauge("b_depth");
        c.inc();
        c.add(4);
        g.set(7);
        g.sub(3);
        g.sub(100); // saturates
        let snap = r.snapshot();
        assert_eq!(snap.counter("a_total"), Some(5));
        assert_eq!(snap.gauge("b_depth"), Some(0));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn handles_share_state() {
        let r = Registry::new();
        r.counter("x").inc();
        r.counter("x").inc();
        assert_eq!(r.snapshot().counter("x"), Some(2));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn render_text_format() {
        let r = Registry::new();
        r.counter("pub_total").add(3);
        r.gauge("depth").set(2);
        r.histogram("lat_ns").record(100);
        r.counter("drops_total{cause=\"overflow\"}").inc();
        let text = r.snapshot().render_text();
        assert!(text.contains("pub_total 3\n"));
        assert!(text.contains("depth 2\n"));
        assert!(text.contains("drops_total{cause=\"overflow\"} 1\n"));
        assert!(text.contains("lat_ns{quantile=\"0.5\"} 127\n"));
        assert!(text.contains("lat_ns_count 1\n"));
        assert!(text.contains("lat_ns_max 127\n"));
    }

    #[test]
    fn labelled_histogram_splices_quantile() {
        let r = Registry::new();
        r.histogram("req_ns{kind=\"register\"}").record(1);
        let text = r.snapshot().render_text();
        assert!(text.contains("req_ns{kind=\"register\",quantile=\"0.5\"} 1\n"));
        assert!(text.contains("req_ns_count{kind=\"register\"} 1\n"));
    }

    #[test]
    fn trace_ring_wraps_and_orders() {
        let log = TraceLog::new(4);
        for i in 0..6u64 {
            log.record(TraceEvent {
                timestamp_ns: i,
                conn_id: i,
                kind: TraceKind::Publish,
                epoch: i,
                duration_ns: 0,
            });
        }
        let events = log.events();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.conn_id).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
        assert_eq!(log.recorded(), 6);
        assert_eq!(log.capacity(), 4);
    }

    #[test]
    fn trace_kind_codes_roundtrip() {
        for kind in [
            TraceKind::Connect,
            TraceKind::Publish,
            TraceKind::Reject,
            TraceKind::Deliver,
            TraceKind::Subscribe,
            TraceKind::Drop,
            TraceKind::Request,
            TraceKind::Relay,
        ] {
            assert_eq!(TraceKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(TraceKind::from_code(0), None);
        assert_eq!(TraceKind::from_code(99), None);
    }

    #[test]
    fn snapshot_is_single_pass() {
        let r = Registry::new();
        let c = r.counter("n");
        let g = r.gauge("m");
        c.add(10);
        g.set(10);
        let snap = r.snapshot();
        // Mutations after the snapshot are invisible to it.
        c.add(1);
        g.set(99);
        assert_eq!(snap.counter("n"), Some(10));
        assert_eq!(snap.gauge("m"), Some(10));
    }
}
