//! A bounded, lock-free ring buffer of structured trace events.
//!
//! The broker records one fixed-size event per wire-level happening
//! (publish, deliver, drop, …) so an operator can reconstruct the recent
//! per-connection timeline of a live process without logs. All event
//! fields are 64-bit words stored in atomics; each slot carries a seqlock
//! sequence number so readers detect and skip slots that are mid-write.
//! Writers never block and never allocate: they claim a slot with one
//! `fetch_add` on the head cursor and overwrite the oldest event once the
//! ring wraps.
//!
//! Trace events deliberately carry **no document names, payload bytes, or
//! subscriber identities** — only numeric connection ids and epochs, the
//! same pseudonymous view the broker already has. This keeps the stats
//! frame's threat model simple: scraping a broker can never reveal more
//! than broker compromise already would.

use std::sync::atomic::{AtomicU64, Ordering};

/// What kind of wire-level happening a [`TraceEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A connection was accepted.
    Connect,
    /// A publish was accepted and retained (duration = publish→ack).
    Publish,
    /// A publish was rejected.
    Reject,
    /// A Deliver frame was written to a subscriber
    /// (duration = enqueue→write-complete).
    Deliver,
    /// A connection subscribed.
    Subscribe,
    /// A subscriber was forcibly dropped.
    Drop,
    /// A direct-plane request was served (duration = handler time).
    Request,
    /// A container was forwarded to a peer broker and acknowledged
    /// (duration = enqueue→downstream-ack, i.e. relay lag).
    Relay,
}

impl TraceKind {
    /// Stable numeric code used inside the atomic slots.
    pub fn code(self) -> u64 {
        match self {
            TraceKind::Connect => 1,
            TraceKind::Publish => 2,
            TraceKind::Reject => 3,
            TraceKind::Deliver => 4,
            TraceKind::Subscribe => 5,
            TraceKind::Drop => 6,
            TraceKind::Request => 7,
            TraceKind::Relay => 8,
        }
    }

    /// Inverse of [`TraceKind::code`]; `None` for unknown codes.
    pub fn from_code(code: u64) -> Option<TraceKind> {
        Some(match code {
            1 => TraceKind::Connect,
            2 => TraceKind::Publish,
            3 => TraceKind::Reject,
            4 => TraceKind::Deliver,
            5 => TraceKind::Subscribe,
            6 => TraceKind::Drop,
            7 => TraceKind::Request,
            8 => TraceKind::Relay,
            _ => return None,
        })
    }

    /// Short lowercase label (used by `Debug`/rendering).
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Connect => "connect",
            TraceKind::Publish => "publish",
            TraceKind::Reject => "reject",
            TraceKind::Deliver => "deliver",
            TraceKind::Subscribe => "subscribe",
            TraceKind::Drop => "drop",
            TraceKind::Request => "request",
            TraceKind::Relay => "relay",
        }
    }
}

/// One structured trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the owning registry was created.
    pub timestamp_ns: u64,
    /// Numeric connection id the event belongs to (0 when none applies).
    pub conn_id: u64,
    /// Event kind.
    pub kind: TraceKind,
    /// Document epoch involved (0 when none applies).
    pub epoch: u64,
    /// Duration of the traced operation in nanoseconds (0 for
    /// instantaneous events).
    pub duration_ns: u64,
}

/// One ring slot: a seqlock sequence word plus the five event fields.
///
/// `seq` is even when the slot is stable and odd while a writer is
/// mid-update; `seq == 0` means never written.
struct Slot {
    seq: AtomicU64,
    timestamp_ns: AtomicU64,
    conn_id: AtomicU64,
    kind: AtomicU64,
    epoch: AtomicU64,
    duration_ns: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            timestamp_ns: AtomicU64::new(0),
            conn_id: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            duration_ns: AtomicU64::new(0),
        }
    }
}

/// A bounded lock-free event log. See the module docs for the concurrency
/// contract: writes never block; a read races at most the slots being
/// rewritten at that instant and skips them.
pub struct TraceLog {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl TraceLog {
    /// A ring holding the most recent `capacity` events (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> TraceLog {
        let capacity = capacity.max(1);
        TraceLog {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total number of events ever recorded (not the retained count).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records one event, overwriting the oldest once the ring is full.
    ///
    /// Lock-free: one `fetch_add` claims a slot, then the fields are
    /// published under the slot's seqlock. If writers lap the ring so fast
    /// that two claim the same slot simultaneously, readers may skip that
    /// slot — events are best-effort diagnostics, never load-bearing.
    pub fn record(&self, ev: TraceEvent) {
        let idx = (self.head.fetch_add(1, Ordering::Relaxed) as usize) % self.slots.len();
        let slot = &self.slots[idx];
        slot.seq.fetch_add(1, Ordering::AcqRel); // odd: write in progress
        slot.timestamp_ns.store(ev.timestamp_ns, Ordering::Relaxed);
        slot.conn_id.store(ev.conn_id, Ordering::Relaxed);
        slot.kind.store(ev.kind.code(), Ordering::Relaxed);
        slot.epoch.store(ev.epoch, Ordering::Relaxed);
        slot.duration_ns.store(ev.duration_ns, Ordering::Relaxed);
        slot.seq.fetch_add(1, Ordering::AcqRel); // even: stable
    }

    /// The retained events, oldest first.
    ///
    /// Slots that are mid-write (or torn by a racing writer) are skipped;
    /// the returned events are each individually consistent.
    pub fn events(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let retained = head.min(cap);
        let mut out = Vec::with_capacity(retained as usize);
        for i in 0..retained {
            let idx = ((head - retained + i) % cap) as usize;
            let slot = &self.slots[idx];
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 == 0 || seq1 % 2 == 1 {
                continue;
            }
            let ev = TraceEvent {
                timestamp_ns: slot.timestamp_ns.load(Ordering::Relaxed),
                conn_id: slot.conn_id.load(Ordering::Relaxed),
                kind: match TraceKind::from_code(slot.kind.load(Ordering::Relaxed)) {
                    Some(k) => k,
                    None => continue,
                },
                epoch: slot.epoch.load(Ordering::Relaxed),
                duration_ns: slot.duration_ns.load(Ordering::Relaxed),
            };
            let seq2 = slot.seq.load(Ordering::Acquire);
            if seq1 != seq2 {
                continue; // torn by a racing writer: skip
            }
            out.push(ev);
        }
        out
    }
}

impl std::fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceLog")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}
