//! Crash-recovery fault injection for the durable retention store.
//!
//! The central property: for a log truncated at *any* byte boundary,
//! recovery never panics, recovers exactly the longest valid prefix of
//! whole records, and physically truncates the torn tail — and a broker
//! restarted from such a log replays the identical retained set to a late
//! joiner over real TCP.

use pbcd_docs::{BroadcastContainer, EncryptedGroup, EncryptedSegment};
use pbcd_net::store::encode_record;
use pbcd_net::{
    Broker, BrokerClient, BrokerConfig, FsyncPolicy, NetError, PeerRole, RetentionStore,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A collision-free scratch path (no tempfile crate in the workspace):
/// pid + per-process counter under the system temp dir, cleaned by the
/// returned guard.
fn scratch_log(tag: &str) -> (PathBuf, ScratchGuard) {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!(
        "pbcd-recovery-{tag}-{}-{n}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    (path.clone(), ScratchGuard(path))
}

struct ScratchGuard(PathBuf);

impl Drop for ScratchGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut compact = self.0.as_os_str().to_os_string();
        compact.push(".compact");
        let _ = std::fs::remove_file(compact);
    }
}

fn container(doc: &str, epoch: u64) -> BroadcastContainer {
    BroadcastContainer {
        epoch,
        document_name: doc.to_string(),
        skeleton_xml: format!("<r><pbcd-segment id=\"0\"/><!--{epoch}--></r>"),
        groups: vec![EncryptedGroup {
            config_id: 0,
            key_info: vec![0xAB; 32],
            segments: vec![EncryptedSegment {
                segment_id: 0,
                tag: "Record".into(),
                ciphertext: vec![epoch as u8; 96],
            }],
        }],
    }
}

fn record_for(doc: &str, epoch: u64) -> Vec<u8> {
    let body = pbcd_net::frame::deliver_body(&container(doc, epoch).encode().unwrap());
    encode_record(doc, epoch, &body).unwrap()
}

/// Truncate the log at every byte boundary of the final record: recovery
/// must never panic, must recover exactly the records fully before the
/// cut, and must shave the torn tail off the file.
#[test]
fn truncation_at_every_byte_boundary_of_the_final_record() {
    let records = [
        record_for("a.xml", 1),
        record_for("b.xml", 1),
        record_for("a.xml", 2),
    ];
    let prefix: Vec<u8> = records[..2].concat();
    let full: Vec<u8> = records.concat();

    for cut in prefix.len()..full.len() {
        let (path, _guard) = scratch_log("boundary");
        std::fs::write(&path, &full[..cut]).unwrap();
        let store = RetentionStore::open(&path, 4, u64::MAX, FsyncPolicy::Off).unwrap();
        let report = store.recovery();
        assert_eq!(
            report.records_recovered, 2,
            "cut at {cut}: exactly the longest valid prefix"
        );
        assert_eq!(report.truncated_bytes, (cut - prefix.len()) as u64);
        assert_eq!(store.newest_epoch("a.xml"), Some(1));
        assert_eq!(store.newest_epoch("b.xml"), Some(1));
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            prefix.len() as u64,
            "torn tail physically removed"
        );
        drop(store);
    }

    // The untruncated log recovers everything, with nothing shaved off.
    let (path, _guard) = scratch_log("intact");
    std::fs::write(&path, &full).unwrap();
    let store = RetentionStore::open(&path, 4, u64::MAX, FsyncPolicy::Off).unwrap();
    assert_eq!(store.recovery().records_recovered, 3);
    assert_eq!(store.recovery().truncated_bytes, 0);
    assert_eq!(store.newest_epoch("a.xml"), Some(2));
}

/// Corruption mid-log bounds recovery at the corrupt record: the valid
/// records *after* it are discarded too — "longest valid prefix", not
/// "every salvageable record" (resynchronizing past corruption could
/// resurrect records an operator intentionally truncated away).
#[test]
fn corruption_mid_log_truncates_everything_after_it() {
    let (path, _guard) = scratch_log("midlog");
    let good = [record_for("a.xml", 1), record_for("b.xml", 1)].concat();
    let mut log = good.clone();
    let mut corrupt = record_for("c.xml", 1);
    corrupt[20] ^= 0xFF; // flip a payload byte: checksum mismatch
    log.extend_from_slice(&corrupt);
    log.extend_from_slice(&record_for("d.xml", 1)); // valid but unreachable
    std::fs::write(&path, &log).unwrap();

    let store = RetentionStore::open(&path, 4, u64::MAX, FsyncPolicy::Off).unwrap();
    assert_eq!(store.recovery().records_recovered, 2);
    assert!(store.newest_epoch("c.xml").is_none());
    assert!(store.newest_epoch("d.xml").is_none());
    assert_eq!(std::fs::metadata(&path).unwrap().len(), good.len() as u64);
}

/// Arbitrary garbage — including an empty file — never panics recovery.
#[test]
fn garbage_logs_never_panic_recovery() {
    for garbage in [
        Vec::new(),
        vec![0u8; 1],
        vec![0xFF; 11],
        b"PBL1".to_vec(),
        [b"PBL1".as_slice(), &[0xFF; 200]].concat(),
        vec![0x41; 4096],
    ] {
        let (path, _guard) = scratch_log("garbage");
        std::fs::write(&path, &garbage).unwrap();
        let store = RetentionStore::open(&path, 2, u64::MAX, FsyncPolicy::Off).unwrap();
        assert_eq!(store.recovery().records_recovered, 0);
        assert_eq!(store.recovery().truncated_bytes, garbage.len() as u64);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
    }
}

/// A store that recovered from a torn log keeps working: appends land on
/// the clean boundary and a second recovery sees old + new records.
#[test]
fn appends_after_recovery_land_on_a_clean_boundary() {
    let (path, _guard) = scratch_log("resume");
    let mut log = record_for("a.xml", 1);
    log.extend_from_slice(&record_for("a.xml", 2)[..9]); // torn tail
    std::fs::write(&path, &log).unwrap();

    let mut store = RetentionStore::open(&path, 4, u64::MAX, FsyncPolicy::Off).unwrap();
    assert_eq!(store.recovery().records_recovered, 1);
    let body = pbcd_net::frame::deliver_body(&container("a.xml", 3).encode().unwrap());
    let summary = pbcd_net::ConfigSummary {
        document_name: "a.xml".into(),
        epoch: 3,
        config_ids: vec![0],
        size_bytes: (body.len() - 4) as u64,
    };
    store.retain(summary, std::sync::Arc::new(body)).unwrap();
    drop(store);

    let store = RetentionStore::open(&path, 4, u64::MAX, FsyncPolicy::Off).unwrap();
    assert_eq!(store.recovery().records_recovered, 2);
    assert_eq!(store.newest_epoch("a.xml"), Some(3));
    assert_eq!(store.history("a.xml", 8).len(), 2);
}

/// End-to-end over real TCP: a broker "crashes" (drops without a clean
/// close), its log grows a torn tail, and the restarted broker replays the
/// identical retained set — documents, epochs and exact container bytes —
/// to a late joiner.
#[test]
fn restarted_broker_replays_identical_retained_set_over_tcp() {
    let (path, _guard) = scratch_log("tcp");
    let config = BrokerConfig {
        store_path: Some(path.clone()),
        fsync: FsyncPolicy::Off,
        history_depth: 2,
        ..BrokerConfig::default()
    };

    // First life: publish two docs, two epochs each.
    let broker = Broker::bind_with("127.0.0.1:0", config.clone()).unwrap();
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    let published = [
        container("ehr.xml", 1),
        container("ehr.xml", 2),
        container("news.xml", 7),
    ];
    for c in &published {
        publisher.publish(c).unwrap();
    }
    let summaries_before = {
        let mut c = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
        c.list_configs().unwrap()
    };
    // Crash: tear the broker down without a goodbye, then damage the log
    // tail the way a mid-append power cut would.
    drop(publisher);
    broker.shutdown();
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"PBL1\x00\x00\x01").unwrap(); // torn header
    }

    // Second life: recover and serve a late joiner the full history.
    let broker = Broker::bind_with("127.0.0.1:0", config).unwrap();
    assert_eq!(broker.recovery().records_recovered, 3);
    assert!(broker.recovery().truncated_bytes > 0);
    let stats = broker.stats();
    assert_eq!(stats.retained_documents, 2);
    assert_eq!(stats.records_recovered, 3);

    let mut late = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    late.subscribe_with_history::<&str>(&[], 8).unwrap();
    let mut replayed = Vec::new();
    for _ in 0..published.len() {
        replayed.push(late.next_delivery().unwrap());
    }
    // BTreeMap order (doc name), oldest epoch first within a doc.
    assert_eq!(replayed, published.to_vec());
    assert_eq!(
        {
            let mut c = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
            c.list_configs().unwrap()
        },
        summaries_before,
        "recovered summaries are byte-identical to the pre-crash ones"
    );
    // No phantom delivery beyond the retained set.
    late.set_read_timeout(Some(std::time::Duration::from_millis(200)))
        .unwrap();
    assert!(matches!(late.next_delivery(), Err(NetError::Io { .. })));
    broker.shutdown();
}

/// Compaction keeps only live records: after epochs far beyond the history
/// depth, a cap-sized log is rewritten, survives a reopen, and still
/// replays the correct newest window.
#[test]
fn compaction_rewrites_live_records_and_survives_reopen() {
    let (path, _guard) = scratch_log("compact");
    let record_len = record_for("doc.xml", 1).len() as u64;
    let mut store = RetentionStore::open(&path, 2, record_len * 4, FsyncPolicy::Off).unwrap();
    for epoch in 1..=20u64 {
        let body = pbcd_net::frame::deliver_body(&container("doc.xml", epoch).encode().unwrap());
        let summary = pbcd_net::ConfigSummary {
            document_name: "doc.xml".into(),
            epoch,
            config_ids: vec![0],
            size_bytes: (body.len() - 4) as u64,
        };
        store.retain(summary, std::sync::Arc::new(body)).unwrap();
    }
    assert!(
        store.compactions() >= 1,
        "cap-sized log must have compacted"
    );
    assert!(
        store.log_bytes() <= record_len * 8,
        "log stays near the live set, not 20 epochs deep"
    );
    drop(store);

    let store = RetentionStore::open(&path, 2, record_len * 4, FsyncPolicy::Off).unwrap();
    assert_eq!(store.newest_epoch("doc.xml"), Some(20));
    assert_eq!(store.history("doc.xml", 8).len(), 2, "depth-2 live window");
}
