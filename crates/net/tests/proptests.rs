//! Property-based robustness for the frame codec, the retention-log
//! record codec and the relay overlay's loop suppression: arbitrary
//! values round-trip, no amount of truncation or corruption makes
//! decoding panic, and propagation over arbitrary cyclic broker
//! topologies always terminates with at most one accept per broker.

use pbcd_docs::{BroadcastContainer, EncryptedGroup, EncryptedSegment};
use pbcd_net::store::{decode_record, encode_record, RecordError, RECORD_HEADER_LEN};
use pbcd_net::{relay_verdict, ConfigSummary, Frame, PeerRole, RelayVerdict};
use proptest::prelude::*;
use std::collections::VecDeque;

fn arb_container() -> impl Strategy<Value = BroadcastContainer> {
    (
        any::<u64>(),
        "[a-zA-Z0-9._-]{0,12}",
        "[ -~&&[^\"]]{0,32}",
        prop::collection::vec(
            (
                any::<u32>(),
                prop::collection::vec(any::<u8>(), 0..24),
                prop::collection::vec(
                    (
                        any::<u32>(),
                        "[a-zA-Z]{1,8}",
                        prop::collection::vec(any::<u8>(), 0..48),
                    ),
                    0..3,
                ),
            ),
            0..3,
        ),
    )
        .prop_map(
            |(epoch, document_name, skeleton_xml, groups)| BroadcastContainer {
                epoch,
                document_name,
                skeleton_xml,
                groups: groups
                    .into_iter()
                    .map(|(config_id, key_info, segs)| EncryptedGroup {
                        config_id,
                        key_info,
                        segments: segs
                            .into_iter()
                            .map(|(segment_id, tag, ciphertext)| EncryptedSegment {
                                segment_id,
                                tag,
                                ciphertext,
                            })
                            .collect(),
                    })
                    .collect(),
            },
        )
}

fn arb_summary() -> impl Strategy<Value = ConfigSummary> {
    (
        "[a-zA-Z0-9._-]{0,12}",
        any::<u64>(),
        prop::collection::vec(any::<u32>(), 0..6),
        any::<u64>(),
    )
        .prop_map(
            |(document_name, epoch, config_ids, size_bytes)| ConfigSummary {
                document_name,
                epoch,
                config_ids,
                size_bytes,
            },
        )
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        Just(Frame::Hello {
            role: PeerRole::Publisher
        }),
        Just(Frame::Hello {
            role: PeerRole::Subscriber
        }),
        Just(Frame::Hello {
            role: PeerRole::Broker
        }),
        Just(Frame::ListConfigs),
        Just(Frame::Bye),
        arb_container().prop_map(Frame::Publish),
        arb_container().prop_map(Frame::Deliver),
        prop::collection::vec("[a-zA-Z0-9._-]{0,12}", 0..4)
            .prop_map(|documents| Frame::Subscribe { documents }),
        prop::collection::vec(arb_summary(), 0..3).prop_map(Frame::Configs),
        (any::<u64>(), any::<u32>()).prop_map(|(epoch, fanout)| Frame::Ack { epoch, fanout }),
        "[ -~]{0,40}".prop_map(|message| Frame::Error { message }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn frame_roundtrip(frame in arb_frame()) {
        let enc = frame.encode().expect("bounded frames encode");
        prop_assert_eq!(Frame::decode(&enc), Ok(frame));
    }

    #[test]
    fn truncated_frames_always_error_never_panic(frame in arb_frame(), cut_seed in any::<u16>()) {
        let enc = frame.encode().expect("bounded frames encode");
        let cut = cut_seed as usize % enc.len();
        prop_assert!(Frame::decode(&enc[..cut]).is_err());
    }

    #[test]
    fn corrupted_frames_never_panic(
        frame in arb_frame(),
        pos_seed in any::<u16>(),
        xor in 1u8..=255,
    ) {
        let mut enc = frame.encode().expect("bounded frames encode");
        let pos = pos_seed as usize % enc.len();
        enc[pos] ^= xor;
        // Corruption may still decode (e.g. a flipped ciphertext byte);
        // the property is decode totality: Ok or WireError, no panic.
        let _ = Frame::decode(&enc);
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Frame::decode(&data);
    }

    #[test]
    fn appended_bytes_are_rejected(frame in arb_frame()) {
        let mut enc = frame.encode().expect("bounded frames encode");
        enc.push(0);
        prop_assert!(Frame::decode(&enc).is_err());
    }
}

/// An arbitrary retention-log record: document name, epoch, and a body at
/// least as long as the frame header the broker always writes (4 bytes).
fn arb_record() -> impl Strategy<Value = (String, u64, Vec<u8>)> {
    (
        "[a-zA-Z0-9._-]{0,24}",
        any::<u64>(),
        prop::collection::vec(any::<u8>(), 4..256),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn record_roundtrip((doc, epoch, body) in arb_record()) {
        let enc = encode_record(&doc, epoch, &body).expect("bounded records encode");
        let (rec, consumed) = decode_record(&enc).expect("roundtrip");
        prop_assert_eq!(consumed, enc.len());
        prop_assert_eq!(rec.document, doc);
        prop_assert_eq!(rec.epoch, epoch);
        prop_assert_eq!(rec.deliver_body, body);
    }

    #[test]
    fn record_decode_ignores_trailing_stream_bytes(
        (doc, epoch, body) in arb_record(),
        tail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // The log is a stream of records: decoding takes one record off
        // the front and reports how much it consumed.
        let enc = encode_record(&doc, epoch, &body).unwrap();
        let mut stream = enc.clone();
        stream.extend_from_slice(&tail);
        let (rec, consumed) = decode_record(&stream).expect("leading record decodes");
        prop_assert_eq!(consumed, enc.len());
        prop_assert_eq!(rec.deliver_body, body);
    }

    #[test]
    fn truncated_records_yield_typed_truncation((doc, epoch, body) in arb_record(), cut_seed in any::<u16>()) {
        let enc = encode_record(&doc, epoch, &body).unwrap();
        let cut = cut_seed as usize % enc.len();
        prop_assert_eq!(decode_record(&enc[..cut]).unwrap_err(), RecordError::Truncated);
    }

    #[test]
    fn corrupt_checksum_never_surfaces_a_wrong_container(
        (doc, epoch, body) in arb_record(),
        pos_seed in any::<u16>(),
        xor in 1u8..=255,
    ) {
        // Any single-byte change at or after the CRC field is *guaranteed*
        // detected (CRC32 catches all burst errors ≤ 32 bits), so a
        // corrupted payload can never decode into a different container.
        let mut enc = encode_record(&doc, epoch, &body).unwrap();
        let span = enc.len() - 8;
        let pos = 8 + pos_seed as usize % span;
        enc[pos] ^= xor;
        let err = decode_record(&enc).unwrap_err();
        prop_assert!(
            matches!(err, RecordError::BadChecksum | RecordError::Truncated | RecordError::Oversized),
            "corruption at {} must be caught, got {:?}", pos, err
        );
    }

    #[test]
    fn record_header_corruption_never_panics(
        (doc, epoch, body) in arb_record(),
        pos_seed in any::<u8>(),
        xor in 1u8..=255,
    ) {
        // Flips in magic/length land in a typed error or (for a length
        // that shrinks the payload) a checksum mismatch — decode stays
        // total either way.
        let mut enc = encode_record(&doc, epoch, &body).unwrap();
        let pos = pos_seed as usize % RECORD_HEADER_LEN;
        enc[pos] ^= xor;
        let _ = decode_record(&enc);
    }

    #[test]
    fn random_bytes_never_panic_the_record_decoder(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_record(&data);
    }
}

/// Simulates one epoch propagating through an arbitrary directed broker
/// topology under exactly the overlay's rules: senders stop once the
/// outgoing hop count would exceed the budget, receivers judge every
/// frame with [`relay_verdict`], and only a *first* accept forwards.
/// Returns `(accepts, processed)` per node / in total.
fn propagate(
    n: usize,
    edges: &[(usize, usize)],
    origin: usize,
    epoch: u64,
    max_hops: u8,
    retained: &mut [Option<u64>],
) -> (Vec<u32>, usize) {
    let ids: Vec<String> = (0..n).map(|i| format!("n{i}")).collect();
    let out = |node: usize| {
        edges
            .iter()
            .filter(move |(s, _)| *s == node)
            .map(|(_, d)| *d)
    };
    let mut accepts = vec![0u32; n];
    let mut frames: VecDeque<(usize, u8)> = VecDeque::new();
    // The origin publishes locally (its own retention, not an "accept")
    // and stamps hops = 1 on the frames it sends.
    retained[origin] = Some(epoch);
    if 1 <= max_hops {
        frames.extend(out(origin).map(|dst| (dst, 1u8)));
    }
    // Termination is the property under test: a cycle that suppression
    // failed to stop would blow through this budget and fail the test.
    let budget = (edges.len() + 1) * (n + 1) * (max_hops as usize + 1);
    let mut processed = 0usize;
    while let Some((node, hops)) = frames.pop_front() {
        processed += 1;
        assert!(processed <= budget, "propagation did not terminate");
        let verdict = relay_verdict(
            &ids[node],
            retained[node],
            &ids[origin],
            hops,
            epoch,
            max_hops,
        );
        if verdict != RelayVerdict::Accept {
            continue;
        }
        retained[node] = Some(epoch);
        accepts[node] += 1;
        let next = hops.saturating_add(1);
        if next <= max_hops {
            frames.extend(out(node).map(|dst| (dst, next)));
        }
    }
    (accepts, processed)
}

/// Random directed topologies with up to 6 brokers and plenty of room
/// for self-loops, cycles and parallel edges: endpoints are drawn from a
/// wide range and folded into `0..n` by modulo, which keeps the strategy
/// flat (no dependent generation) while still covering every edge shape.
fn arb_topology() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (
        2usize..7,
        prop::collection::vec((0usize..60, 0usize..60), 0..24),
    )
        .prop_map(|(n, raw)| {
            let edges = raw.into_iter().map(|(s, d)| (s % n, d % n)).collect();
            (n, edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn loop_suppression_terminates_with_at_most_one_accept_per_broker(
        (n, edges) in arb_topology(),
        epoch in 1u64..=u64::MAX,
        max_hops in 1u8..=5,
    ) {
        let mut retained = vec![None; n];
        let (accepts, _) = propagate(n, &edges, 0, epoch, max_hops, &mut retained);

        // Origin-id suppression: the publisher's own container never
        // re-enters it, no matter how many cycles point back.
        prop_assert_eq!(accepts[0], 0);
        // Idempotency: every broker accepts the epoch at most once even
        // across parallel edges and redundant mesh paths…
        for (node, &count) in accepts.iter().enumerate() {
            prop_assert!(count <= 1, "node {} accepted {} times", node, count);
        }
        // …and completeness: every broker within the hop budget accepts
        // exactly once (suppression never starves a reachable tier).
        let mut depth = vec![usize::MAX; n];
        depth[0] = 0;
        let mut bfs = VecDeque::from([0usize]);
        while let Some(s) = bfs.pop_front() {
            for &(src, dst) in &edges {
                if src == s && depth[dst] == usize::MAX {
                    depth[dst] = depth[s] + 1;
                    bfs.push_back(dst);
                }
            }
        }
        for node in 1..n {
            if depth[node] <= max_hops as usize {
                prop_assert_eq!(accepts[node], 1, "node {} within budget missed the epoch", node);
            }
        }

        // Replaying the same epoch into the converged overlay is fully
        // absorbed by the per-hop monotonicity backstop: zero accepts.
        let (again, _) = propagate(n, &edges, 0, epoch, max_hops, &mut retained);
        prop_assert_eq!(again.iter().sum::<u32>(), 0);
    }
}
