//! Property-based robustness for the frame codec: arbitrary frames
//! round-trip, and no amount of truncation or corruption makes decoding
//! panic — it always yields a clean `WireError`.

use pbcd_docs::{BroadcastContainer, EncryptedGroup, EncryptedSegment};
use pbcd_net::{ConfigSummary, Frame, PeerRole};
use proptest::prelude::*;

fn arb_container() -> impl Strategy<Value = BroadcastContainer> {
    (
        any::<u64>(),
        "[a-zA-Z0-9._-]{0,12}",
        "[ -~&&[^\"]]{0,32}",
        prop::collection::vec(
            (
                any::<u32>(),
                prop::collection::vec(any::<u8>(), 0..24),
                prop::collection::vec(
                    (
                        any::<u32>(),
                        "[a-zA-Z]{1,8}",
                        prop::collection::vec(any::<u8>(), 0..48),
                    ),
                    0..3,
                ),
            ),
            0..3,
        ),
    )
        .prop_map(
            |(epoch, document_name, skeleton_xml, groups)| BroadcastContainer {
                epoch,
                document_name,
                skeleton_xml,
                groups: groups
                    .into_iter()
                    .map(|(config_id, key_info, segs)| EncryptedGroup {
                        config_id,
                        key_info,
                        segments: segs
                            .into_iter()
                            .map(|(segment_id, tag, ciphertext)| EncryptedSegment {
                                segment_id,
                                tag,
                                ciphertext,
                            })
                            .collect(),
                    })
                    .collect(),
            },
        )
}

fn arb_summary() -> impl Strategy<Value = ConfigSummary> {
    (
        "[a-zA-Z0-9._-]{0,12}",
        any::<u64>(),
        prop::collection::vec(any::<u32>(), 0..6),
        any::<u64>(),
    )
        .prop_map(
            |(document_name, epoch, config_ids, size_bytes)| ConfigSummary {
                document_name,
                epoch,
                config_ids,
                size_bytes,
            },
        )
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        Just(Frame::Hello {
            role: PeerRole::Publisher
        }),
        Just(Frame::Hello {
            role: PeerRole::Subscriber
        }),
        Just(Frame::Hello {
            role: PeerRole::Broker
        }),
        Just(Frame::ListConfigs),
        Just(Frame::Bye),
        arb_container().prop_map(Frame::Publish),
        arb_container().prop_map(Frame::Deliver),
        prop::collection::vec("[a-zA-Z0-9._-]{0,12}", 0..4)
            .prop_map(|documents| Frame::Subscribe { documents }),
        prop::collection::vec(arb_summary(), 0..3).prop_map(Frame::Configs),
        (any::<u64>(), any::<u32>()).prop_map(|(epoch, fanout)| Frame::Ack { epoch, fanout }),
        "[ -~]{0,40}".prop_map(|message| Frame::Error { message }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn frame_roundtrip(frame in arb_frame()) {
        let enc = frame.encode().expect("bounded frames encode");
        prop_assert_eq!(Frame::decode(&enc), Ok(frame));
    }

    #[test]
    fn truncated_frames_always_error_never_panic(frame in arb_frame(), cut_seed in any::<u16>()) {
        let enc = frame.encode().expect("bounded frames encode");
        let cut = cut_seed as usize % enc.len();
        prop_assert!(Frame::decode(&enc[..cut]).is_err());
    }

    #[test]
    fn corrupted_frames_never_panic(
        frame in arb_frame(),
        pos_seed in any::<u16>(),
        xor in 1u8..=255,
    ) {
        let mut enc = frame.encode().expect("bounded frames encode");
        let pos = pos_seed as usize % enc.len();
        enc[pos] ^= xor;
        // Corruption may still decode (e.g. a flipped ciphertext byte);
        // the property is decode totality: Ok or WireError, no panic.
        let _ = Frame::decode(&enc);
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Frame::decode(&data);
    }

    #[test]
    fn appended_bytes_are_rejected(frame in arb_frame()) {
        let mut enc = frame.encode().expect("bounded frames encode");
        enc.push(0);
        prop_assert!(Frame::decode(&enc).is_err());
    }
}
