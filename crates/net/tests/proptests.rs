//! Property-based robustness for the frame codec and the retention-log
//! record codec: arbitrary values round-trip, and no amount of
//! truncation or corruption makes decoding panic — it always yields a
//! clean typed error.

use pbcd_docs::{BroadcastContainer, EncryptedGroup, EncryptedSegment};
use pbcd_net::store::{decode_record, encode_record, RecordError, RECORD_HEADER_LEN};
use pbcd_net::{ConfigSummary, Frame, PeerRole};
use proptest::prelude::*;

fn arb_container() -> impl Strategy<Value = BroadcastContainer> {
    (
        any::<u64>(),
        "[a-zA-Z0-9._-]{0,12}",
        "[ -~&&[^\"]]{0,32}",
        prop::collection::vec(
            (
                any::<u32>(),
                prop::collection::vec(any::<u8>(), 0..24),
                prop::collection::vec(
                    (
                        any::<u32>(),
                        "[a-zA-Z]{1,8}",
                        prop::collection::vec(any::<u8>(), 0..48),
                    ),
                    0..3,
                ),
            ),
            0..3,
        ),
    )
        .prop_map(
            |(epoch, document_name, skeleton_xml, groups)| BroadcastContainer {
                epoch,
                document_name,
                skeleton_xml,
                groups: groups
                    .into_iter()
                    .map(|(config_id, key_info, segs)| EncryptedGroup {
                        config_id,
                        key_info,
                        segments: segs
                            .into_iter()
                            .map(|(segment_id, tag, ciphertext)| EncryptedSegment {
                                segment_id,
                                tag,
                                ciphertext,
                            })
                            .collect(),
                    })
                    .collect(),
            },
        )
}

fn arb_summary() -> impl Strategy<Value = ConfigSummary> {
    (
        "[a-zA-Z0-9._-]{0,12}",
        any::<u64>(),
        prop::collection::vec(any::<u32>(), 0..6),
        any::<u64>(),
    )
        .prop_map(
            |(document_name, epoch, config_ids, size_bytes)| ConfigSummary {
                document_name,
                epoch,
                config_ids,
                size_bytes,
            },
        )
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        Just(Frame::Hello {
            role: PeerRole::Publisher
        }),
        Just(Frame::Hello {
            role: PeerRole::Subscriber
        }),
        Just(Frame::Hello {
            role: PeerRole::Broker
        }),
        Just(Frame::ListConfigs),
        Just(Frame::Bye),
        arb_container().prop_map(Frame::Publish),
        arb_container().prop_map(Frame::Deliver),
        prop::collection::vec("[a-zA-Z0-9._-]{0,12}", 0..4)
            .prop_map(|documents| Frame::Subscribe { documents }),
        prop::collection::vec(arb_summary(), 0..3).prop_map(Frame::Configs),
        (any::<u64>(), any::<u32>()).prop_map(|(epoch, fanout)| Frame::Ack { epoch, fanout }),
        "[ -~]{0,40}".prop_map(|message| Frame::Error { message }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn frame_roundtrip(frame in arb_frame()) {
        let enc = frame.encode().expect("bounded frames encode");
        prop_assert_eq!(Frame::decode(&enc), Ok(frame));
    }

    #[test]
    fn truncated_frames_always_error_never_panic(frame in arb_frame(), cut_seed in any::<u16>()) {
        let enc = frame.encode().expect("bounded frames encode");
        let cut = cut_seed as usize % enc.len();
        prop_assert!(Frame::decode(&enc[..cut]).is_err());
    }

    #[test]
    fn corrupted_frames_never_panic(
        frame in arb_frame(),
        pos_seed in any::<u16>(),
        xor in 1u8..=255,
    ) {
        let mut enc = frame.encode().expect("bounded frames encode");
        let pos = pos_seed as usize % enc.len();
        enc[pos] ^= xor;
        // Corruption may still decode (e.g. a flipped ciphertext byte);
        // the property is decode totality: Ok or WireError, no panic.
        let _ = Frame::decode(&enc);
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Frame::decode(&data);
    }

    #[test]
    fn appended_bytes_are_rejected(frame in arb_frame()) {
        let mut enc = frame.encode().expect("bounded frames encode");
        enc.push(0);
        prop_assert!(Frame::decode(&enc).is_err());
    }
}

/// An arbitrary retention-log record: document name, epoch, and a body at
/// least as long as the frame header the broker always writes (4 bytes).
fn arb_record() -> impl Strategy<Value = (String, u64, Vec<u8>)> {
    (
        "[a-zA-Z0-9._-]{0,24}",
        any::<u64>(),
        prop::collection::vec(any::<u8>(), 4..256),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn record_roundtrip((doc, epoch, body) in arb_record()) {
        let enc = encode_record(&doc, epoch, &body).expect("bounded records encode");
        let (rec, consumed) = decode_record(&enc).expect("roundtrip");
        prop_assert_eq!(consumed, enc.len());
        prop_assert_eq!(rec.document, doc);
        prop_assert_eq!(rec.epoch, epoch);
        prop_assert_eq!(rec.deliver_body, body);
    }

    #[test]
    fn record_decode_ignores_trailing_stream_bytes(
        (doc, epoch, body) in arb_record(),
        tail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // The log is a stream of records: decoding takes one record off
        // the front and reports how much it consumed.
        let enc = encode_record(&doc, epoch, &body).unwrap();
        let mut stream = enc.clone();
        stream.extend_from_slice(&tail);
        let (rec, consumed) = decode_record(&stream).expect("leading record decodes");
        prop_assert_eq!(consumed, enc.len());
        prop_assert_eq!(rec.deliver_body, body);
    }

    #[test]
    fn truncated_records_yield_typed_truncation((doc, epoch, body) in arb_record(), cut_seed in any::<u16>()) {
        let enc = encode_record(&doc, epoch, &body).unwrap();
        let cut = cut_seed as usize % enc.len();
        prop_assert_eq!(decode_record(&enc[..cut]).unwrap_err(), RecordError::Truncated);
    }

    #[test]
    fn corrupt_checksum_never_surfaces_a_wrong_container(
        (doc, epoch, body) in arb_record(),
        pos_seed in any::<u16>(),
        xor in 1u8..=255,
    ) {
        // Any single-byte change at or after the CRC field is *guaranteed*
        // detected (CRC32 catches all burst errors ≤ 32 bits), so a
        // corrupted payload can never decode into a different container.
        let mut enc = encode_record(&doc, epoch, &body).unwrap();
        let span = enc.len() - 8;
        let pos = 8 + pos_seed as usize % span;
        enc[pos] ^= xor;
        let err = decode_record(&enc).unwrap_err();
        prop_assert!(
            matches!(err, RecordError::BadChecksum | RecordError::Truncated | RecordError::Oversized),
            "corruption at {} must be caught, got {:?}", pos, err
        );
    }

    #[test]
    fn record_header_corruption_never_panics(
        (doc, epoch, body) in arb_record(),
        pos_seed in any::<u8>(),
        xor in 1u8..=255,
    ) {
        // Flips in magic/length land in a typed error or (for a length
        // that shrinks the payload) a checksum mismatch — decode stays
        // total either way.
        let mut enc = encode_record(&doc, epoch, &body).unwrap();
        let pos = pos_seed as usize % RECORD_HEADER_LEN;
        enc[pos] ^= xor;
        let _ = decode_record(&enc);
    }

    #[test]
    fn random_bytes_never_panic_the_record_decoder(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_record(&data);
    }
}
