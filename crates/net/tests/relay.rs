//! Multi-broker overlay semantics over real loopback TCP: tiered
//! dissemination with byte-identical containers at every tier, loop
//! suppression in a deliberately cyclic topology, log-backed cold start
//! of a late-attached edge, v1–v4 client interop against a v5 broker,
//! and the non-fatal `NotAPeer` taxonomy for overlay frames from
//! non-peers.

use pbcd_docs::{BroadcastContainer, EncryptedGroup, EncryptedSegment};
use pbcd_net::{
    read_frame, write_frame, Broker, BrokerClient, BrokerConfig, BrokerHandle, Frame, FsyncPolicy,
    NetError, PeerRole, RejectReason, RelayConfig,
};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn container(doc: &str, epoch: u64) -> BroadcastContainer {
    BroadcastContainer {
        epoch,
        document_name: doc.to_string(),
        skeleton_xml: format!("<r><pbcd-segment id=\"0\"/><!--{epoch}--></r>"),
        groups: vec![EncryptedGroup {
            config_id: 0,
            key_info: vec![0xAB; 32],
            segments: vec![EncryptedSegment {
                segment_id: 0,
                tag: "Record".into(),
                ciphertext: vec![epoch as u8; 96],
            }],
        }],
    }
}

fn scratch_log(tag: &str) -> (PathBuf, ScratchGuard) {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let path =
        std::env::temp_dir().join(format!("pbcd-relay-{tag}-{}-{n}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    (path.clone(), ScratchGuard(path))
}

struct ScratchGuard(PathBuf);

impl Drop for ScratchGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut compact = self.0.as_os_str().to_os_string();
        compact.push(".compact");
        let _ = std::fs::remove_file(compact);
    }
}

/// Fast-reconnect relay plane for tests: identical semantics, impatient
/// timers.
fn relay(id: &str) -> RelayConfig {
    RelayConfig {
        backoff: pbcd_net::BackoffConfig {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
        },
        ..RelayConfig::new(id)
    }
}

fn broker_with(relay: RelayConfig, config: BrokerConfig) -> BrokerHandle {
    Broker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            relay: Some(relay),
            ..config
        },
    )
    .unwrap()
}

/// Polls `pred` for up to `secs` seconds; panics with `what` on timeout.
fn wait_until(what: &str, secs: u64, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Receives `n` deliveries (bounded wait) and returns their canonical
/// encodings — the byte-identity currency of the overlay tests. The
/// frame decode is strict and the encode canonical, so these bytes are
/// exactly the container bytes that crossed the wire.
fn delivered_bytes(client: &mut BrokerClient, n: usize) -> Vec<Vec<u8>> {
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    (0..n)
        .map(|_| client.next_delivery().unwrap().encode().unwrap())
        .collect()
}

/// Tentpole acceptance #1: origin → edge → edge chain. Subscribers at
/// every tier receive the publisher's container bytes verbatim, and the
/// per-tier counters account for every forward exactly once.
#[test]
fn three_tier_chain_delivers_byte_identical_containers() {
    // Build leaf-first so each dialer has an address to dial; the
    // overlay itself does not care (links retry until the peer exists).
    let tier3 = broker_with(relay("tier3"), BrokerConfig::default());
    let tier2 = broker_with(
        RelayConfig {
            peers: vec![tier3.addr().to_string()],
            ..relay("tier2")
        },
        BrokerConfig::default(),
    );
    let origin = broker_with(
        RelayConfig {
            peers: vec![tier2.addr().to_string()],
            accept_peers: false,
            ..relay("origin")
        },
        BrokerConfig::default(),
    );

    // With the default history depth (1) a pre-link publish would reach
    // the edges only as the newest epoch per document; wait for the
    // links so all three publishes travel the live path in order.
    wait_until("chain links up", 30, || {
        origin.stats().relay_links == 1 && tier2.stats().relay_links == 1
    });

    let mut subs: Vec<BrokerClient> = [&origin, &tier2, &tier3]
        .iter()
        .map(|b| {
            let mut c = BrokerClient::connect(b.addr(), PeerRole::Subscriber).unwrap();
            c.subscribe(&["a.xml", "b.xml"]).unwrap();
            c
        })
        .collect();

    let mut publisher = BrokerClient::connect(origin.addr(), PeerRole::Publisher).unwrap();
    let published: Vec<Vec<u8>> = [("a.xml", 1), ("b.xml", 1), ("a.xml", 2)]
        .iter()
        .map(|(doc, epoch)| {
            let c = container(doc, *epoch);
            publisher.publish(&c).unwrap();
            c.encode().unwrap()
        })
        .collect();

    // Every tier — including the origin's own subscribers — sees the
    // same bytes in the same order (per-hop forwarding preserves the
    // publish order: one link queue, drained in order).
    for sub in &mut subs {
        assert_eq!(delivered_bytes(sub, 3), published);
    }

    // Counter accounting: 3 forwards down each of the 2 links, 3
    // accepts at each of the 2 edges, no suppressions anywhere.
    wait_until("origin forwards", 30, || {
        origin.stats().relays_forwarded == 3
    });
    wait_until("tier2 forwards", 30, || tier2.stats().relays_forwarded == 3);
    assert_eq!(tier2.stats().relays_accepted, 3);
    assert_eq!(tier3.stats().relays_accepted, 3);
    assert_eq!(origin.stats().relays_suppressed, 0);
    assert_eq!(tier3.stats().relays_forwarded, 0);
    assert_eq!(origin.stats().relay_links, 1);
    assert_eq!(tier2.stats().relay_links, 1);

    origin.shutdown();
    tier2.shutdown();
    tier3.shutdown();
}

/// Tentpole acceptance #2: a deliberately cyclic topology (a → b → c →
/// a ring). Every broker converges to the published container exactly
/// once, and the container's return to its origin is suppressed as a
/// typed, non-fatal `RelayLoop`.
#[test]
fn relay_cycle_is_suppressed_at_the_origin() {
    let a = broker_with(relay("ring-a"), BrokerConfig::default());
    let b = broker_with(relay("ring-b"), BrokerConfig::default());
    let c = broker_with(relay("ring-c"), BrokerConfig::default());
    a.add_peer(b.addr().to_string()).unwrap();
    b.add_peer(c.addr().to_string()).unwrap();
    c.add_peer(a.addr().to_string()).unwrap();

    let mut publisher = BrokerClient::connect(a.addr(), PeerRole::Publisher).unwrap();
    let bytes = {
        let cont = container("ring.xml", 7);
        publisher.publish(&cont).unwrap();
        cont.encode().unwrap()
    };

    // The container circles the ring: accepted at b and c, then refused
    // when c forwards it back to a (origin-id match).
    wait_until("ring convergence", 30, || {
        b.stats().relays_accepted == 1
            && c.stats().relays_accepted == 1
            && a.stats().relays_suppressed >= 1
    });
    // The loop guard fired at the origin; nothing was double-retained.
    assert_eq!(a.stats().publishes, 1);
    assert_eq!(a.stats().relays_accepted, 0);

    // All three brokers retain the identical bytes.
    for broker in [&a, &b, &c] {
        let mut sub = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
        sub.subscribe(&["ring.xml"]).unwrap();
        assert_eq!(delivered_bytes(&mut sub, 1), vec![bytes.clone()]);
    }
    // Suppression is non-fatal: the ring links are all still up.
    for broker in [&a, &b, &c] {
        assert_eq!(broker.stats().relay_links, 1);
    }

    a.shutdown();
    b.shutdown();
    c.shutdown();
}

/// Tentpole acceptance #3: an edge attached *after* N publishes
/// converges to the origin's exact retained set (multi-epoch, multi-
/// document) by streaming the upstream's retention log through
/// `RelayCatchUp` — and live publishes after attachment keep flowing.
#[test]
fn late_edge_cold_starts_from_the_retention_log() {
    let (path, _guard) = scratch_log("cold-start");
    let origin = broker_with(
        relay("cs-origin"),
        BrokerConfig {
            store_path: Some(path),
            fsync: FsyncPolicy::Off,
            history_depth: 3,
            ..BrokerConfig::default()
        },
    );

    // N publishes while no edge exists: doc a gets epochs 1..=4 (depth 3
    // retains 2,3,4), doc b gets 1..=2.
    let mut publisher = BrokerClient::connect(origin.addr(), PeerRole::Publisher).unwrap();
    for epoch in 1..=4u64 {
        publisher.publish(&container("a.xml", epoch)).unwrap();
    }
    for epoch in 1..=2u64 {
        publisher.publish(&container("b.xml", epoch)).unwrap();
    }

    // The edge attaches late and cold-starts entirely from the log.
    let edge = broker_with(
        relay("cs-edge"),
        BrokerConfig {
            history_depth: 3,
            ..BrokerConfig::default()
        },
    );
    origin.add_peer(edge.addr().to_string()).unwrap();
    wait_until("edge convergence", 30, || edge.stats().publishes == 5);
    assert_eq!(origin.stats().relay_catch_up_records, 5);
    assert_eq!(edge.stats().relays_accepted, 5);

    // The edge's retained set is identical to the origin's: same
    // summaries, and a history subscriber replays the same window
    // oldest-first at both tiers.
    let mut at_origin = BrokerClient::connect(origin.addr(), PeerRole::Subscriber).unwrap();
    let mut at_edge = BrokerClient::connect(edge.addr(), PeerRole::Subscriber).unwrap();
    assert_eq!(
        at_origin.list_configs().unwrap(),
        at_edge.list_configs().unwrap()
    );
    at_origin.subscribe_with_history(&[] as &[&str], 3).unwrap();
    at_edge.subscribe_with_history(&[] as &[&str], 3).unwrap();
    assert_eq!(
        delivered_bytes(&mut at_origin, 5),
        delivered_bytes(&mut at_edge, 5)
    );

    // Going live after catch-up: a fresh publish reaches the edge's
    // subscriber through the already-open link.
    publisher.publish(&container("a.xml", 9)).unwrap();
    assert_eq!(at_edge.next_delivery().unwrap().epoch, 9);
    assert_eq!(at_origin.next_delivery().unwrap().epoch, 9);

    origin.shutdown();
    edge.shutdown();
}

/// A link dialing an address where nothing listens yet keeps retrying
/// under backoff and cold-starts the moment the peer appears — the
/// partition-recovery path, compressed (the "partition" is the peer not
/// existing yet).
#[test]
fn link_retries_under_backoff_until_the_peer_appears() {
    // Reserve an address, then free it: the origin dials into the void.
    let parked = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = parked.local_addr().unwrap();
    drop(parked);

    let origin = broker_with(
        RelayConfig {
            peers: vec![addr.to_string()],
            ..relay("patient")
        },
        BrokerConfig::default(),
    );
    let mut publisher = BrokerClient::connect(origin.addr(), PeerRole::Publisher).unwrap();
    publisher.publish(&container("late.xml", 1)).unwrap();
    // Let several connect attempts fail before the peer materializes.
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(origin.stats().relay_links, 0);

    let edge = Broker::bind_with(
        &addr.to_string(),
        BrokerConfig {
            relay: Some(relay("appears")),
            ..BrokerConfig::default()
        },
    )
    .unwrap();
    wait_until("link up + resync", 30, || {
        origin.stats().relay_links == 1 && edge.stats().relays_accepted == 1
    });
    assert_eq!(origin.stats().relay_catch_up_records, 1);

    origin.shutdown();
    edge.shutdown();
}

/// Satellite: v1–v4 clients interoperate unchanged with a relay-enabled
/// (v5) broker over a live socket — publish, subscribe, history replay,
/// config listing and the stats scrape all behave exactly as against a
/// flat broker.
#[test]
fn v1_to_v4_clients_interoperate_with_a_relay_enabled_broker() {
    let broker = broker_with(
        relay("hub"),
        BrokerConfig {
            history_depth: 2,
            ..BrokerConfig::default()
        },
    );

    // v1: publish + subscribe + list_configs.
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    for epoch in 1..=3u64 {
        publisher.publish(&container("doc.xml", epoch)).unwrap();
    }
    assert_eq!(publisher.list_configs().unwrap().len(), 1);

    // v3: history replay.
    let mut sub = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    sub.subscribe_with_history(&["doc.xml"], 2).unwrap();
    let epochs: Vec<u64> = delivered_bytes(&mut sub, 2)
        .iter()
        .map(|bytes| BroadcastContainer::decode(bytes).unwrap().epoch)
        .collect();
    assert_eq!(epochs, vec![2, 3]);

    // v4: the stats scrape works and exposes the relay plane's gauges.
    let text = publisher.stats().unwrap();
    assert!(text.contains("broker_relay_links"));
    assert!(text.contains("broker_relays_forwarded_total"));

    broker.shutdown();
}

/// Satellite: overlay frames from non-peers draw typed, *non-fatal*
/// `NotAPeer` rejections — on a flat broker (no relay config) and on a
/// relay broker from a connection that never said `PeerHello` — and the
/// connection remains fully usable afterwards.
#[test]
fn overlay_frames_from_non_peers_reject_non_fatally() {
    // Flat broker: PeerHello itself is refused.
    let flat = Broker::bind("127.0.0.1:0").unwrap();
    let mut raw = TcpStream::connect(flat.addr()).unwrap();
    write_frame(
        &mut raw,
        &Frame::PeerHello {
            broker_id: "intruder".into(),
        },
    )
    .unwrap();
    match read_frame(&mut raw).unwrap() {
        Frame::Reject { reason, .. } => assert_eq!(reason, RejectReason::NotAPeer),
        other => panic!("expected NotAPeer reject, got {other:?}"),
    }
    // …and the same connection still speaks the client protocol.
    write_frame(
        &mut raw,
        &Frame::Hello {
            role: PeerRole::Publisher,
        },
    )
    .unwrap();
    assert!(matches!(read_frame(&mut raw).unwrap(), Frame::Hello { .. }));
    flat.shutdown();

    // Relay broker: a Relay frame before PeerHello is NotAPeer; after
    // the handshake the same frame is honored.
    let hub = broker_with(relay("guarded"), BrokerConfig::default());
    let mut peer = TcpStream::connect(hub.addr()).unwrap();
    let relay_frame = Frame::Relay {
        origin: "elsewhere".into(),
        hops: 1,
        container: container("doc.xml", 1),
    };
    write_frame(&mut peer, &relay_frame).unwrap();
    match read_frame(&mut peer).unwrap() {
        Frame::Reject { reason, .. } => assert_eq!(reason, RejectReason::NotAPeer),
        other => panic!("expected NotAPeer reject, got {other:?}"),
    }
    write_frame(
        &mut peer,
        &Frame::PeerHello {
            broker_id: "edge".into(),
        },
    )
    .unwrap();
    assert!(matches!(
        read_frame(&mut peer).unwrap(),
        Frame::PeerHello { .. }
    ));
    assert!(matches!(
        read_frame(&mut peer).unwrap(),
        Frame::RelayCatchUp { .. }
    ));
    write_frame(&mut peer, &relay_frame).unwrap();
    assert!(matches!(read_frame(&mut peer).unwrap(), Frame::Ack { .. }));
    assert_eq!(hub.stats().relays_accepted, 1);
    assert!(hub.stats().relays_suppressed >= 1);
    hub.shutdown();
}

/// The client-side face of the backoff satellite: `connect_with_backoff`
/// rides out a broker that is not up yet, and still fails fast on a
/// typed protocol refusal.
#[test]
fn client_connect_with_backoff_rides_out_a_slow_broker_start() {
    let parked = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = parked.local_addr().unwrap();
    drop(parked);

    let starter = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(120));
        Broker::bind_with(&addr.to_string(), BrokerConfig::default()).unwrap()
    });
    let backoff = pbcd_net::BackoffConfig {
        base: Duration::from_millis(20),
        cap: Duration::from_millis(100),
    };
    let client =
        BrokerClient::connect_with_backoff(addr, PeerRole::Subscriber, backoff, 50).unwrap();
    drop(client);
    let broker = starter.join().unwrap();
    broker.shutdown();

    // Exhausted attempts surface the last connection error.
    let gone = BrokerClient::connect_with_backoff(addr, PeerRole::Subscriber, backoff, 2);
    assert!(matches!(gone, Err(NetError::Io { .. })));
}
