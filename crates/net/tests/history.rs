//! Multi-epoch history semantics over real loopback sockets: a broker
//! with history depth K retains (and replays) exactly the newest K epochs
//! per document, oldest-first; and the epoch-monotonicity guard — the
//! closure of the `u64::MAX` wedge — survives a broker restart because it
//! runs against the epochs recovered from the durable log.

use pbcd_docs::{BroadcastContainer, EncryptedGroup, EncryptedSegment};
use pbcd_group::{P256Group, SigningKey};
use pbcd_net::{
    Broker, BrokerClient, BrokerConfig, BrokerHandle, FsyncPolicy, NetError, PeerRole,
    PublisherDirectory, RejectReason,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn scratch_log(tag: &str) -> (PathBuf, ScratchGuard) {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let path =
        std::env::temp_dir().join(format!("pbcd-history-{tag}-{}-{n}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    (path.clone(), ScratchGuard(path))
}

struct ScratchGuard(PathBuf);

impl Drop for ScratchGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let mut compact = self.0.as_os_str().to_os_string();
        compact.push(".compact");
        let _ = std::fs::remove_file(compact);
    }
}

fn container(doc: &str, epoch: u64) -> BroadcastContainer {
    BroadcastContainer {
        epoch,
        document_name: doc.to_string(),
        skeleton_xml: format!("<r><pbcd-segment id=\"0\"/><!--{epoch}--></r>"),
        groups: vec![EncryptedGroup {
            config_id: 0,
            key_info: vec![0xAB; 32],
            segments: vec![EncryptedSegment {
                segment_id: 0,
                tag: "Record".into(),
                ciphertext: vec![epoch as u8; 128],
            }],
        }],
    }
}

fn delivered_epochs(client: &mut BrokerClient, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| client.next_delivery().unwrap().epoch)
        .collect()
}

fn assert_no_more_deliveries(client: &mut BrokerClient) {
    client
        .set_read_timeout(Some(std::time::Duration::from_millis(200)))
        .unwrap();
    assert!(matches!(client.next_delivery(), Err(NetError::Io { .. })));
}

/// N epochs into a depth-K broker: a fresh subscriber requesting the last
/// K gets exactly the newest K, oldest-first — no more, no less.
#[test]
fn history_subscriber_gets_exactly_the_newest_k_oldest_first() {
    const K: usize = 3;
    let broker = Broker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            history_depth: K,
            ..BrokerConfig::default()
        },
    )
    .unwrap();
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    for epoch in 1..=7u64 {
        publisher.publish(&container("doc.xml", epoch)).unwrap();
    }

    // Requesting exactly K replays epochs 5,6,7 in that order.
    let mut sub = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    sub.subscribe_with_history(&["doc.xml"], K as u32).unwrap();
    assert_eq!(delivered_epochs(&mut sub, K), vec![5, 6, 7]);
    assert_no_more_deliveries(&mut sub);

    // Requesting more than the broker retains yields the same window.
    let mut greedy = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    greedy.subscribe_with_history(&["doc.xml"], 100).unwrap();
    assert_eq!(delivered_epochs(&mut greedy, K), vec![5, 6, 7]);
    assert_no_more_deliveries(&mut greedy);

    // Requesting less trims from the old end…
    let mut shallow = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    shallow.subscribe_with_history(&["doc.xml"], 2).unwrap();
    assert_eq!(delivered_epochs(&mut shallow, 2), vec![6, 7]);
    assert_no_more_deliveries(&mut shallow);

    // …and a plain Subscribe stays newest-only (back-compat).
    let mut plain = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    plain.subscribe(&["doc.xml"]).unwrap();
    assert_eq!(delivered_epochs(&mut plain, 1), vec![7]);
    assert_no_more_deliveries(&mut plain);

    broker.shutdown();
}

/// History replay and live fan-out share one ordered queue: a subscriber
/// that joins mid-stream sees replayed history strictly before fresher
/// live epochs, never interleaved out of order.
#[test]
fn history_replay_orders_before_live_deliveries() {
    let broker = Broker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            history_depth: 2,
            ..BrokerConfig::default()
        },
    )
    .unwrap();
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    publisher.publish(&container("doc.xml", 1)).unwrap();
    publisher.publish(&container("doc.xml", 2)).unwrap();

    let mut sub = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    sub.subscribe_with_history(&["doc.xml"], 2).unwrap();
    publisher.publish(&container("doc.xml", 3)).unwrap();

    assert_eq!(delivered_epochs(&mut sub, 3), vec![1, 2, 3]);
    broker.shutdown();
}

/// The depth-1 configuration is exactly the old newest-epoch-wins broker:
/// multi-epoch requests degrade to the single retained epoch.
#[test]
fn depth_one_broker_retains_only_the_newest() {
    let broker = Broker::bind("127.0.0.1:0").unwrap();
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    for epoch in 1..=4u64 {
        publisher.publish(&container("doc.xml", epoch)).unwrap();
    }
    let mut sub = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    sub.subscribe_with_history(&["doc.xml"], 4).unwrap();
    assert_eq!(delivered_epochs(&mut sub, 1), vec![4]);
    assert_no_more_deliveries(&mut sub);
    broker.shutdown();
}

fn keyed_durable_broker(
    group: &P256Group,
    key: &SigningKey<P256Group>,
    path: &std::path::Path,
) -> BrokerHandle {
    let directory = PublisherDirectory::new(group.clone()).with_key("pub-1", key.verifying_key());
    Broker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            publisher_auth: Some(Arc::new(directory)),
            store_path: Some(path.to_path_buf()),
            fsync: FsyncPolicy::Off,
            history_depth: 2,
            ..BrokerConfig::default()
        },
    )
    .unwrap()
}

/// Epoch monotonicity — including the closure of the `u64::MAX` wedge —
/// survives a restart: the stale-epoch guard runs against epochs recovered
/// from the log, so a captured signed publish cannot be replayed into the
/// broker's next life, and an unauthenticated peer still cannot wedge a
/// name at `u64::MAX`.
#[test]
fn epoch_monotonicity_and_the_wedge_closure_survive_a_restart() {
    let group = P256Group::new();
    let mut rng = StdRng::seed_from_u64(0xD06);
    let key = SigningKey::generate(&group, &mut rng);
    let (path, _guard) = scratch_log("wedge");

    // First life: authenticated epochs 1 and 2 land.
    let broker = keyed_durable_broker(&group, &key, &path);
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    for epoch in [1, 2] {
        publisher
            .publish_signed(
                &group,
                "pub-1",
                &key,
                &container("ward.xml", epoch),
                &mut rng,
            )
            .unwrap();
    }
    drop(publisher);
    broker.shutdown();

    // Second life: the recovered epochs drive the staleness guard.
    let broker = keyed_durable_broker(&group, &key, &path);
    assert_eq!(broker.stats().records_recovered, 2);
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();

    // Replaying the captured epoch-2 publish (even correctly signed) is
    // refused: authenticated epochs stay *strictly* increasing across the
    // restart.
    match publisher.publish_signed(&group, "pub-1", &key, &container("ward.xml", 2), &mut rng) {
        Err(NetError::Rejected { reason, .. }) => assert_eq!(reason, RejectReason::StaleEpoch),
        other => panic!("expected stale-epoch rejection, got {other:?}"),
    }

    // A hostile unauthenticated peer still cannot wedge the name.
    let mut hostile = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    assert!(hostile.publish(&container("ward.xml", u64::MAX)).is_err());

    // The legitimate publisher proceeds at epoch 3 on the same connection.
    let receipt = publisher
        .publish_signed(&group, "pub-1", &key, &container("ward.xml", 3), &mut rng)
        .unwrap();
    assert_eq!(receipt.epoch, 3);

    // A history subscriber sees the recovered epoch plus the fresh one,
    // oldest-first (depth 2 window over {2, 3}).
    let mut sub = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    sub.subscribe_with_history(&["ward.xml"], 2).unwrap();
    assert_eq!(delivered_epochs(&mut sub, 2), vec![2, 3]);
    broker.shutdown();
}
