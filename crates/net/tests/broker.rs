//! Broker behaviour tests over real loopback sockets: retention, fan-out,
//! topic filtering, replay, per-connection error isolation and graceful
//! shutdown. No crypto here — containers carry opaque bytes, exactly what
//! the broker sees in production.

use pbcd_docs::{BroadcastContainer, EncryptedGroup, EncryptedSegment};
use pbcd_net::{
    read_frame, write_frame, Broker, BrokerClient, BrokerConfig, Frame, NetError, PeerRole,
    PROTOCOL_VERSION,
};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn container(doc: &str, epoch: u64) -> BroadcastContainer {
    BroadcastContainer {
        epoch,
        document_name: doc.to_string(),
        skeleton_xml: format!("<r><pbcd-segment id=\"0\"/><!--{epoch}--></r>"),
        groups: vec![EncryptedGroup {
            config_id: 0,
            key_info: vec![0xAB; 32],
            segments: vec![EncryptedSegment {
                segment_id: 0,
                tag: "Record".into(),
                ciphertext: vec![epoch as u8; 128],
            }],
        }],
    }
}

#[test]
fn fan_out_reaches_matching_subscribers_only() {
    let broker = Broker::bind("127.0.0.1:0").unwrap();
    let mut on_topic = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    on_topic.subscribe(&["ehr.xml"]).unwrap();
    let mut wildcard = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    wildcard.subscribe::<&str>(&[]).unwrap();
    let mut off_topic = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    off_topic.subscribe(&["news.xml"]).unwrap();

    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    let c = container("ehr.xml", 1);
    let receipt = publisher.publish(&c).unwrap();
    assert_eq!(receipt.epoch, 1);
    assert_eq!(receipt.fanout, 2, "on-topic + wildcard, not off-topic");

    assert_eq!(on_topic.next_delivery().unwrap(), c);
    assert_eq!(wildcard.next_delivery().unwrap(), c);
    off_topic
        .set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    assert!(matches!(
        off_topic.next_delivery(),
        Err(NetError::Io { .. })
    ));

    // Deliveries are counted by the writer threads just after the socket
    // write, so poll briefly instead of assuming instant visibility.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while broker.stats().deliveries < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = broker.stats();
    assert_eq!(stats.publishes, 1);
    assert_eq!(stats.deliveries, 2);
    broker.shutdown();
}

/// The slow-consumer isolation guarantee: one stalled subscriber must not
/// delay delivery to 16 healthy ones, and publish latency stays bounded by
/// enqueue time — not by `write_timeout`. Under the old sequential
/// fan-out, the first publish after the stalled peer's buffers filled
/// blocked the publishing thread for the whole write deadline (30 s here);
/// with per-subscriber writer queues it returns in milliseconds and the
/// stalled peer alone is dropped on queue overflow.
#[test]
fn stalled_subscriber_does_not_delay_healthy_ones() {
    const HEALTHY: usize = 16;
    const PUBLISHES: u64 = 16;
    let broker = Broker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            // Deliberately enormous: if publish latency were coupled to the
            // write deadline, this test would blow its time budget.
            write_timeout: Some(Duration::from_secs(30)),
            subscriber_queue: 4,
            max_retained_bytes: 1024 * 1024 * 1024,
            ..BrokerConfig::default()
        },
    )
    .unwrap();
    let addr = broker.addr();

    // A half-megabyte container so the stalled peer's socket buffers jam
    // after a couple of frames and its queue overflows soon after.
    let mut big = container("doc.xml", 0);
    big.groups[0].segments[0].ciphertext = vec![0xAA; 512 * 1024];

    // The stalled subscriber: subscribes, then never reads again.
    let mut stalled = BrokerClient::connect(addr, PeerRole::Subscriber).unwrap();
    stalled.subscribe(&["doc.xml"]).unwrap();

    // 16 healthy subscribers, each draining every delivery promptly.
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let mut threads = Vec::new();
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    for _ in 0..HEALTHY {
        let done = done_tx.clone();
        let ready = ready_tx.clone();
        threads.push(std::thread::spawn(move || {
            let mut client = BrokerClient::connect(addr, PeerRole::Subscriber).unwrap();
            client.subscribe(&["doc.xml"]).unwrap();
            ready.send(()).unwrap();
            let mut last_epoch = 0;
            for _ in 0..PUBLISHES {
                let c = client.next_delivery().expect("healthy delivery");
                assert!(c.epoch > last_epoch, "epoch order preserved per queue");
                last_epoch = c.epoch;
            }
            done.send(last_epoch).unwrap();
        }));
    }
    for _ in 0..HEALTHY {
        ready_rx.recv().unwrap();
    }

    let mut publisher = BrokerClient::connect(addr, PeerRole::Publisher).unwrap();
    let mut max_publish = Duration::ZERO;
    let started = std::time::Instant::now();
    for epoch in 1..=PUBLISHES {
        big.epoch = epoch;
        let t = std::time::Instant::now();
        publisher.publish(&big).expect("publish");
        max_publish = max_publish.max(t.elapsed());
    }
    let total = started.elapsed();

    // Every healthy subscriber saw every epoch, in order.
    for _ in 0..HEALTHY {
        assert_eq!(
            done_rx.recv_timeout(Duration::from_secs(30)).unwrap(),
            PUBLISHES
        );
    }
    // Publish latency was enqueue-bounded: nowhere near the 30 s write
    // deadline the stalled peer would have charged the old sequential path.
    assert!(
        max_publish < Duration::from_secs(10),
        "slowest publish took {max_publish:?} — fan-out is coupled to the stalled consumer"
    );
    assert!(
        total < Duration::from_secs(25),
        "whole run took {total:?} — fan-out is coupled to the stalled consumer"
    );
    // The stalled subscriber — and only it — was dropped on queue overflow.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while broker.stats().subscribers_dropped < 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = broker.stats();
    assert_eq!(stats.subscribers_dropped, 1, "exactly the stalled peer");
    assert_eq!(stats.publishes, PUBLISHES);
    for t in threads {
        t.join().unwrap();
    }
    broker.shutdown();
}

#[test]
fn late_subscriber_gets_latest_retained_container() {
    let broker = Broker::bind("127.0.0.1:0").unwrap();
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    publisher.publish(&container("doc.xml", 1)).unwrap();
    let newest = container("doc.xml", 2);
    publisher.publish(&newest).unwrap();

    // The broker retains only the latest epoch.
    let mut late = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    late.subscribe(&["doc.xml"]).unwrap();
    assert_eq!(late.next_delivery().unwrap(), newest);

    let configs = publisher.list_configs().unwrap();
    assert_eq!(configs.len(), 1);
    assert_eq!(configs[0].document_name, "doc.xml");
    assert_eq!(configs[0].epoch, 2);
    assert_eq!(configs[0].config_ids, vec![0]);
    broker.shutdown();
}

#[test]
fn garbage_connection_is_isolated_from_healthy_ones() {
    let broker = Broker::bind("127.0.0.1:0").unwrap();
    let mut healthy = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    healthy.subscribe::<&str>(&[]).unwrap();

    // A peer spraying garbage gets an Error frame and a closed socket…
    let mut evil = TcpStream::connect(broker.addr()).unwrap();
    evil.write_all(&(8u32).to_be_bytes()).unwrap();
    evil.write_all(b"\xde\xad\xbe\xef\xde\xad\xbe\xef").unwrap();
    match read_frame(&mut evil) {
        Ok(Frame::Error { message }) => assert!(message.contains("malformed")),
        other => panic!("expected Error frame, got {other:?}"),
    }
    assert!(matches!(read_frame(&mut evil), Err(NetError::Closed)));

    // …and a peer speaking broker-only frames likewise.
    let mut confused = TcpStream::connect(broker.addr()).unwrap();
    write_frame(
        &mut confused,
        &Frame::Ack {
            epoch: 0,
            fanout: 0,
        },
    )
    .unwrap();
    assert!(matches!(read_frame(&mut confused), Ok(Frame::Error { .. })));

    // The broker keeps serving everyone else.
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    let c = container("doc.xml", 7);
    assert_eq!(publisher.publish(&c).unwrap().fanout, 1);
    assert_eq!(healthy.next_delivery().unwrap(), c);
    assert!(broker.stats().connections_rejected >= 2);
    broker.shutdown();
}

#[test]
fn oversized_publish_is_rejected_not_fatal() {
    let broker = Broker::bind("127.0.0.1:0").unwrap();
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    // A container whose single field would exceed the field limit fails at
    // the *client's* encode step — the non-panicking encode path.
    let mut huge = container("doc.xml", 1);
    huge.groups[0].segments[0].ciphertext = vec![0; pbcd_docs::wire::MAX_FIELD_LEN + 1];
    assert!(matches!(
        publisher.publish(&huge),
        Err(NetError::Wire(pbcd_docs::WireError::FieldTooLong(_)))
    ));
    // The connection survives an encode failure (nothing was sent).
    assert_eq!(
        publisher.publish(&container("doc.xml", 2)).unwrap().epoch,
        2
    );
    broker.shutdown();
}

#[test]
fn version_mismatch_is_rejected() {
    let broker = Broker::bind("127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(broker.addr()).unwrap();
    // Hand-rolled Hello with a wrong protocol version byte.
    let body = [b'P', b'N', PROTOCOL_VERSION + 1, 1, 0];
    stream
        .write_all(&(body.len() as u32).to_be_bytes())
        .unwrap();
    stream.write_all(&body).unwrap();
    assert!(matches!(read_frame(&mut stream), Ok(Frame::Error { .. })));
    broker.shutdown();
}

#[test]
fn bye_is_acknowledged_and_subscribers_deregister() {
    let broker = Broker::bind("127.0.0.1:0").unwrap();
    let mut sub = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    sub.subscribe::<&str>(&[]).unwrap();
    // Deregistration is asynchronous; poll briefly.
    sub.bye().unwrap();
    for _ in 0..100 {
        if broker.subscriber_count() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(broker.subscriber_count(), 0);

    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    assert_eq!(publisher.publish(&container("d.xml", 1)).unwrap().fanout, 0);
    broker.shutdown();
}

#[test]
fn stale_epoch_cannot_roll_back_retained_state() {
    let broker = Broker::bind("127.0.0.1:0").unwrap();
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    let newest = container("doc.xml", 5);
    publisher.publish(&newest).unwrap();
    // Re-publishing the same epoch is an idempotent retry: accepted.
    publisher.publish(&newest).unwrap();
    // An older epoch (e.g. a replayed pre-revocation container) is refused.
    match publisher.publish(&container("doc.xml", 4)) {
        Err(NetError::Protocol(msg)) => assert!(msg.contains("stale epoch")),
        other => panic!("expected stale-epoch rejection, got {other:?}"),
    }
    let mut late = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    late.subscribe(&["doc.xml"]).unwrap();
    assert_eq!(late.next_delivery().unwrap().epoch, 5);
    broker.shutdown();
}

#[test]
fn retained_document_cap_bounds_broker_memory() {
    let broker = Broker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            max_retained_documents: 2,
            ..BrokerConfig::default()
        },
    )
    .unwrap();
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    publisher.publish(&container("a.xml", 1)).unwrap();
    publisher.publish(&container("b.xml", 1)).unwrap();
    assert_eq!(broker.stats().retained_documents, 2);
    // A third distinct document is rejected (and the connection dropped).
    match publisher.publish(&container("c.xml", 1)) {
        Err(NetError::Protocol(msg)) => assert!(msg.contains("cap")),
        other => panic!("expected cap rejection, got {other:?}"),
    }
    assert!(broker.retained_container("c.xml").is_none());
    // The gauge reflects the refusal: the retained set did not grow.
    assert_eq!(broker.stats().retained_documents, 2);
    // Updates to already-retained documents still pass.
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    assert_eq!(publisher.publish(&container("a.xml", 2)).unwrap().epoch, 2);
    assert_eq!(broker.stats().retained_documents, 2);
    broker.shutdown();
}

#[test]
fn retained_byte_cap_bounds_broker_memory() {
    let broker = Broker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            max_retained_bytes: 400,
            ..BrokerConfig::default()
        },
    )
    .unwrap();
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    // One ~250-byte container fits; a second distinct document would push
    // the total past the byte cap and is refused.
    publisher.publish(&container("a.xml", 1)).unwrap();
    let retained = broker.stats().retained_bytes;
    assert!(
        retained > 0 && retained <= 400,
        "gauge tracks the retained container ({retained} bytes)"
    );
    match publisher.publish(&container("b.xml", 1)) {
        Err(NetError::Protocol(msg)) => assert!(msg.contains("byte cap")),
        other => panic!("expected byte-cap rejection, got {other:?}"),
    }
    // The gauge reflects the refusal: nothing was added.
    assert_eq!(broker.stats().retained_bytes, retained);
    // Replacing the retained container for the same document still works
    // (the replaced bytes are freed from the running total).
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    assert_eq!(publisher.publish(&container("a.xml", 2)).unwrap().epoch, 2);
    assert_eq!(
        broker.stats().retained_bytes,
        retained,
        "same-size replacement keeps the gauge level"
    );
    assert_eq!(broker.stats().retained_documents, 1);
    broker.shutdown();
}

#[test]
fn connection_cap_and_handshake_timeout_protect_the_broker() {
    let broker = Broker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            max_connections: 1,
            handshake_timeout: Some(Duration::from_millis(150)),
            ..BrokerConfig::default()
        },
    )
    .unwrap();

    // A silent peer occupies the only slot…
    let mut silent = TcpStream::connect(broker.addr()).unwrap();
    // …so the next connection is closed immediately (over cap).
    let mut overflow = TcpStream::connect(broker.addr()).unwrap();
    assert!(
        read_frame(&mut overflow).is_err(),
        "over-cap connection must be closed, not served"
    );

    // The silent peer never completes a frame; the handshake timeout
    // evicts it instead of pinning a broker thread forever.
    assert!(read_frame(&mut silent).is_err(), "silent peer evicted");

    // The freed slot serves a real client normally.
    let mut client = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    client.subscribe::<&str>(&[]).unwrap();
    assert!(broker.stats().connections_rejected >= 1);
    broker.shutdown();
}

/// A broad (empty-filter) subscriber must receive the full retained set on
/// subscribe even when it exceeds the live-queue budget: the replay is
/// sized into the queue at subscribe time, it is not subject to the
/// `subscriber_queue` backpressure bound.
#[test]
fn replay_larger_than_the_live_queue_budget_succeeds() {
    const DOCS: usize = 24;
    let broker = Broker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            subscriber_queue: 4, // far below the retained count
            ..BrokerConfig::default()
        },
    )
    .unwrap();
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    for i in 0..DOCS {
        publisher
            .publish(&container(&format!("doc-{i:02}.xml"), 1))
            .unwrap();
    }

    let mut late = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    late.subscribe::<&str>(&[]).unwrap();
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..DOCS {
        seen.insert(late.next_delivery().unwrap().document_name);
    }
    assert_eq!(seen.len(), DOCS, "every retained document replayed");
    assert_eq!(broker.stats().subscribers_dropped, 0);
    broker.shutdown();
}

#[test]
fn shutdown_disconnects_clients_and_joins() {
    let broker = Broker::bind("127.0.0.1:0").unwrap();
    let addr = broker.addr();
    let mut sub = BrokerClient::connect(addr, PeerRole::Subscriber).unwrap();
    sub.subscribe::<&str>(&[]).unwrap();
    broker.shutdown(); // must not hang with a live blocked reader
    assert!(sub.next_delivery().is_err(), "socket was closed");
}
