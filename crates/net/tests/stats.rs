//! The stats frame end to end: a live broker is scraped over its socket
//! and the exposition carries the full metric set — publish→ack latency
//! percentiles, the queue-depth gauge, drop counters by cause and the
//! store append/fsync timings — while never leaking retained plaintext.

use pbcd_docs::{BroadcastContainer, EncryptedGroup, EncryptedSegment};
use pbcd_net::{Broker, BrokerClient, BrokerConfig, FsyncPolicy, PeerRole, TraceKind};

fn container(name: &str, epoch: u64, marker: &[u8]) -> BroadcastContainer {
    BroadcastContainer {
        epoch,
        document_name: name.to_string(),
        skeleton_xml: format!("<r><pbcd-segment id=\"0\"/><!--{epoch}--></r>"),
        groups: vec![EncryptedGroup {
            config_id: 0,
            key_info: vec![0xAB; 32],
            segments: vec![EncryptedSegment {
                segment_id: 0,
                tag: "Record".into(),
                ciphertext: marker.to_vec(),
            }],
        }],
    }
}

/// Every metric the acceptance criteria name must appear in a live scrape,
/// with the counters/histograms reflecting real traffic.
#[test]
fn live_broker_scrape_contains_full_metric_set() {
    let dir = std::env::temp_dir().join(format!("pbcd-stats-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("stats-scrape.log");
    let _ = std::fs::remove_file(&log);
    let broker = Broker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            store_path: Some(log.clone()),
            fsync: FsyncPolicy::PerPublish,
            ..BrokerConfig::default()
        },
    )
    .unwrap();
    let addr = broker.addr();

    let mut sub = BrokerClient::connect(addr, PeerRole::Subscriber).unwrap();
    sub.subscribe(&["doc-a"]).unwrap();

    let mut publisher = BrokerClient::connect(addr, PeerRole::Publisher).unwrap();
    let secret = b"super-secret-payload";
    for epoch in 1..=5u64 {
        let receipt = publisher
            .publish(&container("doc-a", epoch, secret))
            .unwrap();
        assert_eq!(receipt.epoch, epoch);
    }
    for _ in 0..5 {
        let got = sub.next_delivery().unwrap();
        assert_eq!(got.document_name, "doc-a");
    }

    // Scrape over the socket, from a fresh connection (any peer may ask).
    let mut scraper = BrokerClient::connect(addr, PeerRole::Publisher).unwrap();
    let text = scraper.stats().unwrap();

    // Counters and gauges the acceptance criteria name.
    assert!(text.contains("broker_publishes_total 5"), "{text}");
    assert!(text.contains("broker_deliveries_total 5"), "{text}");
    assert!(text.contains("broker_queue_depth "), "{text}");
    assert!(text.contains("broker_retained_documents 1"), "{text}");
    // Drop counters by cause are registered eagerly: present even at zero.
    for cause in ["queue_overflow", "write_failed", "replay_overflow"] {
        assert!(
            text.contains(&format!(
                "broker_subscriber_drops_total{{cause=\"{cause}\"}} 0"
            )),
            "missing drop cause {cause} in:\n{text}"
        );
    }
    // Publish→ack latency percentiles with five recorded points.
    assert!(
        text.contains("broker_publish_ack_ns{quantile=\"0.5\"}"),
        "{text}"
    );
    assert!(
        text.contains("broker_publish_ack_ns{quantile=\"0.99\"}"),
        "{text}"
    );
    assert!(text.contains("broker_publish_ack_ns_count 5"), "{text}");
    // Store timings: five durable appends, each fsynced per publish.
    assert!(text.contains("store_append_ns_count 5"), "{text}");
    assert!(text.contains("store_fsync_ns_count 5"), "{text}");
    assert!(text.contains("store_fsync_ns{quantile=\"0.9\"}"), "{text}");

    // Threat model: the exposition must not leak the retained payload (in
    // any obvious encoding) nor the document name.
    let hex: String = secret.iter().map(|b| format!("{b:02x}")).collect();
    assert!(!text.contains(std::str::from_utf8(secret).unwrap()));
    assert!(!text.contains(&hex));
    assert!(!text.contains("doc-a"), "document name leaked:\n{text}");

    // The in-process views agree with the wire view.
    let stats = broker.stats();
    assert_eq!(stats.publishes, 5);
    assert_eq!(stats.retained_documents, 1);
    let snap = broker.metrics();
    assert_eq!(snap.counter("broker_publishes_total"), Some(5));
    let ack = snap.histogram("broker_publish_ack_ns").unwrap();
    assert_eq!(ack.count, 5);
    assert!(ack.p50 > 0 && ack.p50 <= ack.p99);

    // Trace ring saw the wire-level story: connects, publishes, delivers.
    let events = broker.trace_events();
    let count = |k: TraceKind| events.iter().filter(|e| e.kind == k).count();
    assert!(count(TraceKind::Connect) >= 3);
    assert_eq!(count(TraceKind::Publish), 5);
    assert_eq!(count(TraceKind::Deliver), 5);
    assert!(count(TraceKind::Subscribe) >= 1);
    // Publish events carry real epochs and durations.
    let publish_epochs: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == TraceKind::Publish)
        .map(|e| e.epoch)
        .collect();
    assert_eq!(publish_epochs, vec![1, 2, 3, 4, 5]);

    drop(publisher);
    drop(sub);
    drop(scraper);
    broker.shutdown();
    let _ = std::fs::remove_file(&log);
}

/// `BrokerStats` is a view over the same single-snapshot read path as the
/// exposition: repeated snapshots under concurrent publishing never show a
/// publish's retained bytes without its `publishes` increment.
#[test]
fn stats_snapshot_is_consistent_under_concurrent_publishing() {
    let broker = Broker::bind("127.0.0.1:0").unwrap();
    let addr = broker.addr();
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut publisher = BrokerClient::connect(addr, PeerRole::Publisher).unwrap();
            for epoch in 1..=200u64 {
                publisher
                    .publish(&container("hammer", epoch, b"payload"))
                    .unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::SeqCst);
        });
        let mut last = 0u64;
        while !stop.load(std::sync::atomic::Ordering::SeqCst) {
            let stats = broker.stats();
            // Monotone, and retained state implies the publish was counted.
            assert!(stats.publishes >= last);
            if stats.retained_bytes > 0 {
                assert!(stats.publishes >= 1);
            }
            last = stats.publishes;
        }
    });
    assert_eq!(broker.stats().publishes, 200);
    broker.shutdown();
}

/// A v1-era peer that never sends a stats frame still interoperates, and
/// the metric registry names stay stable (they are part of the scrape API).
#[test]
fn scrape_of_idle_broker_exposes_all_zero_metric_set() {
    let broker = Broker::bind("127.0.0.1:0").unwrap();
    let mut client = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    let text = client.stats().unwrap();
    for name in [
        "broker_publishes_total 0",
        "broker_publishes_rejected_total 0",
        "broker_deliveries_total 0",
        "broker_subscribers_dropped_total 0",
        "broker_connections_rejected_total 0",
        "broker_queue_depth 0",
        "broker_retained_documents 0",
        "broker_retained_bytes 0",
        "broker_log_bytes 0",
        "broker_publish_ack_ns_count 0",
        "broker_enqueue_to_write_ns_count 0",
        "store_append_ns_count 0",
        "store_fsync_ns_count 0",
        "store_compaction_ns_count 0",
        "store_recovery_scan_ns_count 0",
    ] {
        assert!(text.contains(name), "missing {name:?} in:\n{text}");
    }
    broker.shutdown();
}
