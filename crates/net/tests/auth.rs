//! Publisher-authentication behaviour over real loopback sockets: a keyed
//! broker accepts correctly signed publishes, refuses everything else with
//! typed `Reject` frames (bad key, forged signature, tampered container,
//! replayed epoch), and closes the ROADMAP availability hole — a hostile
//! peer can no longer wedge a document name at epoch `u64::MAX` or burn
//! the retention caps, because it holds no authorized key.

use pbcd_docs::{BroadcastContainer, EncryptedGroup, EncryptedSegment};
use pbcd_group::{P256Group, SigningKey};
use pbcd_net::frame::{publish_auth_message, signed_publish_body};
use pbcd_net::{
    read_frame, Broker, BrokerClient, BrokerConfig, BrokerHandle, Frame, NetError, PeerRole,
    PublisherDirectory, RejectReason,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

fn container(doc: &str, epoch: u64) -> BroadcastContainer {
    BroadcastContainer {
        epoch,
        document_name: doc.to_string(),
        skeleton_xml: format!("<r><pbcd-segment id=\"0\"/><!--{epoch}--></r>"),
        groups: vec![EncryptedGroup {
            config_id: 0,
            key_info: vec![0xAB; 32],
            segments: vec![EncryptedSegment {
                segment_id: 0,
                tag: "Record".into(),
                ciphertext: vec![epoch as u8; 128],
            }],
        }],
    }
}

/// A broker that only accepts publishes signed by `key` (as "pub-1").
fn keyed_broker(group: &P256Group, key: &SigningKey<P256Group>) -> BrokerHandle {
    let directory = PublisherDirectory::new(group.clone()).with_key("pub-1", key.verifying_key());
    Broker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            publisher_auth: Some(Arc::new(directory)),
            ..BrokerConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn signed_publish_flows_and_unsigned_is_refused() {
    let group = P256Group::new();
    let mut rng = StdRng::seed_from_u64(0xA07);
    let key = SigningKey::generate(&group, &mut rng);
    let broker = keyed_broker(&group, &key);

    // An unsigned publish against a keyed broker: refused, legacy Error.
    let mut legacy = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    match legacy.publish(&container("doc.xml", 1)) {
        Err(NetError::Protocol(msg)) => assert!(msg.contains("authentication required")),
        other => panic!("expected auth-required refusal, got {other:?}"),
    }

    // A correctly signed publish is acknowledged and retained.
    let mut sub = BrokerClient::connect(broker.addr(), PeerRole::Subscriber).unwrap();
    sub.subscribe(&["doc.xml"]).unwrap();
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    let c = container("doc.xml", 1);
    let receipt = publisher
        .publish_signed(&group, "pub-1", &key, &c, &mut rng)
        .expect("authorized publish");
    assert_eq!(receipt.epoch, 1);
    assert_eq!(receipt.fanout, 1);
    assert_eq!(sub.next_delivery().unwrap(), c);

    let stats = broker.stats();
    assert_eq!(stats.publishes, 1);
    assert_eq!(stats.publishes_rejected, 1, "the unsigned attempt");
    broker.shutdown();
}

#[test]
fn wrong_key_and_forged_signature_get_typed_rejects_without_killing_the_connection() {
    let group = P256Group::new();
    let mut rng = StdRng::seed_from_u64(0xA08);
    let key = SigningKey::generate(&group, &mut rng);
    let intruder = SigningKey::generate(&group, &mut rng);
    let broker = keyed_broker(&group, &key);
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();

    // Unknown key id.
    match publisher.publish_signed(&group, "pub-9", &key, &container("doc.xml", 1), &mut rng) {
        Err(NetError::Rejected { reason, .. }) => {
            assert_eq!(reason, RejectReason::UnknownPublisher)
        }
        other => panic!("expected UnknownPublisher, got {other:?}"),
    }
    // Known key id, signature from somebody else's key.
    match publisher.publish_signed(
        &group,
        "pub-1",
        &intruder,
        &container("doc.xml", 1),
        &mut rng,
    ) {
        Err(NetError::Rejected { reason, .. }) => assert_eq!(reason, RejectReason::BadSignature),
        other => panic!("expected BadSignature, got {other:?}"),
    }
    // Rejects are not fatal: the same connection then publishes fine.
    let receipt = publisher
        .publish_signed(&group, "pub-1", &key, &container("doc.xml", 1), &mut rng)
        .expect("corrected publish on the same connection");
    assert_eq!(receipt.epoch, 1);
    assert_eq!(broker.stats().publishes_rejected, 2);
    broker.shutdown();
}

#[test]
fn tampered_container_fails_verification() {
    let group = P256Group::new();
    let mut rng = StdRng::seed_from_u64(0xA09);
    let key = SigningKey::generate(&group, &mut rng);
    let broker = keyed_broker(&group, &key);

    // Hand-roll the signed frame so we can flip a ciphertext byte *after*
    // signing — the container still decodes strictly, but the signature no
    // longer covers what arrived.
    let c = container("doc.xml", 3);
    let container_bytes = c.encode().unwrap();
    let msg = publish_auth_message(&c.document_name, c.epoch, &container_bytes);
    let sig = key.sign(&group, &mut rng, &msg).to_bytes(&group);
    let mut body = signed_publish_body("pub-1", &sig, &container_bytes);
    let last = body.len() - 1; // inside the ciphertext field
    body[last] ^= 0x01;

    let mut stream = TcpStream::connect(broker.addr()).unwrap();
    stream
        .write_all(&(body.len() as u32).to_be_bytes())
        .unwrap();
    stream.write_all(&body).unwrap();
    match read_frame(&mut stream) {
        Ok(Frame::Reject { reason, .. }) => assert_eq!(reason, RejectReason::BadSignature),
        other => panic!("expected BadSignature reject, got {other:?}"),
    }
    assert!(
        broker.retained_container("doc.xml").is_none(),
        "tampered container must not be retained"
    );
    broker.shutdown();
}

#[test]
fn replayed_epoch_is_rejected_in_authenticated_mode() {
    let group = P256Group::new();
    let mut rng = StdRng::seed_from_u64(0xA0A);
    let key = SigningKey::generate(&group, &mut rng);
    let broker = keyed_broker(&group, &key);
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();

    let c5 = container("doc.xml", 5);
    publisher
        .publish_signed(&group, "pub-1", &key, &c5, &mut rng)
        .expect("first publish");
    // Replaying the very same epoch — even with a fresh valid signature —
    // is refused: authenticated epochs are strictly increasing, so a
    // captured `PublishSigned` frame is worthless to a replaying attacker.
    match publisher.publish_signed(&group, "pub-1", &key, &c5, &mut rng) {
        Err(NetError::Rejected { reason, .. }) => assert_eq!(reason, RejectReason::StaleEpoch),
        other => panic!("expected StaleEpoch, got {other:?}"),
    }
    // And so is an older epoch.
    match publisher.publish_signed(&group, "pub-1", &key, &container("doc.xml", 4), &mut rng) {
        Err(NetError::Rejected { reason, .. }) => assert_eq!(reason, RejectReason::StaleEpoch),
        other => panic!("expected StaleEpoch, got {other:?}"),
    }
    // The legitimate next epoch still lands on the same connection.
    let receipt = publisher
        .publish_signed(&group, "pub-1", &key, &container("doc.xml", 6), &mut rng)
        .expect("next epoch");
    assert_eq!(receipt.epoch, 6);
    broker.shutdown();
}

#[test]
fn hostile_peer_cannot_wedge_a_document_name_when_keys_are_configured() {
    let group = P256Group::new();
    let mut rng = StdRng::seed_from_u64(0xA0B);
    let key = SigningKey::generate(&group, &mut rng);
    let broker = keyed_broker(&group, &key);

    // The classic wedge: squat the name at epoch u64::MAX so the
    // stale-epoch guard locks the real publisher out forever. With keys
    // configured the hostile unsigned publish never reaches retained
    // state…
    let mut hostile = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    assert!(hostile.publish(&container("ward.xml", u64::MAX)).is_err());
    // …and a hostile *signed* attempt without the real key fails too.
    let fake_key = SigningKey::generate(&group, &mut rng);
    let mut hostile2 = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    assert!(matches!(
        hostile2.publish_signed(
            &group,
            "pub-1",
            &fake_key,
            &container("ward.xml", u64::MAX),
            &mut rng
        ),
        Err(NetError::Rejected {
            reason: RejectReason::BadSignature,
            ..
        })
    ));

    // The real publisher proceeds from epoch 1, unwedged.
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    let receipt = publisher
        .publish_signed(&group, "pub-1", &key, &container("ward.xml", 1), &mut rng)
        .expect("real publisher unaffected");
    assert_eq!(receipt.epoch, 1);
    assert_eq!(broker.stats().publishes_rejected, 2);
    broker.shutdown();
}

#[test]
fn pipelined_burst_is_batch_verified_and_forged_member_is_rejected() {
    let group = P256Group::new();
    let mut rng = StdRng::seed_from_u64(0xA0D);
    let key = SigningKey::generate(&group, &mut rng);
    let broker = keyed_broker(&group, &key);

    // An all-valid pipelined cohort: every container acknowledged, in
    // order, over one connection (the broker verifies the burst with a
    // single batched Schnorr check).
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    let cohort: Vec<BroadcastContainer> = (1..=4).map(|e| container("doc.xml", e)).collect();
    let outcomes = publisher
        .publish_signed_burst(&group, "pub-1", &key, &cohort, &mut rng)
        .expect("burst transport");
    assert_eq!(outcomes.len(), 4);
    for (i, outcome) in outcomes.iter().enumerate() {
        assert_eq!(outcome.as_ref().unwrap().epoch, i as u64 + 1);
    }

    // Forge the signature of one member mid-burst: hand-roll the frames
    // so member 2 of 4 is signed by an intruder key. Exactly that member
    // gets a typed BadSignature reject; the rest land, the connection
    // survives, and retained state advances past the forged epoch only
    // via the honest members.
    let intruder = SigningKey::generate(&group, &mut rng);
    let mut stream = TcpStream::connect(broker.addr()).unwrap();
    let mut wire = Vec::new();
    for epoch in 5..=8u64 {
        let c = container("doc.xml", epoch);
        let container_bytes = c.encode().unwrap();
        let msg = publish_auth_message(&c.document_name, c.epoch, &container_bytes);
        let signer = if epoch == 6 { &intruder } else { &key };
        let sig = signer.sign(&group, &mut rng, &msg).to_bytes(&group);
        let body = signed_publish_body("pub-1", &sig, &container_bytes);
        wire.extend_from_slice(&(body.len() as u32).to_be_bytes());
        wire.extend_from_slice(&body);
    }
    stream.write_all(&wire).unwrap();
    let mut replies = Vec::new();
    for _ in 0..4 {
        replies.push(read_frame(&mut stream).unwrap());
    }
    assert!(matches!(replies[0], Frame::Ack { epoch: 5, .. }));
    assert!(matches!(
        replies[1],
        Frame::Reject {
            reason: RejectReason::BadSignature,
            ..
        }
    ));
    assert!(matches!(replies[2], Frame::Ack { epoch: 7, .. }));
    assert!(matches!(replies[3], Frame::Ack { epoch: 8, .. }));
    assert_eq!(broker.stats().publishes_rejected, 1);
    assert!(
        broker.retained_container("doc.xml").is_some(),
        "honest members of the burst landed"
    );
    broker.shutdown();
}

#[test]
fn open_mode_still_accepts_unsigned_and_signed_publishes() {
    // Empty directory = legacy open mode: v1 unsigned publishes keep
    // working, and a signed publish is accepted too (its signature is
    // vacuously fine — open mode trusts everyone by definition).
    let group = P256Group::new();
    let mut rng = StdRng::seed_from_u64(0xA0C);
    let key = SigningKey::generate(&group, &mut rng);
    let directory = PublisherDirectory::new(group.clone());
    let broker = Broker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            publisher_auth: Some(Arc::new(directory)),
            ..BrokerConfig::default()
        },
    )
    .unwrap();
    let mut publisher = BrokerClient::connect(broker.addr(), PeerRole::Publisher).unwrap();
    assert_eq!(publisher.publish(&container("a.xml", 1)).unwrap().epoch, 1);
    assert_eq!(
        publisher
            .publish_signed(&group, "anyone", &key, &container("a.xml", 2), &mut rng)
            .unwrap()
            .epoch,
        2
    );
    assert_eq!(broker.stats().publishes_rejected, 0);
    broker.shutdown();
}
