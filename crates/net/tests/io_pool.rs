//! Event-driven I/O plane tests: a 1 000-subscriber stress run proving an
//! idle subscription costs a socket + queue slot (not two thread stacks)
//! and that misbehaving consumers are isolated individually, plus a
//! shutdown-accounting test proving the broker joins exactly its pool
//! threads and releases every file descriptor. Both tests read
//! `/proc/self/{status,fd}`, so they are Linux-specific — like the rest
//! of the CI environment.

use pbcd_docs::{BroadcastContainer, EncryptedGroup, EncryptedSegment};
use pbcd_net::{Broker, BrokerClient, BrokerConfig, PeerRole};
use std::io::Read;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// `/proc/self/status` and `/proc/self/fd` are process-global, so the two
/// tests in this file must not overlap even when the harness runs tests
/// in parallel.
static PROC_SERIAL: Mutex<()> = Mutex::new(());

fn container(doc: &str, epoch: u64, payload: usize) -> BroadcastContainer {
    BroadcastContainer {
        epoch,
        document_name: doc.to_string(),
        skeleton_xml: format!("<r><pbcd-segment id=\"0\"/><!--{epoch}--></r>"),
        groups: vec![EncryptedGroup {
            config_id: 0,
            key_info: vec![0xAB; 32],
            segments: vec![EncryptedSegment {
                segment_id: 0,
                tag: "Record".into(),
                ciphertext: vec![epoch as u8; payload],
            }],
        }],
    }
}

/// Live OS threads in this process, per the kernel's own accounting.
fn os_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .expect("read /proc/self/status")
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

/// Open file descriptors in this process (including the readdir's own fd,
/// which cancels out in before/after comparisons).
fn open_fds() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .expect("read /proc/self/fd")
        .count()
}

fn wait_until(deadline: Instant, mut done: impl FnMut() -> bool) -> bool {
    while !done() {
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    true
}

/// The 10k-fan-out scaling contract, exercised at 1k so it fits a test
/// budget: a thousand idle subscriptions must cost O(pool) OS threads,
/// and among ten consumers of a hot topic, one that never reads and one
/// that trickles a byte at a time are dropped — exactly those two — while
/// publish latency stays enqueue-bounded and the healthy eight see every
/// epoch in order.
#[test]
fn thousand_subscribers_pool_threads_and_misbehaving_peer_isolation() {
    let _serial = PROC_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    const IDLE_SUBS: usize = 1000;
    const HEALTHY: usize = 8;
    const PUBLISHES: u64 = 16;

    let broker = Broker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            // Big enough that an enqueue-coupled publisher would blow the
            // latency assertion below, small enough that the trickling
            // peer's deadline expiry fits the test budget.
            write_timeout: Some(Duration::from_secs(6)),
            subscriber_queue: 4,
            max_connections: 4096,
            max_retained_bytes: 1024 * 1024 * 1024,
            ..BrokerConfig::default()
        },
    )
    .unwrap();
    let addr = broker.addr();
    let (writers, readers) = broker.io_thread_counts();
    let threads_before_herd = os_threads();

    // A thousand subscribers on a topic nothing publishes to. Under
    // thread-per-connection each held a handler + writer stack (~2000
    // threads); on the event-driven plane each is a socket plus a pool
    // slot, and the per-connection handler thread exits at handoff.
    let mut idle = Vec::with_capacity(IDLE_SUBS);
    for _ in 0..IDLE_SUBS {
        let mut client = BrokerClient::connect(addr, PeerRole::Subscriber).unwrap();
        client.subscribe(&["idle.xml"]).unwrap();
        idle.push(client);
    }
    assert_eq!(broker.subscriber_count(), IDLE_SUBS);

    // Handler threads unwind asynchronously after handing their socket to
    // the reader pool; give the tail a moment, then demand O(pool).
    let herd_deadline = Instant::now() + Duration::from_secs(30);
    assert!(
        wait_until(herd_deadline, || {
            os_threads() <= threads_before_herd + writers + readers + 16
        }),
        "{IDLE_SUBS} idle subscribers cost {} extra OS threads (pool is {writers}+{readers}) — \
         thread-per-connection is back",
        os_threads() - threads_before_herd,
    );

    // The hot-topic consumers: one stalled (never reads after subscribing),
    // one trickling a byte every 20 ms — far too slow to land a half-MiB
    // frame inside the write deadline — and eight healthy readers.
    let mut stalled = BrokerClient::connect(addr, PeerRole::Subscriber).unwrap();
    stalled.subscribe(&["doc.xml"]).unwrap();

    let trickle_stream = {
        let mut client = BrokerClient::connect(addr, PeerRole::Subscriber).unwrap();
        client.subscribe(&["doc.xml"]).unwrap();
        client.into_stream()
    };
    // Once the broker has dropped the trickler, the test flips `drain` so
    // the thread empties its receive buffer at full speed and observes the
    // close — at one byte per 20 ms that last drain would take hours.
    let drain = Arc::new(AtomicBool::new(false));
    let trickler = {
        let drain = Arc::clone(&drain);
        std::thread::spawn(move || {
            let mut stream = trickle_stream;
            let mut byte = [0u8; 1];
            let mut bulk = vec![0u8; 256 * 1024];
            loop {
                let draining = drain.load(Ordering::Relaxed);
                let buf: &mut [u8] = if draining { &mut bulk } else { &mut byte };
                match stream.read(buf) {
                    Ok(1..) => {
                        if !draining {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                    }
                    // Clean close or reset: the broker dropped us, as it must.
                    Ok(0) | Err(_) => return,
                }
            }
        })
    };

    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let mut healthy = Vec::new();
    for _ in 0..HEALTHY {
        let ready = ready_tx.clone();
        let done = done_tx.clone();
        healthy.push(std::thread::spawn(move || {
            let mut client = BrokerClient::connect(addr, PeerRole::Subscriber).unwrap();
            client.subscribe(&["doc.xml"]).unwrap();
            ready.send(()).unwrap();
            let mut last_epoch = 0;
            for _ in 0..PUBLISHES {
                let c = client.next_delivery().expect("healthy delivery");
                assert!(c.epoch > last_epoch, "per-subscriber total order");
                last_epoch = c.epoch;
            }
            done.send(()).unwrap();
        }));
    }
    for _ in 0..HEALTHY {
        ready_rx.recv_timeout(Duration::from_secs(10)).unwrap();
    }

    // Publish half-MiB containers so the misbehaving peers' socket
    // buffers jam after a couple of frames. Publish latency must stay
    // enqueue-bounded: the stalled peer charges its own pool slot for the
    // write deadline, never the publisher.
    let mut publisher = BrokerClient::connect(addr, PeerRole::Publisher).unwrap();
    let mut max_publish = Duration::ZERO;
    for epoch in 1..=PUBLISHES {
        let start = Instant::now();
        publisher
            .publish(&container("doc.xml", epoch, 512 * 1024))
            .unwrap();
        max_publish = max_publish.max(start.elapsed());
    }
    assert!(
        max_publish < Duration::from_secs(3),
        "publish took {max_publish:?} — latency is coupled to the 6 s write deadline"
    );

    for _ in 0..HEALTHY {
        done_rx.recv_timeout(Duration::from_secs(60)).unwrap();
    }
    for t in healthy {
        t.join().unwrap();
    }

    // Exactly the two misbehaving consumers are dropped: the stalled one
    // on queue overflow, the trickler on overflow or deadline expiry —
    // never a healthy reader, never an idle bystander.
    let drop_deadline = Instant::now() + Duration::from_secs(20);
    assert!(
        wait_until(drop_deadline, || broker.stats().subscribers_dropped >= 2),
        "misbehaving consumers still connected: {} dropped",
        broker.stats().subscribers_dropped,
    );
    assert_eq!(broker.stats().subscribers_dropped, 2);
    drain.store(true, Ordering::Relaxed);
    trickler.join().unwrap();

    assert_eq!(broker.subscriber_count(), IDLE_SUBS, "idle herd untouched");
    drop(idle);
    drop(stalled);
    broker.shutdown();
}

/// Shutdown accounting: the broker runs exactly its configured M+R pool
/// threads (plus the accept loop), joins every one of them on shutdown,
/// and releases every file descriptor it duped for pool slots and reader
/// connections.
#[test]
fn shutdown_joins_exact_pool_threads_and_releases_fds() {
    let _serial = PROC_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    const SUBS: usize = 32;

    let threads_before = os_threads();
    let fds_before = open_fds();

    let broker = Broker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            writer_pool_threads: 3,
            reader_pool_threads: 2,
            ..BrokerConfig::default()
        },
    )
    .unwrap();
    assert_eq!(broker.io_thread_counts(), (3, 2));
    let addr = broker.addr();

    let mut subs = Vec::new();
    for _ in 0..SUBS {
        let mut client = BrokerClient::connect(addr, PeerRole::Subscriber).unwrap();
        client.subscribe(&["doc.xml"]).unwrap();
        subs.push(client);
    }
    let mut publisher = BrokerClient::connect(addr, PeerRole::Publisher).unwrap();
    publisher.publish(&container("doc.xml", 1, 4096)).unwrap();
    for client in &mut subs {
        assert_eq!(client.next_delivery().unwrap().epoch, 1);
    }

    // While running: at least accept + 3 writers + 2 readers beyond the
    // baseline (transient handler threads may add a few more).
    assert!(
        os_threads() >= threads_before + 1 + 3 + 2,
        "pool threads not running"
    );

    broker.shutdown();
    drop(subs);
    drop(publisher);

    // Shutdown joins the accept loop, both pools and any leftover handler
    // threads — the kernel's thread count returns to the pre-bind
    // baseline, so nothing leaked and nothing was left detached.
    let deadline = Instant::now() + Duration::from_secs(10);
    assert!(
        wait_until(deadline, || os_threads() <= threads_before),
        "{} threads outlive shutdown",
        os_threads() - threads_before,
    );

    // Every fd goes too: listener, per-connection sockets, the writer
    // pool's dup'd streams and the reader pool's adopted ones.
    let deadline = Instant::now() + Duration::from_secs(10);
    assert!(
        wait_until(deadline, || open_fds() <= fds_before),
        "{} fds outlive shutdown",
        open_fds() - fds_before,
    );
}
