//! The untrusted dissemination broker: a threaded TCP server that stores
//! and fans out broadcast containers it cannot read.
//!
//! # Threat model
//!
//! The broker is the paper's untrusted third-party channel. Everything it
//! ever holds is public by construction: container skeletons, segment tags,
//! authenticated ciphertexts and the GKM public info (`X`, `z₁…z_N`) that
//! reveals nothing to non-qualified parties. It holds no keys, no CSSs and
//! no subscriber attributes — compromising the broker yields exactly what
//! eavesdropping on the broadcast channel yields. Correspondingly, the
//! broker trusts nobody: every inbound frame is strictly decoded, a
//! malformed or protocol-violating connection is dropped in isolation
//! (never panicking a broker thread), and slow or dead subscribers are
//! disconnected rather than allowed to wedge fan-out.
//!
//! # Semantics
//!
//! * **Retained latest**: the newest container per document name is kept
//!   and replayed to late subscribers (at-least-once: a subscriber racing a
//!   publish may see the same epoch twice; epochs make that detectable).
//! * **Fan-out**: a publish is forwarded to every current subscriber whose
//!   subscription matches the document (empty subscription = everything).
//! * **Registration stays out-of-band**: the broker plays no part in the
//!   OCBE registration flow, exactly as the paper separates the Pub/Sub
//!   registration phase from dissemination.

use crate::error::NetError;
use crate::frame::{
    deliver_body, read_frame_body, ConfigSummary, Frame, PeerRole, CONTAINER_OFFSET,
};
use std::collections::BTreeMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Broker tuning knobs.
#[derive(Clone, Debug)]
pub struct BrokerConfig {
    /// Replay the retained container to matching new subscribers.
    pub replay_retained: bool,
    /// Per-subscriber socket write timeout; a consumer stalled past this is
    /// dropped so one dead peer cannot wedge fan-out for everyone.
    pub write_timeout: Option<Duration>,
    /// Read timeout applied until a connection produces its first complete
    /// frame; a connect-and-say-nothing peer is dropped after this instead
    /// of pinning a broker thread forever. Established peers may then idle
    /// indefinitely (subscribers legitimately block awaiting deliveries).
    pub handshake_timeout: Option<Duration>,
    /// Upper bound on concurrent connections; excess connects are closed
    /// immediately (counted in `connections_rejected`).
    pub max_connections: usize,
    /// Upper bound on distinct retained document names; publishes that
    /// would exceed it are rejected (updates to retained documents pass).
    pub max_retained_documents: usize,
    /// Upper bound on the *total bytes* of retained containers; together
    /// with the document cap this keeps hostile publishers from growing
    /// broker memory without limit.
    pub max_retained_bytes: usize,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        Self {
            replay_retained: true,
            write_timeout: Some(Duration::from_secs(5)),
            handshake_timeout: Some(Duration::from_secs(10)),
            max_connections: 1024,
            max_retained_documents: 256,
            max_retained_bytes: 256 * 1024 * 1024,
        }
    }
}

/// Counters exposed by [`BrokerHandle::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Containers accepted from publishers.
    pub publishes: u64,
    /// Containers written to subscribers (fan-out plus replays).
    pub deliveries: u64,
    /// Subscribers dropped after a failed or timed-out write.
    pub subscribers_dropped: u64,
    /// Connections terminated for malformed or protocol-violating input.
    pub connections_rejected: u64,
}

/// One registered subscriber: a serialized writer plus its document filter.
struct SubEntry {
    writer: Arc<Mutex<TcpStream>>,
    /// Empty set = subscribed to every document.
    documents: Vec<String>,
}

impl SubEntry {
    fn matches(&self, document: &str) -> bool {
        self.documents.is_empty() || self.documents.iter().any(|d| d == document)
    }
}

/// Mutable broker state behind one lock.
#[derive(Default)]
struct State {
    /// document name → encoded latest container (shared so replay
    /// snapshots are pointer clones, not megabyte copies under the lock).
    retained: BTreeMap<String, Arc<Vec<u8>>>,
    /// Running total of retained container bytes (enforces the byte cap).
    retained_bytes: usize,
    /// document name → public summary of the retained container.
    summaries: BTreeMap<String, ConfigSummary>,
    /// connection id → subscriber registration.
    subscribers: BTreeMap<u64, SubEntry>,
    /// connection id → raw stream of every live connection (for shutdown).
    connections: BTreeMap<u64, TcpStream>,
    /// Join handles of per-connection threads.
    threads: Vec<JoinHandle<()>>,
}

struct Shared {
    config: BrokerConfig,
    shutdown: AtomicBool,
    state: Mutex<State>,
    next_conn_id: AtomicU64,
    publishes: AtomicU64,
    deliveries: AtomicU64,
    subscribers_dropped: AtomicU64,
    connections_rejected: AtomicU64,
}

/// The dissemination broker. [`Broker::bind`] starts the accept loop and
/// returns a [`BrokerHandle`] owning it.
pub struct Broker;

impl Broker {
    /// Binds `addr` (use port 0 for an ephemeral port) with defaults.
    pub fn bind(addr: &str) -> io::Result<BrokerHandle> {
        Self::bind_with(addr, BrokerConfig::default())
    }

    /// Binds with explicit configuration.
    pub fn bind_with(addr: &str, config: BrokerConfig) -> io::Result<BrokerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            shutdown: AtomicBool::new(false),
            state: Mutex::new(State::default()),
            next_conn_id: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            deliveries: AtomicU64::new(0),
            subscribers_dropped: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("pbcd-broker-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(BrokerHandle {
            addr: local_addr,
            shared,
            accept: Some(accept),
        })
    }
}

/// Owner of a running broker; dropping it shuts the broker down.
pub struct BrokerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl BrokerHandle {
    /// The bound address (resolve ephemeral ports through this).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BrokerStats {
        BrokerStats {
            publishes: self.shared.publishes.load(Ordering::Relaxed),
            deliveries: self.shared.deliveries.load(Ordering::Relaxed),
            subscribers_dropped: self.shared.subscribers_dropped.load(Ordering::Relaxed),
            connections_rejected: self.shared.connections_rejected.load(Ordering::Relaxed),
        }
    }

    /// Number of currently registered subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("broker state")
            .subscribers
            .len()
    }

    /// The encoded bytes the broker retains for `document` — everything a
    /// compromise of the broker would leak for it. Tests audit these for
    /// plaintext.
    pub fn retained_container(&self, document: &str) -> Option<Vec<u8>> {
        self.shared
            .state
            .lock()
            .expect("broker state")
            .retained
            .get(document)
            .map(|bytes| bytes.as_ref().clone())
    }

    /// Graceful shutdown: stops accepting, closes every connection, joins
    /// every thread. Idempotent; also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock per-connection reads.
        {
            let state = self.shared.state.lock().expect("broker state");
            for stream in state.connections.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        // Unblock the accept loop. An unspecified bind address (0.0.0.0 /
        // ::) is not connectable on every platform — wake via loopback on
        // the bound port instead, and bound the attempt so shutdown can
        // never hang on an unreachable listener.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        match TcpStream::connect_timeout(&wake, Duration::from_secs(1)) {
            Ok(_) => {
                let _ = accept.join();
            }
            // Wake unreachable (e.g. the bound interface vanished): the
            // accept thread may stay parked in accept(); leak it rather
            // than hang shutdown/Drop forever. Connection threads were
            // already closed above.
            Err(_) => drop(accept),
        }
    }
}

impl Drop for BrokerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            // Accept errors are transient (EMFILE, aborted handshake);
            // keep serving unless we are shutting down — but back off so a
            // persistent condition (fd exhaustion) doesn't busy-spin a core.
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
            continue;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let Ok(raw) = stream.try_clone() else {
            continue;
        };
        // Register under the state lock, re-checking the shutdown flag
        // there: shutdown sets the flag *before* taking the lock for its
        // close sweep, so either we see the flag and bail, or our stream is
        // in the map when the sweep runs — no connection can slip through
        // unclosed and leave its handler thread blocked forever.
        {
            let mut state = shared.state.lock().expect("broker state");
            // Reap finished connection threads so bookkeeping stays
            // proportional to *live* connections, not total served.
            let (done, running): (Vec<_>, Vec<_>) = std::mem::take(&mut state.threads)
                .into_iter()
                .partition(|t| t.is_finished());
            state.threads = running;
            for t in done {
                let _ = t.join();
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if state.connections.len() >= shared.config.max_connections {
                shared.connections_rejected.fetch_add(1, Ordering::Relaxed);
                continue; // drops both handles, closing the socket
            }
            state.connections.insert(id, raw);
        }
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name(format!("pbcd-broker-conn-{id}"))
            .spawn(move || {
                handle_connection(&conn_shared, id, stream);
            });
        let mut state = shared.state.lock().expect("broker state");
        match spawned {
            Ok(handle) => state.threads.push(handle),
            Err(_) => {
                state.connections.remove(&id);
            }
        }
    }
    // Drain connection threads so shutdown is a real join.
    let threads = {
        let mut state = shared.state.lock().expect("broker state");
        std::mem::take(&mut state.threads)
    };
    for t in threads {
        let _ = t.join();
    }
}

/// Per-connection service loop. Every error path here terminates *this*
/// connection only: decode errors, protocol violations and write failures
/// are contained, and the loop itself never panics on peer input.
fn handle_connection(shared: &Shared, id: u64, mut stream: TcpStream) {
    let writer = match stream.try_clone() {
        Ok(w) => {
            let _ = w.set_write_timeout(shared.config.write_timeout);
            Arc::new(Mutex::new(w))
        }
        Err(_) => return,
    };
    let _ = stream.set_nodelay(true);
    // Until the peer has produced one complete frame, reads are bounded by
    // the handshake timeout: a connect-and-say-nothing peer cannot pin this
    // thread forever. Once it speaks, blocking indefinitely is legitimate
    // (idle subscribers wait for deliveries).
    let mut handshaken = false;
    let _ = stream.set_read_timeout(shared.config.handshake_timeout);

    loop {
        let mut body = match read_frame_body(&mut stream) {
            Ok(b) => b,
            Err(NetError::Closed) | Err(NetError::Io { .. }) => break,
            Err(_) if shared.shutdown.load(Ordering::SeqCst) => break,
            Err(e) => {
                // Hostile length prefix: report, count, drop the peer.
                shared.connections_rejected.fetch_add(1, Ordering::Relaxed);
                let _ = send(
                    shared,
                    &writer,
                    &Frame::Error {
                        message: format!("malformed frame: {e}"),
                    },
                );
                break;
            }
        };
        if !handshaken {
            handshaken = true;
            let _ = stream.set_read_timeout(None);
        }
        let frame = match Frame::decode(&body) {
            Ok(f) => f,
            Err(_) if shared.shutdown.load(Ordering::SeqCst) => break,
            Err(e) => {
                // Malformed input: report, count, drop the peer.
                shared.connections_rejected.fetch_add(1, Ordering::Relaxed);
                let _ = send(
                    shared,
                    &writer,
                    &Frame::Error {
                        message: format!("malformed frame: {e}"),
                    },
                );
                break;
            }
        };
        match frame {
            Frame::Hello { role: _ } => {
                let reply = Frame::Hello {
                    role: PeerRole::Broker,
                };
                if send(shared, &writer, &reply).is_err() {
                    break;
                }
            }
            Frame::Publish(container) => {
                let epoch = container.epoch;
                // The strict decode guarantees the body tail *is* the
                // canonical container encoding; retain it instead of
                // re-encoding megabytes on the hot path.
                let mut container_bytes = std::mem::take(&mut body);
                container_bytes.drain(..CONTAINER_OFFSET);
                match handle_publish(shared, container, container_bytes) {
                    Ok(fanout) => {
                        if send(shared, &writer, &Frame::Ack { epoch, fanout }).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        shared.connections_rejected.fetch_add(1, Ordering::Relaxed);
                        let _ = send(
                            shared,
                            &writer,
                            &Frame::Error {
                                message: format!("publish rejected: {e}"),
                            },
                        );
                        break;
                    }
                }
            }
            Frame::Subscribe { documents } => {
                if handle_subscribe(shared, id, &writer, documents).is_err() {
                    break;
                }
            }
            Frame::ListConfigs => {
                let entries: Vec<ConfigSummary> = {
                    let state = shared.state.lock().expect("broker state");
                    state.summaries.values().cloned().collect()
                };
                if send(shared, &writer, &Frame::Configs(entries)).is_err() {
                    break;
                }
            }
            Frame::Bye => {
                let _ = send(shared, &writer, &Frame::Bye);
                break;
            }
            // Frames only the broker may send: a client speaking them is
            // confused or hostile — cut it off (in isolation).
            Frame::Deliver(_) | Frame::Configs(_) | Frame::Ack { .. } | Frame::Error { .. } => {
                shared.connections_rejected.fetch_add(1, Ordering::Relaxed);
                let _ = send(
                    shared,
                    &writer,
                    &Frame::Error {
                        message: "unexpected broker-only frame from client".into(),
                    },
                );
                break;
            }
        }
    }

    let mut state = shared.state.lock().expect("broker state");
    state.subscribers.remove(&id);
    state.connections.remove(&id);
}

/// Retains the container (already-canonical `container_bytes`) and fans it
/// out; returns the fan-out count, or an error for a publish that would
/// grow the retained store past its cap.
fn handle_publish(
    shared: &Shared,
    container: pbcd_docs::BroadcastContainer,
    container_bytes: Vec<u8>,
) -> Result<u32, NetError> {
    let deliver_frame = deliver_body(&container_bytes);
    let summary = ConfigSummary {
        document_name: container.document_name.clone(),
        epoch: container.epoch,
        config_ids: container.groups.iter().map(|g| g.config_id).collect(),
        size_bytes: container_bytes.len() as u64,
    };

    let targets: Vec<(u64, Arc<Mutex<TcpStream>>)> = {
        let mut state = shared.state.lock().expect("broker state");
        // Bound the retained store: an unauthenticated peer must not be
        // able to grow broker memory without limit by inventing document
        // names. Updates to already-retained documents always pass.
        if !state.retained.contains_key(&container.document_name)
            && state.retained.len() >= shared.config.max_retained_documents
        {
            return Err(NetError::protocol(format!(
                "retained document cap {} reached",
                shared.config.max_retained_documents
            )));
        }
        // Newest-epoch wins: replaying an older (e.g. pre-revocation)
        // container must not roll the retained state back. Equal epochs
        // pass so a publisher may idempotently retry a lost Ack.
        if let Some(existing) = state.summaries.get(&container.document_name) {
            if container.epoch < existing.epoch {
                return Err(NetError::protocol(format!(
                    "stale epoch {} (retained epoch is {})",
                    container.epoch, existing.epoch
                )));
            }
        }
        let replaced_len = state
            .retained
            .get(&container.document_name)
            .map_or(0, |b| b.len());
        let new_total = state.retained_bytes - replaced_len + container_bytes.len();
        if new_total > shared.config.max_retained_bytes {
            return Err(NetError::protocol(format!(
                "retained byte cap {} would be exceeded",
                shared.config.max_retained_bytes
            )));
        }
        state.retained_bytes = new_total;
        state
            .retained
            .insert(container.document_name.clone(), Arc::new(container_bytes));
        state
            .summaries
            .insert(container.document_name.clone(), summary);
        state
            .subscribers
            .iter()
            .filter(|(_, sub)| sub.matches(&container.document_name))
            .map(|(id, sub)| (*id, Arc::clone(&sub.writer)))
            .collect()
    };
    shared.publishes.fetch_add(1, Ordering::Relaxed);

    let mut fanout = 0u32;
    let mut failed = Vec::new();
    for (sub_id, writer) in targets {
        match send_raw(shared, &writer, &deliver_frame) {
            Ok(()) => {
                fanout += 1;
                shared.deliveries.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => failed.push(sub_id),
        }
    }
    if !failed.is_empty() {
        let mut state = shared.state.lock().expect("broker state");
        for sub_id in failed {
            if state.subscribers.remove(&sub_id).is_some() {
                shared.subscribers_dropped.fetch_add(1, Ordering::Relaxed);
            }
            // Actually disconnect the stalled peer: closing its socket
            // unblocks its handler thread (which then frees the connection
            // slot) and tells the peer it is no longer subscribed.
            if let Some(conn) = state.connections.get(&sub_id) {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
    }
    Ok(fanout)
}

/// Registers the subscription, acks it and replays retained containers.
///
/// Lock discipline: this connection's *writer* lock is taken first and the
/// global state lock only briefly inside it — never a network write under
/// the state lock, so a stalled consumer cannot stall the whole broker.
/// Holding the writer across registration + replay also means a concurrent
/// publish fanning out a newer epoch to this subscriber queues behind the
/// replay, so a stale retained container can never arrive after a fresher
/// one. Deadlock-free because fan-out takes writer locks only *after*
/// releasing the state lock — no thread ever waits on a writer while
/// holding state.
fn handle_subscribe(
    shared: &Shared,
    id: u64,
    writer: &Arc<Mutex<TcpStream>>,
    documents: Vec<String>,
) -> Result<(), NetError> {
    let entry = SubEntry {
        writer: Arc::clone(writer),
        documents,
    };
    let mut guard = writer.lock().expect("writer lock");
    let replay: Vec<Arc<Vec<u8>>> = {
        let mut state = shared.state.lock().expect("broker state");
        let replay = if shared.config.replay_retained {
            state
                .retained
                .iter()
                .filter(|(doc, _)| entry.matches(doc))
                .map(|(_, bytes)| Arc::clone(bytes))
                .collect()
        } else {
            Vec::new()
        };
        state.subscribers.insert(id, entry);
        replay
    };

    // One deadline bounds the Ack plus the *entire* replay: a subscriber
    // that cannot drain the retained set within the window is disconnected
    // (it can reconnect with a narrower document filter) instead of holding
    // this writer mutex — and thus matching fan-outs — open indefinitely.
    let deadline = shared.config.write_timeout.map(|t| Instant::now() + t);
    write_body_deadline(
        &mut guard,
        &Frame::Ack {
            epoch: 0,
            fanout: 0,
        }
        .encode()?,
        deadline,
    )?;
    for bytes in replay {
        write_body_deadline(&mut guard, &deliver_body(&bytes), deadline)?;
        shared.deliveries.fetch_add(1, Ordering::Relaxed);
    }
    Ok(())
}

/// Serialized frame write to a shared writer, deadline-bounded.
fn send(shared: &Shared, writer: &Arc<Mutex<TcpStream>>, frame: &Frame) -> Result<(), NetError> {
    send_raw(shared, writer, &frame.encode()?)
}

/// Serialized write of a pre-encoded frame body. The whole operation runs
/// against one deadline derived from `write_timeout`: a peer that trickles
/// a few bytes per timeout window (re-arming SO_SNDTIMEO forever) is still
/// cut off, so the writer mutex is held a bounded time per frame.
fn send_raw(shared: &Shared, writer: &Arc<Mutex<TcpStream>>, body: &[u8]) -> Result<(), NetError> {
    let deadline = shared.config.write_timeout.map(|t| Instant::now() + t);
    let mut guard = writer.lock().expect("writer lock");
    write_body_deadline(&mut guard, body, deadline)
}

/// Writes `length u32 ‖ body` honoring an absolute deadline across partial
/// writes (plain socket write timeouts re-arm on every syscall, which a
/// trickling receiver can exploit to hold a write open indefinitely).
fn write_body_deadline(
    stream: &mut TcpStream,
    body: &[u8],
    deadline: Option<Instant>,
) -> Result<(), NetError> {
    use std::io::Write;
    if body.len() > crate::frame::MAX_FRAME_LEN {
        return Err(NetError::protocol("frame body exceeds MAX_FRAME_LEN"));
    }
    let len = (body.len() as u32).to_be_bytes();
    write_all_deadline(stream, &len, deadline)?;
    write_all_deadline(stream, body, deadline)?;
    stream.flush()?;
    Ok(())
}

fn write_all_deadline(
    stream: &mut TcpStream,
    mut buf: &[u8],
    deadline: Option<Instant>,
) -> Result<(), NetError> {
    use std::io::Write;
    while !buf.is_empty() {
        if let Some(d) = deadline {
            let remaining = d.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(NetError::Io {
                    kind: std::io::ErrorKind::TimedOut,
                    detail: "write deadline exceeded".into(),
                });
            }
            let _ = stream.set_write_timeout(Some(remaining.max(Duration::from_millis(1))));
        }
        match stream.write(buf) {
            Ok(0) => {
                return Err(NetError::Io {
                    kind: std::io::ErrorKind::WriteZero,
                    detail: "socket refused bytes".into(),
                })
            }
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}
